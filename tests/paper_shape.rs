//! The paper's headline *shape* claims, asserted over the full workload.
//!
//! These run the 17-kernel grid, which is slow in debug builds, so they
//! are `#[ignore]`d by default; run them with
//!
//! ```sh
//! cargo test --release --test paper_shape -- --ignored
//! ```

use balanced_scheduling::pipeline::{ConfigKind, Experiment, RunResult, SchedulerKind};
use balanced_scheduling::workloads::all_kernels;
use bsched_ir::Program;

fn run_cell(name: &str, program: &Program, kind: ConfigKind, sched: SchedulerKind) -> RunResult {
    Experiment::builder()
        .program(name, program.clone())
        .compile_options(kind.options(sched))
        .build()
        .expect("program supplied")
        .run()
        .unwrap()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn grid_speedups(kind: ConfigKind) -> Vec<f64> {
    all_kernels()
        .iter()
        .map(|spec| {
            let p = spec.program();
            let bs = run_cell(spec.name, &p, kind, SchedulerKind::Balanced);
            let ts = run_cell(spec.name, &p, kind, SchedulerKind::Traditional);
            bs.metrics.speedup_over(&ts.metrics)
        })
        .collect()
}

#[test]
#[ignore = "runs the full grid; use --release -- --ignored"]
fn balanced_beats_traditional_on_average_at_every_level() {
    for kind in [
        ConfigKind::Base,
        ConfigKind::Lu(4),
        ConfigKind::Lu(8),
        ConfigKind::TrsLu(4),
        ConfigKind::TrsLu(8),
    ] {
        let s = mean(&grid_speedups(kind));
        assert!(s > 1.0, "{}: average BS:TS speedup {s:.3} must exceed 1", kind.label());
    }
}

#[test]
#[ignore = "runs the full grid; use --release -- --ignored"]
fn ilp_optimizations_extend_the_advantage() {
    // The paper's central claim: the BS:TS gap at the most optimized
    // configurations exceeds the unoptimized gap.
    let base = mean(&grid_speedups(ConfigKind::Base));
    let best = [ConfigKind::Lu(8), ConfigKind::TrsLu(8)]
        .into_iter()
        .map(|k| mean(&grid_speedups(k)))
        .fold(f64::MIN, f64::max);
    assert!(
        best > base,
        "optimized advantage {best:.3} must exceed unoptimized {base:.3}"
    );
}

#[test]
#[ignore = "runs the full grid; use --release -- --ignored"]
fn balanced_always_has_fewer_load_interlock_cycles_on_average() {
    for kind in [ConfigKind::Base, ConfigKind::Lu(4), ConfigKind::TrsLu(8)] {
        let mut bs_frac = Vec::new();
        let mut ts_frac = Vec::new();
        for spec in all_kernels() {
            let p = spec.program();
            let bs = run_cell(spec.name, &p, kind, SchedulerKind::Balanced);
            let ts = run_cell(spec.name, &p, kind, SchedulerKind::Traditional);
            bs_frac.push(bs.metrics.load_interlock_fraction());
            ts_frac.push(ts.metrics.load_interlock_fraction());
        }
        assert!(
            mean(&bs_frac) < mean(&ts_frac) * 0.75,
            "{}: BS load-interlock fraction {:.3} vs TS {:.3}",
            kind.label(),
            mean(&bs_frac),
            mean(&ts_frac)
        );
    }
}
