//! Property-based semantics testing: random kernels run through every
//! optimization pipeline must preserve the observable memory image.
//!
//! The pipeline itself cross-checks each compilation against the
//! reference interpreter (`PipelineError::ChecksumMismatch`), so the
//! property here is simply "compilation succeeds" over a randomized
//! kernel space that exercises loops, strides, nested conditionals,
//! selects, reductions and 2-D accesses.

use balanced_scheduling::pipeline::{compile, CompileOptions, SchedulerKind};
use balanced_scheduling::workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
use balanced_scheduling::workloads::lang::{ArrayInit, Kernel};
use proptest::prelude::*;

/// A compact, data-first description of a random kernel.
#[derive(Debug, Clone)]
struct KernelPlan {
    array_elems: u64,
    trip: i64,
    step: i64,
    stmts: Vec<StmtPlan>,
}

#[derive(Debug, Clone)]
enum StmtPlan {
    /// out[i + off] = expr
    Store { off: i64, expr: ExprPlan },
    /// acc = acc + expr
    Accumulate { expr: ExprPlan },
    /// if (in[i] < 0.5) { out[i] = e1 } else { out[i] = e2 }
    BranchStores { e1: ExprPlan, e2: ExprPlan },
    /// if (in[i] < 0.5) { acc = acc + e } else {} (predicable)
    BranchAcc { e: ExprPlan },
}

#[derive(Debug, Clone)]
enum ExprPlan {
    Const(i8),
    LoadIn { off: i64 },
    LoadStrided { stride: i64 },
    Mul(Box<ExprPlan>, Box<ExprPlan>),
    Add(Box<ExprPlan>, Box<ExprPlan>),
    Select(Box<ExprPlan>, Box<ExprPlan>),
    AccRef,
}

fn arb_expr() -> impl Strategy<Value = ExprPlan> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(ExprPlan::Const),
        (0i64..4).prop_map(|off| ExprPlan::LoadIn { off }),
        (1i64..3).prop_map(|stride| ExprPlan::LoadStrided { stride }),
        Just(ExprPlan::AccRef),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprPlan::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprPlan::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| ExprPlan::Select(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = StmtPlan> {
    prop_oneof![
        ((0i64..4), arb_expr()).prop_map(|(off, expr)| StmtPlan::Store { off, expr }),
        arb_expr().prop_map(|expr| StmtPlan::Accumulate { expr }),
        (arb_expr(), arb_expr()).prop_map(|(e1, e2)| StmtPlan::BranchStores { e1, e2 }),
        arb_expr().prop_map(|e| StmtPlan::BranchAcc { e }),
    ]
}

fn arb_plan() -> impl Strategy<Value = KernelPlan> {
    (
        (16u64..64),
        (0i64..24),
        (1i64..4),
        prop::collection::vec(arb_stmt(), 1..4),
    )
        .prop_map(|(array_elems, trip, step, stmts)| KernelPlan {
            array_elems,
            trip,
            step,
            stmts,
        })
}

fn build(plan: &KernelPlan) -> bsched_ir::Program {
    let mut k = Kernel::new("prop");
    // Arrays sized so indices (i*stride + off) stay in range.
    let span = plan.array_elems + 8 + plan.array_elems * 2;
    let input = k.array("in", span, ArrayInit::Random(42));
    let out = k.array("out", span, ArrayInit::Zero);
    let accs = k.array("accs", 8, ArrayInit::Zero);
    let i = k.int_var("i");
    let acc = k.float_var("acc");

    fn expr(
        plan: &ExprPlan,
        input: bsched_workloads::lang::ast::ArrId,
        i: bsched_workloads::lang::ast::VarId,
        acc: bsched_workloads::lang::ast::VarId,
    ) -> Expr {
        match plan {
            ExprPlan::Const(c) => Expr::Float(f64::from(*c) / 16.0),
            ExprPlan::LoadIn { off } => Expr::load(input, Index::of_plus(i, *off)),
            ExprPlan::LoadStrided { stride } => Expr::load(
                input,
                Index::Affine {
                    terms: vec![(i, *stride)],
                    offset: 0,
                },
            ),
            ExprPlan::Mul(a, b) => expr(a, input, i, acc) * expr(b, input, i, acc),
            ExprPlan::Add(a, b) => expr(a, input, i, acc) + expr(b, input, i, acc),
            ExprPlan::Select(a, b) => Expr::select(
                Expr::cmp(CmpOp::Lt, expr(a, input, i, acc), Expr::Float(0.25)),
                expr(a, input, i, acc),
                expr(b, input, i, acc),
            ),
            ExprPlan::AccRef => Expr::Var(acc),
        }
    }

    k.push(k.assign(acc, Expr::Float(0.0)));
    let mut body = Vec::new();
    for s in &plan.stmts {
        match s {
            StmtPlan::Store { off, expr: e } => {
                body.push(k.store(out, Index::of_plus(i, *off), expr(e, input, i, acc)));
            }
            StmtPlan::Accumulate { expr: e } => {
                body.push(k.assign(acc, Expr::Var(acc) + expr(e, input, i, acc)));
            }
            StmtPlan::BranchStores { e1, e2 } => body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::load(input, Index::of(i)), Expr::Float(0.5)),
                then_: vec![k.store(out, Index::of(i), expr(e1, input, i, acc))],
                else_: vec![k.store(out, Index::of_plus(i, 1), expr(e2, input, i, acc))],
            }),
            StmtPlan::BranchAcc { e } => body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::load(input, Index::of(i)), Expr::Float(0.5)),
                then_: vec![k.assign(acc, Expr::Var(acc) + expr(e, input, i, acc))],
                else_: vec![],
            }),
        }
    }
    k.push(k.for_loop_step(i, Expr::Int(0), Expr::Int(plan.trip), plan.step, body));
    k.push(k.store(accs, Index::constant(0), Expr::Var(acc)));
    k.lower()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_pipeline_preserves_semantics(plan in arb_plan()) {
        let program = build(&plan);
        prop_assert!(bsched_ir::verify_program(&program).is_ok());
        for opts in [
            CompileOptions::new(SchedulerKind::Traditional),
            CompileOptions::new(SchedulerKind::Balanced),
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(8).with_trace(),
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(4).with_locality(),
        ] {
            // compile() internally interprets the result and fails on any
            // observable-memory divergence.
            let r = compile(&program, &opts);
            prop_assert!(r.is_ok(), "{}: {:?}", opts.label(), r.err().map(|e| e.to_string()));
        }
    }
}
