//! Randomized semantics testing: random kernels run through every
//! optimization pipeline must preserve the observable memory image.
//!
//! The pipeline itself cross-checks each compilation against the
//! reference interpreter (`PipelineError::ChecksumMismatch`), so the
//! property here is simply "compilation succeeds" over a randomized
//! kernel space that exercises loops, strides, nested conditionals,
//! selects, reductions and 2-D accesses. Plans come from the
//! workspace's seeded [`Prng`] so every run covers the same corpus.

use balanced_scheduling::{CompileOptions, Experiment, SchedulerKind};
use balanced_scheduling::workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
use balanced_scheduling::workloads::lang::{ArrayInit, Kernel};
use bsched_util::Prng;

/// A compact, data-first description of a random kernel.
#[derive(Debug, Clone)]
struct KernelPlan {
    array_elems: u64,
    trip: i64,
    step: i64,
    stmts: Vec<StmtPlan>,
}

#[derive(Debug, Clone)]
enum StmtPlan {
    /// out[i + off] = expr
    Store { off: i64, expr: ExprPlan },
    /// acc = acc + expr
    Accumulate { expr: ExprPlan },
    /// if (in[i] < 0.5) { out[i] = e1 } else { out[i] = e2 }
    BranchStores { e1: ExprPlan, e2: ExprPlan },
    /// if (in[i] < 0.5) { acc = acc + e } else {} (predicable)
    BranchAcc { e: ExprPlan },
}

#[derive(Debug, Clone)]
enum ExprPlan {
    Const(i8),
    LoadIn { off: i64 },
    LoadStrided { stride: i64 },
    Mul(Box<ExprPlan>, Box<ExprPlan>),
    Add(Box<ExprPlan>, Box<ExprPlan>),
    Select(Box<ExprPlan>, Box<ExprPlan>),
    AccRef,
}

fn gen_expr(rng: &mut Prng, depth: usize) -> ExprPlan {
    // Half the draws recurse while depth remains, mirroring proptest's
    // `prop_recursive(3, ...)` shape.
    if depth > 0 && rng.coin() {
        let a = Box::new(gen_expr(rng, depth - 1));
        let b = Box::new(gen_expr(rng, depth - 1));
        match rng.index(3) {
            0 => ExprPlan::Mul(a, b),
            1 => ExprPlan::Add(a, b),
            _ => ExprPlan::Select(a, b),
        }
    } else {
        match rng.index(4) {
            0 => ExprPlan::Const(rng.next_u32() as i8),
            1 => ExprPlan::LoadIn {
                off: rng.range_i64(0, 4),
            },
            2 => ExprPlan::LoadStrided {
                stride: rng.range_i64(1, 3),
            },
            _ => ExprPlan::AccRef,
        }
    }
}

fn gen_stmt(rng: &mut Prng) -> StmtPlan {
    match rng.index(4) {
        0 => StmtPlan::Store {
            off: rng.range_i64(0, 4),
            expr: gen_expr(rng, 3),
        },
        1 => StmtPlan::Accumulate {
            expr: gen_expr(rng, 3),
        },
        2 => StmtPlan::BranchStores {
            e1: gen_expr(rng, 3),
            e2: gen_expr(rng, 3),
        },
        _ => StmtPlan::BranchAcc {
            e: gen_expr(rng, 3),
        },
    }
}

fn gen_plan(rng: &mut Prng) -> KernelPlan {
    KernelPlan {
        array_elems: rng.range_u64(16, 64),
        trip: rng.range_i64(0, 24),
        step: rng.range_i64(1, 4),
        stmts: (0..1 + rng.index(3)).map(|_| gen_stmt(rng)).collect(),
    }
}

fn build(plan: &KernelPlan) -> bsched_ir::Program {
    let mut k = Kernel::new("prop");
    // Arrays sized so indices (i*stride + off) stay in range.
    let span = plan.array_elems + 8 + plan.array_elems * 2;
    let input = k.array("in", span, ArrayInit::Random(42));
    let out = k.array("out", span, ArrayInit::Zero);
    let accs = k.array("accs", 8, ArrayInit::Zero);
    let i = k.int_var("i");
    let acc = k.float_var("acc");

    fn expr(
        plan: &ExprPlan,
        input: balanced_scheduling::workloads::lang::ast::ArrId,
        i: balanced_scheduling::workloads::lang::ast::VarId,
        acc: balanced_scheduling::workloads::lang::ast::VarId,
    ) -> Expr {
        match plan {
            ExprPlan::Const(c) => Expr::Float(f64::from(*c) / 16.0),
            ExprPlan::LoadIn { off } => Expr::load(input, Index::of_plus(i, *off)),
            ExprPlan::LoadStrided { stride } => Expr::load(
                input,
                Index::Affine {
                    terms: vec![(i, *stride)],
                    offset: 0,
                },
            ),
            ExprPlan::Mul(a, b) => expr(a, input, i, acc) * expr(b, input, i, acc),
            ExprPlan::Add(a, b) => expr(a, input, i, acc) + expr(b, input, i, acc),
            ExprPlan::Select(a, b) => Expr::select(
                Expr::cmp(CmpOp::Lt, expr(a, input, i, acc), Expr::Float(0.25)),
                expr(a, input, i, acc),
                expr(b, input, i, acc),
            ),
            ExprPlan::AccRef => Expr::Var(acc),
        }
    }

    k.push(k.assign(acc, Expr::Float(0.0)));
    let mut body = Vec::new();
    for s in &plan.stmts {
        match s {
            StmtPlan::Store { off, expr: e } => {
                body.push(k.store(out, Index::of_plus(i, *off), expr(e, input, i, acc)));
            }
            StmtPlan::Accumulate { expr: e } => {
                body.push(k.assign(acc, Expr::Var(acc) + expr(e, input, i, acc)));
            }
            StmtPlan::BranchStores { e1, e2 } => body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::load(input, Index::of(i)), Expr::Float(0.5)),
                then_: vec![k.store(out, Index::of(i), expr(e1, input, i, acc))],
                else_: vec![k.store(out, Index::of_plus(i, 1), expr(e2, input, i, acc))],
            }),
            StmtPlan::BranchAcc { e } => body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::load(input, Index::of(i)), Expr::Float(0.5)),
                then_: vec![k.assign(acc, Expr::Var(acc) + expr(e, input, i, acc))],
                else_: vec![],
            }),
        }
    }
    k.push(k.for_loop_step(i, Expr::Int(0), Expr::Int(plan.trip), plan.step, body));
    k.push(k.store(accs, Index::constant(0), Expr::Var(acc)));
    k.lower()
}

#[test]
fn every_pipeline_preserves_semantics() {
    let mut rng = Prng::new(0x5E3A_0001);
    for case in 0..24 {
        let plan = gen_plan(&mut rng);
        let program = build(&plan);
        assert!(
            bsched_ir::verify_program(&program).is_ok(),
            "case {case}: {plan:?}"
        );
        for opts in [
            CompileOptions::new(SchedulerKind::Traditional),
            CompileOptions::new(SchedulerKind::Balanced),
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            CompileOptions::new(SchedulerKind::Balanced)
                .with_unroll(8)
                .with_trace(),
            CompileOptions::new(SchedulerKind::Balanced)
                .with_unroll(4)
                .with_locality(),
        ] {
            // Compilation internally interprets the result and fails on
            // any observable-memory divergence.
            let r = Experiment::builder()
                .program("prop", program.clone())
                .compile_options(opts)
                .build()
                .expect("program supplied")
                .compile();
            assert!(
                r.is_ok(),
                "case {case}: {}: {:?}",
                opts.label(),
                r.err().map(|e| e.to_string())
            );
        }
    }
}
