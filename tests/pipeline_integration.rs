//! Cross-crate integration: every kernel of the workload compiles and
//! simulates correctly under representative configurations, spanning
//! frontend → optimizations → scheduling → allocation → simulation.

use balanced_scheduling::pipeline::{compile_and_run, CompileOptions, SchedulerKind};
use balanced_scheduling::workloads::{all_kernels, kernel_by_name};

/// A fast config subset for the full 17-kernel sweep (debug builds run
/// this; the full grid lives in the bench binaries).
fn smoke_configs() -> Vec<CompileOptions> {
    vec![
        CompileOptions::new(SchedulerKind::Traditional),
        CompileOptions::new(SchedulerKind::Balanced),
        CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
    ]
}

#[test]
fn all_kernels_compile_and_match_reference_on_smoke_configs() {
    for spec in all_kernels() {
        let program = spec.program();
        for opts in smoke_configs() {
            let run = compile_and_run(&program, &opts)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", spec.name, opts.label()));
            assert!(
                run.checksum_ok,
                "{} under {} diverged",
                spec.name,
                opts.label()
            );
            assert!(run.metrics.cycles > 0);
            assert!(run.metrics.insts.total() > 0);
        }
    }
}

#[test]
fn full_config_grid_on_two_kernels() {
    for name in ["QCD2", "su2cor"] {
        let program = kernel_by_name(name).expect("kernel exists").program();
        for cfg in balanced_scheduling::pipeline::standard_grid() {
            let run = compile_and_run(&program, &cfg.options())
                .unwrap_or_else(|e| panic!("{name} under {}: {e}", cfg.options().label()));
            assert!(
                run.checksum_ok,
                "{name} under {} diverged",
                cfg.options().label()
            );
        }
    }
}

#[test]
fn scheduling_changes_order_not_results() {
    let program = kernel_by_name("MDG").expect("kernel exists").program();
    let bs = compile_and_run(&program, &CompileOptions::new(SchedulerKind::Balanced)).unwrap();
    let ts = compile_and_run(&program, &CompileOptions::new(SchedulerKind::Traditional)).unwrap();
    // Identical instruction mixes (same code, different order), different
    // interlock behaviour.
    assert_eq!(bs.metrics.insts.total(), ts.metrics.insts.total());
    assert_ne!(
        (bs.metrics.load_interlock, bs.metrics.fixed_interlock),
        (ts.metrics.load_interlock, ts.metrics.fixed_interlock),
        "the schedules must actually differ"
    );
}

#[test]
fn unrolling_reduces_dynamic_instructions_on_streamy_kernels() {
    for name in ["su2cor", "tomcatv", "hydro2d"] {
        let program = kernel_by_name(name).expect("kernel exists").program();
        let base =
            compile_and_run(&program, &CompileOptions::new(SchedulerKind::Balanced)).unwrap();
        let lu4 = compile_and_run(
            &program,
            &CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
        )
        .unwrap();
        assert!(
            lu4.metrics.insts.total() < base.metrics.insts.total(),
            "{name}: unrolling must remove loop overhead ({} -> {})",
            base.metrics.insts.total(),
            lu4.metrics.insts.total()
        );
        assert!(
            lu4.metrics.insts.branches + lu4.metrics.insts.jumps
                < base.metrics.insts.branches + base.metrics.insts.jumps
        );
    }
}

#[test]
fn locality_marks_hits_on_tomcatv() {
    let program = kernel_by_name("tomcatv").expect("kernel exists").program();
    let la = compile_and_run(
        &program,
        &CompileOptions::new(SchedulerKind::Balanced).with_locality(),
    )
    .unwrap();
    assert!(la.compile.locality.hits_marked > 0);
    assert!(la.compile.locality.misses_marked > 0);
    let base = compile_and_run(&program, &CompileOptions::new(SchedulerKind::Balanced)).unwrap();
    assert!(
        la.metrics.cycles < base.metrics.cycles,
        "locality analysis must pay off on its best-case kernel"
    );
}

#[test]
fn spice_load_interlocks_resist_every_optimization() {
    // The paper's spice2g6 keeps ~30% of its cycles in load interlocks no
    // matter what; our pointer-chase kernel reproduces that.
    let program = kernel_by_name("spice2g6").expect("kernel exists").program();
    for opts in [
        CompileOptions::new(SchedulerKind::Balanced),
        CompileOptions::new(SchedulerKind::Balanced).with_unroll(8),
        CompileOptions::new(SchedulerKind::Balanced)
            .with_unroll(8)
            .with_trace(),
    ] {
        let run = compile_and_run(&program, &opts).unwrap();
        assert!(
            run.metrics.load_interlock_fraction() > 0.2,
            "{}: pointer chase must stay memory-bound, got {:.1}%",
            opts.label(),
            run.metrics.load_interlock_fraction() * 100.0
        );
    }
}

#[test]
fn ora_has_no_load_interlocks() {
    // ora's working set lives in registers and the L1: the paper reports
    // 0.0% load interlocks under every configuration.
    let program = kernel_by_name("ora").expect("kernel exists").program();
    let run = compile_and_run(&program, &CompileOptions::new(SchedulerKind::Balanced)).unwrap();
    assert!(
        run.metrics.load_interlock_fraction() < 0.02,
        "got {:.2}%",
        run.metrics.load_interlock_fraction() * 100.0
    );
}
