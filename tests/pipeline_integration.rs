//! Cross-crate integration: every kernel of the workload compiles and
//! simulates correctly under representative configurations, spanning
//! frontend → optimizations → scheduling → allocation → simulation.

use balanced_scheduling::pipeline::{CompileOptions, Experiment, RunResult, SchedulerKind};
use balanced_scheduling::workloads::all_kernels;
use bsched_ir::Program;

/// Runs one kernel program under one option set through the public
/// `Experiment` API.
fn run_cell(name: &str, program: &Program, opts: &CompileOptions) -> RunResult {
    Experiment::builder()
        .program(name, program.clone())
        .compile_options(*opts)
        .build()
        .expect("program supplied")
        .run()
        .unwrap_or_else(|e| panic!("{name} under {}: {e}", opts.label()))
}

/// Resolves a suite kernel by name and runs it.
fn run_kernel(name: &str, opts: &CompileOptions) -> RunResult {
    Experiment::builder()
        .kernel(name)
        .compile_options(*opts)
        .build()
        .expect("kernel exists")
        .run()
        .unwrap_or_else(|e| panic!("{name} under {}: {e}", opts.label()))
}

/// A fast config subset for the full 17-kernel sweep (debug builds run
/// this; the full grid lives in the bench binaries).
fn smoke_configs() -> Vec<CompileOptions> {
    vec![
        CompileOptions::new(SchedulerKind::Traditional),
        CompileOptions::new(SchedulerKind::Balanced),
        CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
    ]
}

#[test]
fn all_kernels_compile_and_match_reference_on_smoke_configs() {
    for spec in all_kernels() {
        let program = spec.program();
        for opts in smoke_configs() {
            let run = run_cell(spec.name, &program, &opts);
            assert!(
                run.checksum_ok,
                "{} under {} diverged",
                spec.name,
                opts.label()
            );
            assert!(run.metrics.cycles > 0);
            assert!(run.metrics.insts.total() > 0);
        }
    }
}

#[test]
fn full_config_grid_on_two_kernels() {
    for name in ["QCD2", "su2cor"] {
        for cfg in balanced_scheduling::pipeline::standard_grid() {
            let run = run_kernel(name, &cfg.options());
            assert!(
                run.checksum_ok,
                "{name} under {} diverged",
                cfg.options().label()
            );
        }
    }
}

#[test]
fn scheduling_changes_order_not_results() {
    let bs = run_kernel("MDG", &CompileOptions::new(SchedulerKind::Balanced));
    let ts = run_kernel("MDG", &CompileOptions::new(SchedulerKind::Traditional));
    // Identical instruction mixes (same code, different order), different
    // interlock behaviour.
    assert_eq!(bs.metrics.insts.total(), ts.metrics.insts.total());
    assert_ne!(
        (bs.metrics.load_interlock, bs.metrics.fixed_interlock),
        (ts.metrics.load_interlock, ts.metrics.fixed_interlock),
        "the schedules must actually differ"
    );
}

#[test]
fn unrolling_reduces_dynamic_instructions_on_streamy_kernels() {
    for name in ["su2cor", "tomcatv", "hydro2d"] {
        let base = run_kernel(name, &CompileOptions::new(SchedulerKind::Balanced));
        let lu4 = run_kernel(name, &CompileOptions::new(SchedulerKind::Balanced).with_unroll(4));
        assert!(
            lu4.metrics.insts.total() < base.metrics.insts.total(),
            "{name}: unrolling must remove loop overhead ({} -> {})",
            base.metrics.insts.total(),
            lu4.metrics.insts.total()
        );
        assert!(
            lu4.metrics.insts.branches + lu4.metrics.insts.jumps
                < base.metrics.insts.branches + base.metrics.insts.jumps
        );
    }
}

#[test]
fn locality_marks_hits_on_tomcatv() {
    let la = run_kernel(
        "tomcatv",
        &CompileOptions::new(SchedulerKind::Balanced).with_locality(),
    );
    assert!(la.compile.locality.hits_marked > 0);
    assert!(la.compile.locality.misses_marked > 0);
    let base = run_kernel("tomcatv", &CompileOptions::new(SchedulerKind::Balanced));
    assert!(
        la.metrics.cycles < base.metrics.cycles,
        "locality analysis must pay off on its best-case kernel"
    );
}

#[test]
fn spice_load_interlocks_resist_every_optimization() {
    // The paper's spice2g6 keeps ~30% of its cycles in load interlocks no
    // matter what; our pointer-chase kernel reproduces that.
    for opts in [
        CompileOptions::new(SchedulerKind::Balanced),
        CompileOptions::new(SchedulerKind::Balanced).with_unroll(8),
        CompileOptions::new(SchedulerKind::Balanced)
            .with_unroll(8)
            .with_trace(),
    ] {
        let run = run_kernel("spice2g6", &opts);
        assert!(
            run.metrics.load_interlock_fraction() > 0.2,
            "{}: pointer chase must stay memory-bound, got {:.1}%",
            opts.label(),
            run.metrics.load_interlock_fraction() * 100.0
        );
    }
}

#[test]
fn ora_has_no_load_interlocks() {
    // ora's working set lives in registers and the L1: the paper reports
    // 0.0% load interlocks under every configuration.
    let run = run_kernel("ora", &CompileOptions::new(SchedulerKind::Balanced));
    assert!(
        run.metrics.load_interlock_fraction() < 0.02,
        "got {:.2}%",
        run.metrics.load_interlock_fraction() * 100.0
    );
}
