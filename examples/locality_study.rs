//! Locality study: run locality analysis on a stencil kernel and show the
//! classification, the transformation, and the simulated effect of
//! selective balanced scheduling (paper §3.3 / Table 9).
//!
//! ```sh
//! cargo run --release --example locality_study
//! ```

use balanced_scheduling::opt::{analyze_locality, ReuseKind};
use balanced_scheduling::{CompileOptions, Experiment, SchedulerKind};
use balanced_scheduling::workloads::kernel_by_name;

fn main() {
    let spec = kernel_by_name("tomcatv").expect("tomcatv exists");
    let program = spec.program();

    // 1. What does the analysis see?
    let refs = analyze_locality(program.main());
    let spatial = refs
        .iter()
        .filter(|r| matches!(r.kind, ReuseKind::Spatial { .. }))
        .count();
    let temporal = refs
        .iter()
        .filter(|r| r.kind == ReuseKind::Temporal)
        .count();
    let aligned = refs.iter().filter(|r| r.aligned).count();
    println!(
        "tomcatv inner loops: {} classified references ({spatial} spatial, \
         {temporal} temporal, {aligned} with provable line alignment)\n",
        refs.len()
    );

    // 2. What does it buy at run time?
    println!(
        "{:<28} {:>12} {:>14} {:>8}",
        "configuration", "cycles", "load stalls", "CPI"
    );
    for (label, opts) in [
        ("balanced", CompileOptions::new(SchedulerKind::Balanced)),
        (
            "balanced + LA",
            CompileOptions::new(SchedulerKind::Balanced).with_locality(),
        ),
        (
            "balanced + LA + LU8",
            CompileOptions::new(SchedulerKind::Balanced)
                .with_locality()
                .with_unroll(8),
        ),
        (
            "balanced + LA + TrS + LU8",
            CompileOptions::new(SchedulerKind::Balanced)
                .with_locality()
                .with_unroll(8)
                .with_trace(),
        ),
    ] {
        let run = Experiment::builder()
            .program("tomcatv", program.clone())
            .compile_options(opts)
            .build()
            .expect("program supplied")
            .run()
            .expect("pipeline succeeds");
        println!(
            "{label:<28} {:>12} {:>14} {:>8.2}",
            run.metrics.cycles,
            run.metrics.load_interlock,
            run.metrics.cpi()
        );
        if opts.locality {
            println!(
                "{:<28} hits marked: {}, misses marked: {}, loops peeled: {}, unrolled: {}",
                "",
                run.compile.locality.hits_marked,
                run.compile.locality.misses_marked,
                run.compile.locality.peeled,
                run.compile.locality.unrolled
            );
        }
    }
    println!(
        "\nCompile-time hits keep the optimistic weight and donate their\n\
         issue slots to the loads that will miss — the paper's selective\n\
         balanced scheduling (tomcatv was its best case: 1.5x)."
    );
}
