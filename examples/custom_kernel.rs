//! Building a custom kernel end-to-end: the public API tour.
//!
//! Shows the individual stages — frontend, analyses, optimizations,
//! scheduling, allocation, simulation — that `Experiment::builder()…run()` chains,
//! so downstream users can assemble their own pipelines.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use balanced_scheduling::core::{compute_weights, SchedulerKind, WeightConfig};
use balanced_scheduling::ir::{Dag, Interp};
use balanced_scheduling::opt::{
    analyze_locality, local_cse, unroll_loop, EdgeProfile, UnrollLimits,
};
use balanced_scheduling::regalloc::allocate;
use balanced_scheduling::sim::{MachineSpec, Simulator};
use balanced_scheduling::workloads::lang::ast::{Expr, Index};
use balanced_scheduling::workloads::lang::{ArrayInit, Kernel};

fn main() {
    // 1. Frontend: a dot product with a strided second stream.
    let n = 512;
    let mut k = Kernel::new("custom");
    let a = k.array("a", n, ArrayInit::Random(11));
    let b = k.array("b", 2 * n, ArrayInit::Random(12));
    let out = k.array("out", 8, ArrayInit::Zero);
    let i = k.int_var("i");
    let s = k.float_var("s");
    k.push(k.assign(s, Expr::Float(0.0)));
    let body = vec![k.assign(
        s,
        Expr::Var(s) + Expr::load(a, Index::of(i)) * Expr::load(b, Index::two(i, 2, i, 0, 0)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n as i64), body));
    k.push(k.store(out, Index::constant(0), Expr::Var(s)));
    let mut program = k.lower();
    let reference = Interp::new(&program).run().expect("reference run");
    println!(
        "lowered: {} static instructions",
        program.main().inst_count()
    );

    // 2. Analyses: reuse classification and balanced weights of the body.
    for r in analyze_locality(program.main()) {
        println!(
            "locality: loop {} inst {} -> {:?}",
            r.loop_idx, r.inst_idx, r.kind
        );
    }
    let body_id = program.main().loops[0].body[0];
    let insts = program.main().block(body_id).insts.clone();
    let dag = Dag::new(&insts);
    let bal = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
    let trad = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Traditional));
    for (idx, inst) in insts.iter().enumerate() {
        if inst.op.is_load() {
            println!(
                "load weight at {idx}: traditional {}, balanced {}",
                trad[idx], bal[idx]
            );
        }
    }

    // 3. Optimize by hand: CSE, unroll the loop by 4, reschedule.
    local_cse(program.main_mut());
    balanced_scheduling::opt::copy_propagate(program.main_mut());
    balanced_scheduling::opt::dead_code_elim(program.main_mut());
    let unrolled = unroll_loop(program.main_mut(), 0, &UnrollLimits::for_factor(4));
    println!("unrolled: {}", unrolled.is_some());
    let profile = EdgeProfile::collect(&program).expect("profile");
    println!(
        "loop header runs {} times",
        profile.block(program.main().loops[0].header)
    );

    // 4. Schedule + allocate + simulate.
    balanced_scheduling::core::schedule_function(
        program.main_mut(),
        &WeightConfig::new(SchedulerKind::Balanced),
    );
    let alloc = allocate(&mut program);
    println!(
        "register allocation: {} assigned, {} spilled",
        alloc.assigned, alloc.spilled
    );
    let sim = Simulator::for_machine(&program, &MachineSpec::alpha21164())
        .run()
        .expect("simulates");
    assert_eq!(sim.checksum, reference.checksum, "same observable memory");
    println!(
        "simulated: {} cycles, {} load-interlock, CPI {:.2}",
        sim.metrics.cycles,
        sim.metrics.load_interlock,
        sim.metrics.cpi()
    );
}
