//! Compile and simulate a kernel written in the textual DSL.
//!
//! ```sh
//! cargo run --release --example dsl_kernel -- examples/kernels/stencil.bsk
//! ```

use balanced_scheduling::{CompileOptions, Experiment, SchedulerKind};
use balanced_scheduling::workloads::parse_kernel;

fn main() {
    let path = std::env::args().nth(1);
    let source = match &path {
        Some(p) => std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            std::process::exit(1);
        }),
        None => include_str!("kernels/stencil.bsk").to_string(),
    };
    let kernel = parse_kernel(&source).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let program = kernel.lower();
    println!(
        "parsed `{}`: {} regions, {} static instructions\n",
        kernel.name(),
        program.regions().len(),
        program.main().inst_count()
    );

    println!(
        "{:<22} {:>10} {:>12} {:>8}",
        "configuration", "cycles", "load stalls", "CPI"
    );
    for (label, opts) in [
        (
            "traditional",
            CompileOptions::new(SchedulerKind::Traditional),
        ),
        ("balanced", CompileOptions::new(SchedulerKind::Balanced)),
        (
            "balanced + LU4",
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
        ),
        (
            "balanced + LU4 + LA",
            CompileOptions::new(SchedulerKind::Balanced)
                .with_unroll(4)
                .with_locality(),
        ),
    ] {
        let run = Experiment::builder()
            .program(kernel.name(), program.clone())
            .compile_options(opts)
            .build()
            .expect("program supplied")
            .run()
            .expect("pipeline succeeds");
        assert!(run.checksum_ok);
        println!(
            "{label:<22} {:>10} {:>12} {:>8.2}",
            run.metrics.cycles,
            run.metrics.load_interlock,
            run.metrics.cpi()
        );
    }
}
