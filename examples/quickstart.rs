//! Quickstart: build a small kernel, compile it under traditional and
//! balanced scheduling, and compare the simulated outcomes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use balanced_scheduling::{CompileOptions, Experiment, SchedulerKind};
use balanced_scheduling::workloads::lang::ast::{Expr, Index};
use balanced_scheduling::workloads::lang::{ArrayInit, Kernel};

fn main() {
    // A streaming kernel: c[i] = 3·a[i] + b[i] over 16 KB arrays, so most
    // loads miss the 8 KB L1 and the schedulers face real latency
    // variance.
    let n = 2048;
    let mut k = Kernel::new("quickstart");
    let a = k.array("a", n, ArrayInit::Random(1));
    let b = k.array("b", n, ArrayInit::Random(2));
    let c = k.array("c", n, ArrayInit::Zero);
    let i = k.int_var("i");
    let body = vec![k.store(
        c,
        Index::of(i),
        Expr::load(a, Index::of(i)) * Expr::Float(3.0) + Expr::load(b, Index::of(i)),
    )];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n as i64), body));
    let program = k.lower();

    println!("kernel: c[i] = 3*a[i] + b[i], n = {n}\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>8}",
        "configuration", "cycles", "load stalls", "fixed stalls", "CPI"
    );
    let mut baseline = None;
    for (label, opts) in [
        (
            "traditional",
            CompileOptions::new(SchedulerKind::Traditional),
        ),
        ("balanced", CompileOptions::new(SchedulerKind::Balanced)),
        (
            "balanced + LU4",
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
        ),
        (
            "balanced + LU4 + LA",
            CompileOptions::new(SchedulerKind::Balanced)
                .with_unroll(4)
                .with_locality(),
        ),
    ] {
        let run = Experiment::builder()
            .program("quickstart", program.clone())
            .compile_options(opts)
            .build()
            .expect("program supplied")
            .run()
            .expect("pipeline succeeds");
        assert!(
            run.checksum_ok,
            "compiled code must compute the same result"
        );
        let m = &run.metrics;
        println!(
            "{label:<22} {:>10} {:>12} {:>12} {:>8.2}",
            m.cycles,
            m.load_interlock,
            m.fixed_interlock,
            m.cpi()
        );
        let base = *baseline.get_or_insert(m.cycles);
        if base != m.cycles {
            println!(
                "{:<22} speedup over traditional: {:.2}x",
                "",
                base as f64 / m.cycles as f64
            );
        }
    }
}
