//! Trace-scheduling study: a branchy kernel where trace scheduling picks
//! the hot path, with the cost of speculation and compensation visible in
//! the dynamic instruction count (paper §5.2).
//!
//! ```sh
//! cargo run --release --example trace_study
//! ```

use balanced_scheduling::{CompileOptions, Experiment, SchedulerKind};
use balanced_scheduling::workloads::kernel_by_name;

fn main() {
    for name in ["DYFESM", "doduc"] {
        let spec = kernel_by_name(name).expect("kernel exists");
        let program = spec.program();
        println!("== {} — {}", spec.name, spec.shape);
        println!(
            "{:<18} {:>12} {:>12} {:>10} {:>10}",
            "configuration", "cycles", "dyn insts", "branches", "comp code"
        );
        for (label, opts) in [
            (
                "BS + LU4",
                CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            ),
            (
                "BS + TrS + LU4",
                CompileOptions::new(SchedulerKind::Balanced)
                    .with_unroll(4)
                    .with_trace(),
            ),
            (
                "TS + TrS + LU4",
                CompileOptions::new(SchedulerKind::Traditional)
                    .with_unroll(4)
                    .with_trace(),
            ),
        ] {
            let run = Experiment::builder()
                .program(spec.name, program.clone())
                .compile_options(opts)
                .build()
                .expect("program supplied")
                .run()
                .expect("pipeline succeeds");
            println!(
                "{label:<18} {:>12} {:>12} {:>10} {:>10}",
                run.metrics.cycles,
                run.metrics.insts.total(),
                run.metrics.insts.branches,
                run.compile.trace.compensation_insts,
            );
        }
        println!();
    }
    println!(
        "DYFESM has no dominant path (50/50 branch with stores in both\n\
         arms), so trace scheduling pays speculation/compensation without\n\
         a payoff — the paper saw its dynamic count more than double.\n\
         doduc's conditionals similarly limit the trace picker."
    );
}
