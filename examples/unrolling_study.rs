//! Unrolling study: how loop unrolling interacts with balanced vs
//! traditional scheduling on one paper kernel — a miniature of the
//! paper's Tables 4 and 5.
//!
//! ```sh
//! cargo run --release --example unrolling_study [kernel-name]
//! ```

use balanced_scheduling::{CompileOptions, Experiment, SchedulerKind};
use balanced_scheduling::workloads::kernel_by_name;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ARC2D".to_string());
    let spec = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel {name}; try ARC2D, hydro2d, tomcatv, su2cor, ...");
        std::process::exit(1);
    });
    let program = spec.program();
    println!(
        "{}: {}\nshape: {}\n",
        spec.name, spec.description, spec.shape
    );

    println!(
        "{:<8} {:>12} {:>12} {:>9} {:>14} {:>14}",
        "unroll", "BS cycles", "TS cycles", "BS:TS", "BS load-stall", "TS load-stall"
    );
    for unroll in [None, Some(4), Some(8)] {
        let mut bs_opts = CompileOptions::new(SchedulerKind::Balanced);
        let mut ts_opts = CompileOptions::new(SchedulerKind::Traditional);
        bs_opts.unroll = unroll;
        ts_opts.unroll = unroll;
        let run = |opts: CompileOptions, what: &str| {
            Experiment::builder()
                .program(spec.name, program.clone())
                .compile_options(opts)
                .build()
                .expect("program supplied")
                .run()
                .expect(what)
        };
        let bs = run(bs_opts, "balanced pipeline");
        let ts = run(ts_opts, "traditional pipeline");
        println!(
            "{:<8} {:>12} {:>12} {:>9.2} {:>13.1}% {:>13.1}%",
            unroll.map_or("none".to_string(), |f| format!("x{f}")),
            bs.metrics.cycles,
            ts.metrics.cycles,
            bs.metrics.speedup_over(&ts.metrics),
            bs.metrics.load_interlock_fraction() * 100.0,
            ts.metrics.load_interlock_fraction() * 100.0,
        );
    }
    println!(
        "\nThe paper's observation: unrolling exposes more load-level\n\
         parallelism, which balanced scheduling converts into hidden load\n\
         latency while traditional scheduling leaves it on the table\n\
         (Table 5; speedups 1.05 -> 1.12 -> 1.18 on their workload)."
    );
}
