//! `balanced-scheduling` — umbrella crate for the reproduction of
//! Lo & Eggers, *Improving Balanced Scheduling with Compiler Optimizations
//! that Increase Instruction-Level Parallelism* (PLDI 1995).
//!
//! Re-exports every subsystem crate under one roof:
//!
//! * [`ir`] — the executable Alpha-like IR (instructions, CFG, code DAGs,
//!   reference interpreter).
//! * [`core`] — balanced / traditional / selective list scheduling (the
//!   paper's contribution).
//! * [`opt`] — loop unrolling, peeling, trace scheduling, locality
//!   analysis, predication, cleanup passes.
//! * [`regalloc`] — linear-scan register allocation with spill insertion.
//! * [`mem`] — the Alpha 21164-like memory hierarchy (3-level caches,
//!   lockup-free L1 MSHRs, TLBs).
//! * [`sim`] — the execution-driven single-issue non-blocking timing
//!   simulator.
//! * [`workloads`] — the loop-language frontend and the 17 paper-shaped
//!   kernels.
//! * [`pipeline`] — the end-to-end compile+simulate driver and experiment
//!   grids.
//!
//! The single public entry point is the [`Experiment`] builder,
//! re-exported at the crate root:
//!
//! ```
//! use balanced_scheduling::{Experiment, MachineSpec, OptLevel, SchedulerKind};
//!
//! let run = Experiment::builder()
//!     .kernel("TRFD")
//!     .opts(OptLevel::Unroll8Trace)
//!     .scheduler(SchedulerKind::Balanced)
//!     .machine(MachineSpec::alpha21164())
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(run.checksum_ok);
//! ```
//!
//! See `README.md` for a tour (including the old-call → builder-call
//! migration table) and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use bsched_core as core;
pub use bsched_ir as ir;
pub use bsched_mem as mem;
pub use bsched_opt as opt;
pub use bsched_pipeline as pipeline;
pub use bsched_regalloc as regalloc;
pub use bsched_sim as sim;
pub use bsched_trace as trace;
pub use bsched_workloads as workloads;

pub use bsched_pipeline::{
    resolve_kernel, CompileOptions, ConfigKind, Experiment, ExperimentBuilder, ExperimentError,
    OptLevel, RunResult, SchedulerKind, Session, TieBreak,
};
pub use bsched_sim::{MachineSpec, SimConfig};
