#!/usr/bin/env sh
# CI entry point: build everything, run the test suites, then smoke the
# experiment harness end to end on a two-kernel subset of the grid.
set -eu

cd "$(dirname "$0")/.."

echo "== build (workspace, all targets) =="
cargo build --release --workspace --all-targets

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== smoke: all_experiments on 2 kernels, cold vs warm cache =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
run_smoke() {
    BSCHED_JOBS="$1" BSCHED_CACHE_DIR="$SMOKE_CACHE" \
        ./target/release/all_experiments --kernels ARC2D,TRFD
}
cold="$(run_smoke 2)"
warm="$(run_smoke 1)"
[ "$cold" = "$warm" ] || { echo "FAIL: cold/warm or 2-vs-1-worker output differs"; exit 1; }
# Header + 2 kernels x 15 configurations.
lines="$(printf '%s\n' "$cold" | wc -l)"
[ "$lines" -eq 31 ] || { echo "FAIL: expected 31 output lines, got $lines"; exit 1; }

echo "CI OK"
