#!/usr/bin/env sh
# CI entry point: build everything, run the test suites, then smoke the
# experiment harness end to end on a two-kernel subset of the grid.
set -eu

cd "$(dirname "$0")/.."

echo "== build (workspace, all targets) =="
cargo build --release --workspace --all-targets

echo "== lint (clippy, warnings are errors) =="
cargo clippy -q --all-targets -- -D warnings

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== smoke: all_experiments on 2 kernels, cold vs warm cache =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
run_smoke() {
    BSCHED_JOBS="$1" BSCHED_CACHE_DIR="$SMOKE_CACHE" \
        ./target/release/all_experiments --kernels ARC2D,TRFD
}
cold="$(run_smoke 2)"
warm="$(run_smoke 1)"
[ "$cold" = "$warm" ] || { echo "FAIL: cold/warm or 2-vs-1-worker output differs"; exit 1; }
# Header + 2 kernels x 15 configurations.
lines="$(printf '%s\n' "$cold" | wc -l)"
[ "$lines" -eq 31 ] || { echo "FAIL: expected 31 output lines, got $lines"; exit 1; }

echo "== verify gate: conformance suite on 2 kernels + fuzz smoke =="
# Re-runs the same subset under --verify: every cell's schedule is
# proven legal, weights cross-checked against the reference
# implementation, the compiled code replayed through the interpreter,
# and the simulator metrics checked against the metamorphic
# invariants. The cold smoke above cached the cells *unverified*, so
# this also exercises the recompute-on-unverified path. Then a
# 2,000-iteration seeded fuzz campaign (time-budgeted so slow machines
# stop early rather than time out) drives random kernels through the
# full pipeline. Any violation or fuzz failure exits nonzero; the
# verified output must be byte-identical to the unverified run.
VERIFY_ERR="$SMOKE_CACHE/verify.err"
verified="$(BSCHED_CACHE_DIR="$SMOKE_CACHE" \
    ./target/release/all_experiments --verify --kernels ARC2D,TRFD \
        --fuzz 2000 --fuzz-seconds 120 2>"$VERIFY_ERR")" \
    || { cat "$VERIFY_ERR"; echo "FAIL: verify gate"; exit 1; }
[ "$verified" = "$cold" ] || { echo "FAIL: --verify changed stdout"; exit 1; }
grep "verification:" "$VERIFY_ERR" || { echo "FAIL: no verification report"; exit 1; }
grep -q "verification: .* 0 violations" "$VERIFY_ERR" \
    || { cat "$VERIFY_ERR"; echo "FAIL: violations found"; exit 1; }

echo "== smoke: weights microbench vs recorded BENCH_pr2.json baseline =="
# Re-measures the naive-reference vs bitset-kernel arms, writes a fresh
# BENCH_pr2.json next to the cache dir, and fails if any case's speedup
# ratio fell more than 10% below the committed baseline (ratios, not
# wall times, so the check is machine-independent).
cargo bench -q -p bsched-bench --bench weights -- \
    --json "$SMOKE_CACHE/BENCH_pr2.json" --check "$PWD/BENCH_pr2.json"

echo "CI OK"
