#!/usr/bin/env sh
# CI entry point: build everything, run the test suites, then smoke the
# experiment harness end to end on a two-kernel subset of the grid.
set -eu

cd "$(dirname "$0")/.."

echo "== build (workspace, all targets) =="
cargo build --release --workspace --all-targets

echo "== lint (clippy, warnings are errors) =="
cargo clippy -q --all-targets -- -D warnings

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== smoke: all_experiments on 2 kernels, cold vs warm cache =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
run_smoke() {
    BSCHED_JOBS="$1" BSCHED_CACHE_DIR="$SMOKE_CACHE" \
        ./target/release/all_experiments --kernels ARC2D,TRFD
}
cold="$(run_smoke 2)"
warm="$(run_smoke 1)"
[ "$cold" = "$warm" ] || { echo "FAIL: cold/warm or 2-vs-1-worker output differs"; exit 1; }
# Header + 2 kernels x 15 configurations.
lines="$(printf '%s\n' "$cold" | wc -l)"
[ "$lines" -eq 31 ] || { echo "FAIL: expected 31 output lines, got $lines"; exit 1; }

echo "== verify gate: conformance suite on 2 kernels + fuzz smoke =="
# Re-runs the same subset under --verify: every cell's schedule is
# proven legal, weights cross-checked against the reference
# implementation, the compiled code replayed through the interpreter,
# and the simulator metrics checked against the metamorphic
# invariants. The cold smoke above cached the cells *unverified*, so
# this also exercises the recompute-on-unverified path. Then a
# 2,000-iteration seeded fuzz campaign (time-budgeted so slow machines
# stop early rather than time out) drives random kernels through the
# full pipeline. Any violation or fuzz failure exits nonzero; the
# verified output must be byte-identical to the unverified run.
VERIFY_ERR="$SMOKE_CACHE/verify.err"
verified="$(BSCHED_CACHE_DIR="$SMOKE_CACHE" \
    ./target/release/all_experiments --verify --kernels ARC2D,TRFD \
        --fuzz 2000 --fuzz-seconds 120 2>"$VERIFY_ERR")" \
    || { cat "$VERIFY_ERR"; echo "FAIL: verify gate"; exit 1; }
[ "$verified" = "$cold" ] || { echo "FAIL: --verify changed stdout"; exit 1; }
grep "verification:" "$VERIFY_ERR" || { echo "FAIL: no verification report"; exit 1; }
grep -q "verification: .* 0 violations" "$VERIFY_ERR" \
    || { cat "$VERIFY_ERR"; echo "FAIL: violations found"; exit 1; }

echo "== smoke: dual-engine verified run (interpret vs block), uncached =="
# The engine knob end to end: the same verified 2-kernel subset under
# each simulation engine with the cache disabled, so both engines
# genuinely execute every cell. Stdout must be byte-identical to the
# cached default-engine run above, zero violations, and the stderr run
# report must name the engine that ran.
for eng in interpret block; do
    ENG_ERR="$SMOKE_CACHE/engine.$eng.err"
    engined="$(BSCHED_NO_CACHE=1 BSCHED_SIM_ENGINE="$eng" \
        ./target/release/all_experiments --verify --kernels ARC2D,TRFD 2>"$ENG_ERR")" \
        || { cat "$ENG_ERR"; echo "FAIL: $eng engine run"; exit 1; }
    [ "$engined" = "$cold" ] \
        || { echo "FAIL: $eng engine changed stdout"; exit 1; }
    grep -q "verification: .* 0 violations" "$ENG_ERR" \
        || { cat "$ENG_ERR"; echo "FAIL: $eng engine violations"; exit 1; }
    grep -q "engine: $eng" "$ENG_ERR" \
        || { cat "$ENG_ERR"; echo "FAIL: run report must name engine $eng"; exit 1; }
done

echo "== smoke: sampled mode (estimates, cache separation, exact bytes) =="
# SimPoint-style sampling end to end on the warm 2-kernel cache. The
# sampled verified run must pass its conformance gate (instruction
# counts and checksum exact by construction, estimates within the
# committed tolerances vs a fresh exact run) while *executing* every
# cell: the mode axis is cache-key-blind but not metrics-invariant, so
# sampled results must never be answered from — or written into — the
# exact-result cache. Afterwards the exact grid must still be answered
# fully from the warm cache with byte-identical stdout, and disabling
# sampling via the environment must be a no-op.
SAMPLE_ERR="$SMOKE_CACHE/sample.err"
sampled="$(BSCHED_CACHE_DIR="$SMOKE_CACHE" \
    ./target/release/all_experiments --sample --verify --kernels ARC2D,TRFD 2>"$SAMPLE_ERR")" \
    || { cat "$SAMPLE_ERR"; echo "FAIL: sampled verified run"; exit 1; }
grep -q "verification: .* 0 violations" "$SAMPLE_ERR" \
    || { cat "$SAMPLE_ERR"; echo "FAIL: sampled verification"; exit 1; }
grep -q "mode: sampled(" "$SAMPLE_ERR" \
    || { cat "$SAMPLE_ERR"; echo "FAIL: run report must name the sampled mode"; exit 1; }
grep -q "sampling: .* insts cycle-simulated" "$SAMPLE_ERR" \
    || { cat "$SAMPLE_ERR"; echo "FAIL: no sampling report section"; exit 1; }
grep -q "0 memory hits, 0 disk hits, 30 executed (0% cache hits)" "$SAMPLE_ERR" \
    || { cat "$SAMPLE_ERR"; echo "FAIL: sampled run must not hit the exact cache"; exit 1; }
[ "$sampled" != "$cold" ] \
    || { echo "FAIL: sampled table should be an estimate, not a cache readback"; exit 1; }
after="$(BSCHED_CACHE_DIR="$SMOKE_CACHE" \
    ./target/release/all_experiments --kernels ARC2D,TRFD 2>"$SMOKE_CACHE/after.err")"
[ "$after" = "$cold" ] || { echo "FAIL: sampled run altered cached exact results"; exit 1; }
grep -q " 0 executed (100% cache hits)" "$SMOKE_CACHE/after.err" \
    || { cat "$SMOKE_CACHE/after.err"; \
         echo "FAIL: exact cache no longer warm after the sampled run"; exit 1; }
disabled="$(BSCHED_SAMPLE=0 BSCHED_CACHE_DIR="$SMOKE_CACHE" \
    ./target/release/all_experiments --kernels ARC2D,TRFD)"
[ "$disabled" = "$cold" ] \
    || { echo "FAIL: BSCHED_SAMPLE=0 must leave exact stdout byte-identical"; exit 1; }

echo "== smoke: exact scheduler arm vs recorded BENCH_pr9.json baseline =="
# The optimality table on 2 kernels at the default node budget. The
# binary itself is the gate: every audited region is legality-checked,
# and each arm's cost is asserted >= the exact bound before a row
# prints. --check then compares the search against the committed
# baseline — the proven fraction must not fall below 90% of the
# recorded value and the expanded node count must not grow by more
# than 1/0.9 (search-quality regressions, not wall time, so the check
# is machine-independent). The full 17-kernel table is recorded in the
# committed BENCH_pr9.json and results/optimality.csv.
./target/release/optimality --kernels TRFD,ARC2D \
    --check "$PWD/BENCH_pr9.json" --check-ratio 0.9 >/dev/null \
    || { echo "FAIL: exact-arm optimality check"; exit 1; }

echo "== smoke: machine zoo (2 kernels x 3 machines, verified, dual-engine) =="
# The machine-description axis end to end: the balanced-vs-traditional
# gap table on a 2-kernel subset across three machines (the default
# alpha21164, the 4-wide superscalar, and the blocking-cache control
# that inverts the paper's result), every cell verified, under each
# simulation engine with the cache disabled so both engines genuinely
# execute every cell. Machine descriptions are engine-invariant, so
# stdout must be byte-identical across engines, with zero violations.
MACH_OUT=""
for eng in interpret block; do
    MACH_ERR="$SMOKE_CACHE/machines.$eng.err"
    mach="$(BSCHED_NO_CACHE=1 BSCHED_SIM_ENGINE="$eng" \
        ./target/release/machines --verify --kernels ARC2D,TRFD \
            --machines alpha21164,wide4,blocking21164 2>"$MACH_ERR")" \
        || { cat "$MACH_ERR"; echo "FAIL: machines $eng run"; exit 1; }
    grep -q "verification: .* 0 violations" "$MACH_ERR" \
        || { cat "$MACH_ERR"; echo "FAIL: machines $eng violations"; exit 1; }
    grep -q "engine: $eng" "$MACH_ERR" \
        || { cat "$MACH_ERR"; echo "FAIL: machines report must name engine $eng"; exit 1; }
    if [ -z "$MACH_OUT" ]; then
        MACH_OUT="$mach"
    else
        [ "$mach" = "$MACH_OUT" ] \
            || { echo "FAIL: machine zoo differs between engines"; exit 1; }
    fi
done

echo "== gate: machine zoo vs recorded BENCH_pr10.json baseline =="
# The full-zoo gap table against the committed baseline. Cycle counts
# are deterministic (never wall clock), so the gate is exact equality —
# any drift in any machine's total is a modeling regression, not noise.
./target/release/machines --check "$PWD/BENCH_pr10.json" >/dev/null \
    || { echo "FAIL: machines baseline check"; exit 1; }

echo "== smoke: sampling microbench vs recorded BENCH_pr8.json baseline =="
# Re-measures the per-kernel exact-vs-sampled cells (accuracy bounds
# asserted inside the bench) and fails if any case's speedup ratio fell
# below half the committed baseline. The full-grid headline case needs
# --grid and is recorded in the committed BENCH_pr8.json.
cargo bench -q -p bsched-bench --bench sampling -- \
    --check "$PWD/BENCH_pr8.json" --check-ratio 0.5

echo "== smoke: simulator microbench vs recorded BENCH_pr7.json baseline =="
# Re-measures the interpreting vs block-compiled engine on the
# per-kernel cells and fails if any case's speedup ratio fell below
# half the committed baseline (ratios, not wall times; the generous
# floor catches the block engine silently degenerating toward 1x, not
# scheduler jitter — the full-grid case needs --grid and is recorded
# in the committed BENCH_pr7.json).
cargo bench -q -p bsched-bench --bench simulator -- \
    --check "$PWD/BENCH_pr7.json" --check-ratio 0.5

echo "== smoke: weights microbench vs recorded BENCH_pr2.json baseline =="
# Re-measures the naive-reference vs bitset-kernel arms, writes a fresh
# BENCH_pr2.json next to the cache dir, and fails if any case's speedup
# ratio fell more than 10% below the committed baseline (ratios, not
# wall times, so the check is machine-independent).
BENCH_SAMPLES=31 cargo bench -q -p bsched-bench --bench weights -- \
    --json "$SMOKE_CACHE/BENCH_pr2.json" --check "$PWD/BENCH_pr2.json"

echo "== smoke: tracing overhead (recorder compiled in, disabled) =="
# The trace recorder's off state must be near-free: every point pays
# one relaxed atomic load, and the weight kernel itself has none. Gate
# at a tight 0.97 floor against the baseline this CI run just recorded
# (same machine, minutes apart, min-based ratios — stable to ~1%
# where cross-run median ratios swing ~8% under scheduling noise).
# The committed pre-tracing baseline is still enforced above at the
# machine-independent 10% floor. (The traced-on path is covered by
# the byte-identity and conservation tests.) Per-process code-layout
# variance runs a few percent even on min times, and only ever causes
# false *failures* at this floor, so the gate takes the best of three
# measurement attempts; a genuine >=3% regression fails all three.
overhead_ok=0
for attempt in 1 2 3; do
    if BENCH_SAMPLES=31 cargo bench -q -p bsched-bench --bench weights -- \
        --check "$SMOKE_CACHE/BENCH_pr2.json" --check-ratio 0.97; then
        overhead_ok=1
        break
    fi
    echo "tracing-overhead attempt $attempt regressed; re-measuring"
done
[ "$overhead_ok" -eq 1 ] || { echo "FAIL: tracing-overhead gate"; exit 1; }

echo "== smoke: traced run report + exports =="
# One traced warm-cache run: the trace flags must not change stdout
# (cache keys are tracing-blind) and both sinks must be written.
traced="$(BSCHED_CACHE_DIR="$SMOKE_CACHE" \
    ./target/release/all_experiments --kernels ARC2D,TRFD \
        --trace-summary --trace-json "$SMOKE_CACHE/trace.json" \
        --trace-chrome "$SMOKE_CACHE/trace.chrome.json" 2>"$SMOKE_CACHE/trace.err")" \
    || { cat "$SMOKE_CACHE/trace.err"; echo "FAIL: traced run"; exit 1; }
[ "$traced" = "$cold" ] || { echo "FAIL: tracing flags changed stdout"; exit 1; }
grep -q "bsched-trace summary" "$SMOKE_CACHE/trace.err" \
    || { cat "$SMOKE_CACHE/trace.err"; echo "FAIL: no trace summary"; exit 1; }
[ -s "$SMOKE_CACHE/trace.json" ] || { echo "FAIL: no trace.json"; exit 1; }
[ -s "$SMOKE_CACHE/trace.chrome.json" ] || { echo "FAIL: no chrome trace"; exit 1; }

echo "== smoke: bsched-serve over a unix socket =="
# A resident server on a cold cache. Three concurrent clients submit the
# identical 2-kernel grid: in-flight dedup plus the shared sharded store
# must compute each of the 30 cells exactly once. Then a verified grid
# through the server must be byte-identical to the direct
# all_experiments output, and a wire-level shutdown must drain
# gracefully (exit 0).
SERVE_SOCK="$SMOKE_CACHE/serve.sock"
SERVE_CACHE="$SMOKE_CACHE/serve-cache"
BSCHED_CACHE_DIR="$SERVE_CACHE" ./target/release/bsched-serve \
    --unix "$SERVE_SOCK" --jobs 2 2>"$SMOKE_CACHE/serve.err" &
SERVE_PID=$!
tries=0
while [ ! -S "$SERVE_SOCK" ] && [ "$tries" -lt 100 ]; do
    sleep 0.1; tries=$((tries + 1))
done
[ -S "$SERVE_SOCK" ] || { cat "$SMOKE_CACHE/serve.err"; echo "FAIL: server did not come up"; exit 1; }
./target/release/bsched-client --connect "unix:$SERVE_SOCK" ping \
    || { echo "FAIL: serve ping"; exit 1; }
for n in 1 2 3; do
    ./target/release/bsched-client --connect "unix:$SERVE_SOCK" \
        grid --kernels ARC2D,TRFD >"$SMOKE_CACHE/served.$n" 2>/dev/null &
    eval "CLIENT_$n=\$!"
done
wait "$CLIENT_1" "$CLIENT_2" "$CLIENT_3" \
    || { echo "FAIL: concurrent serve clients"; exit 1; }
for n in 1 2 3; do
    [ "$(cat "$SMOKE_CACHE/served.$n")" = "$cold" ] \
        || { echo "FAIL: served grid $n differs from direct output"; exit 1; }
done
./target/release/bsched-client --connect "unix:$SERVE_SOCK" stats \
    >"$SMOKE_CACHE/serve.stats" 2>/dev/null
grep -q "engine executed  30$" "$SMOKE_CACHE/serve.stats" \
    || { cat "$SMOKE_CACHE/serve.stats"; \
         echo "FAIL: 3 clients x 30 cells must execute exactly 30"; exit 1; }
served_verified="$(./target/release/bsched-client --connect "unix:$SERVE_SOCK" \
    grid --kernels ARC2D,TRFD --verify 2>/dev/null)" \
    || { echo "FAIL: verified served grid"; exit 1; }
[ "$served_verified" = "$cold" ] \
    || { echo "FAIL: verified served grid differs from direct output"; exit 1; }
./target/release/bsched-client --connect "unix:$SERVE_SOCK" shutdown 2>/dev/null \
    || { echo "FAIL: serve shutdown request"; exit 1; }
wait "$SERVE_PID" || { cat "$SMOKE_CACHE/serve.err"; echo "FAIL: server exit status"; exit 1; }
grep -q "shutdown complete" "$SMOKE_CACHE/serve.err" \
    || { cat "$SMOKE_CACHE/serve.err"; echo "FAIL: no graceful drain"; exit 1; }

echo "CI OK"
