//! A deterministic, seedable pseudo-random generator.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast,
//! well-distributed 64-bit generator. Determinism across platforms and
//! process runs is the property the workloads and tests rely on; the
//! statistical quality is far beyond what array initialisation and
//! property-test case generation need.

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from a seed. Equal seeds yield equal streams
    /// on every platform.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A float uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // for spans that do not divide 2^64 is irrelevant here.
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(((u128::from(self.next_u64()) * u128::from(span)) >> 64) as i64)
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Derives an independent generator (for nested structures that
    /// should not perturb the parent stream).
    pub fn fork(&mut self) -> Prng {
        Prng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // SplitMix64 with seed 1234567: published reference outputs.
        let mut r = Prng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::new(7);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.range_i64(-5, 5);
            assert!((-5..5).contains(&i));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let x = r.index(3);
            assert!(x < 3);
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut r = Prng::new(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
