//! Length-prefixed JSON framing for the experiment-serving wire
//! protocol.
//!
//! A frame is a 4-byte big-endian length `n` followed by exactly `n`
//! bytes of UTF-8 JSON. The length covers the payload only, never the
//! prefix. `n` is bounded by an explicit per-reader maximum so a
//! hostile or corrupted peer cannot make the reader allocate
//! gigabytes from a four-byte header; oversized frames are rejected
//! *before* any payload is read.
//!
//! Framing errors are deliberately split from transport errors:
//! a clean EOF *between* frames is a normal end of stream
//! ([`read_frame`] returns `Ok(None)`), while an EOF *inside* a frame,
//! an oversized length, or a payload that does not parse as JSON are
//! protocol violations the server answers by dropping the connection
//! (never by panicking).

use crate::json::{Json, JsonError};
use std::fmt;
use std::io::{self, Read, Write};

/// Default upper bound on a frame payload (8 MiB) — far above any grid
/// request or result batch, far below anything that could hurt.
pub const MAX_FRAME_LEN: usize = 8 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeded the reader's maximum.
    Oversized {
        /// Length announced by the prefix.
        len: usize,
        /// The reader's configured maximum.
        max: usize,
    },
    /// The payload was not valid UTF-8 JSON.
    Malformed(JsonError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: big-endian `u32` payload length, then the compact
/// canonical serialization of `doc`.
///
/// # Errors
///
/// Propagates transport errors from `w`.
pub fn write_frame(w: &mut impl Write, doc: &Json) -> io::Result<()> {
    let payload = doc.to_string_compact();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload over 4 GiB"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame, enforcing `max_len` on the announced payload size.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between requests); an EOF *inside* a frame is an
/// [`FrameError::Io`] with `ErrorKind::UnexpectedEof`.
///
/// # Errors
///
/// [`FrameError`] on transport failure, an oversized length prefix, or
/// a payload that is not valid JSON.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Json>, FrameError> {
    let mut prefix = [0u8; 4];
    // Hand-rolled first read so EOF-at-boundary and EOF-mid-prefix are
    // distinguishable.
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_len {
        return Err(FrameError::Oversized { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("EOF inside {len}-byte frame payload: {e}"),
        ))
    })?;
    let text = std::str::from_utf8(&payload).map_err(|_| {
        FrameError::Malformed(JsonError {
            at: 0,
            msg: "frame payload is not UTF-8",
        })
    })?;
    Json::parse(text).map(Some).map_err(FrameError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn doc() -> Json {
        Json::obj(vec![
            ("type", Json::Str("ping".into())),
            ("v", Json::u64(1)),
        ])
    }

    #[test]
    fn round_trips_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc()).unwrap();
        write_frame(&mut buf, &Json::Arr(vec![Json::u64(7)])).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), Some(doc()));
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_LEN).unwrap(),
            Some(Json::Arr(vec![Json::u64(7)]))
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), None);
    }

    #[test]
    fn clean_eof_is_none_but_truncation_is_an_error() {
        // Empty stream: clean end.
        assert!(read_frame(&mut Cursor::new(Vec::new()), 64).unwrap().is_none());
        // Every strict prefix of a valid frame must error, not hang or
        // panic.
        let mut full = Vec::new();
        write_frame(&mut full, &doc()).unwrap();
        for cut in 1..full.len() {
            let err = read_frame(&mut Cursor::new(full[..cut].to_vec()), MAX_FRAME_LEN)
                .expect_err("truncated frame must fail");
            assert!(matches!(err, FrameError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf), 1024).expect_err("oversized");
        match err {
            FrameError::Oversized { len, max } => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn garbage_payload_is_malformed() {
        let payload = b"{not json";
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(payload);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), 64),
            Err(FrameError::Malformed(_))
        ));

        // Non-UTF-8 payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            read_frame(&mut Cursor::new(buf), 64),
            Err(FrameError::Malformed(_))
        ));
    }
}
