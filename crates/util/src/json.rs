//! A minimal JSON value type with a hand-rolled reader and writer.
//!
//! The on-disk experiment cache stores one small, flat document per
//! cell; this module supports exactly the JSON subset those documents
//! need — objects, arrays, strings, numbers (`i64`/`u64`/`f64`), bools
//! and null — with no external dependencies. Object insertion order is
//! preserved so emitted documents are byte-stable.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integral values up to 2^53
    /// round-trip exactly, which covers every counter the cache stores
    /// (cycle counts stay far below that in practice).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so serialization is
    /// canonical: equal documents produce equal bytes.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A number node from a `u64` (exact up to 2^53).
    #[must_use]
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// The value under `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This node as a `u64` counter, if it is a non-negative integral
    /// number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This node as an `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This node as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This node as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a compact canonical string (sorted object keys, no
    /// whitespace).
    #[must_use]
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
                    // Integral: emit without the trailing ".0".
                    let _ = fmt::Write::write_fmt(out, format_args!("{}", *n as i64));
                } else {
                    // Ryu-style shortest form is not in std; {:?} prints
                    // enough digits to round-trip.
                    let _ = fmt::Write::write_fmt(out, format_args!("{n:?}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the cache
                            // documents; map them to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_flat_documents() {
        let doc = Json::obj(vec![
            ("cycles", Json::u64(123_456_789)),
            ("ok", Json::Bool(true)),
            ("label", Json::Str("BS+LU4".into())),
            ("rate", Json::Num(0.875)),
            ("levels", Json::Arr(vec![Json::u64(1), Json::u64(2)])),
            ("nothing", Json::Null),
        ]);
        let text = doc.to_string_compact();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
        // Canonical: re-serializing parses to the same bytes.
        assert_eq!(back.to_string_compact(), text);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 , true ] } ").unwrap();
        let key = "a\n\"b";
        let arr = v.get(key).unwrap();
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[1].as_f64(), Some(-25.0));
                assert_eq!(items[2].as_bool(), Some(true));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        for v in [0u64, 1, 2, 1 << 40, (1 << 53) - 1, 987_654_321_012_345] {
            let text = Json::u64(v).to_string_compact();
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v), "{v}");
        }
    }
}
