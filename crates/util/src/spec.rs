//! One key=value spec grammar for every CLI/env knob.
//!
//! Three knob families parse small textual specs: `--sample=` /
//! `BSCHED_SAMPLE` (comma-separated `k=8,interval=1000`), `--engine=` /
//! `BSCHED_SIM_ENGINE` (a bare name), and `--machine=` /
//! `BSCHED_MACHINE` (a named machine plus `+key=value` modifiers). They
//! share one contract, implemented here so it cannot drift:
//!
//! * integers accept decimal or `0x` hex ([`parse_u64`]),
//! * pair lists split on a separator with per-pair shape errors
//!   ([`pairs`]),
//! * malformed specs format as
//!   `invalid <what> spec <spec> (<reason>); valid: <choices>`
//!   ([`invalid`]) and unknown names as
//!   `unknown <what> <name>; <valid phrase>` ([`unknown`]),
//! * command-line front ends report the flag, print the error to
//!   stderr, and exit with status **2** ([`exit2`]).

use std::fmt;

/// Parses an integer written in decimal or `0x`/`0X` hex.
#[must_use]
pub fn parse_u64(v: &str) -> Option<u64> {
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Splits `body` on `sep` into trimmed `key=value` pairs.
///
/// # Errors
///
/// A reason string (suitable for [`invalid`]) when any part lacks the
/// `key=value` shape.
pub fn pairs(body: &str, sep: char) -> Result<Vec<(&str, &str)>, String> {
    body.split(sep)
        .map(|part| {
            let part = part.trim();
            part.split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| format!("expected key=value, got {part:?}"))
        })
        .collect()
}

/// Formats the shared malformed-spec error:
/// `invalid {what} spec {spec:?} ({reason}); valid: {valid}`.
#[must_use]
pub fn invalid(what: &str, spec: &str, reason: &str, valid: &str) -> String {
    format!("invalid {what} spec {spec:?} ({reason}); valid: {valid}")
}

/// Formats the shared unknown-name error:
/// `unknown {what} {name:?}; {valid_phrase}`.
#[must_use]
pub fn unknown(what: &str, name: &str, valid_phrase: &str) -> String {
    format!("unknown {what} {name:?}; {valid_phrase}")
}

/// The CLI half of the contract: report a bad flag or environment value
/// on stderr and exit with status 2 (usage error), never 1.
pub fn exit2(context: &str, err: &dyn fmt::Display) -> ! {
    eprintln!("{context}: {err}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_u64_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0x2a"), Some(42));
        assert_eq!(parse_u64("0X2A"), Some(42));
        assert_eq!(parse_u64("0xb5ed"), Some(0xb5ed));
        assert_eq!(parse_u64(""), None);
        assert_eq!(parse_u64("0x"), None);
        assert_eq!(parse_u64("-3"), None);
        assert_eq!(parse_u64("4k"), None);
    }

    #[test]
    fn pairs_split_and_trim() {
        assert_eq!(
            pairs("k=8, interval = 1000", ',').unwrap(),
            vec![("k", "8"), ("interval", "1000")]
        );
        assert_eq!(pairs("bp=gshare+iw=4", '+').unwrap(), vec![("bp", "gshare"), ("iw", "4")]);
        let e = pairs("k=8,oops", ',').unwrap_err();
        assert!(e.contains("expected key=value") && e.contains("\"oops\""), "{e}");
    }

    #[test]
    fn error_shapes_are_stable() {
        assert_eq!(
            invalid("sampling", "k=0", "k must be >= 1", "k=<n>"),
            "invalid sampling spec \"k=0\" (k must be >= 1); valid: k=<n>"
        );
        assert_eq!(
            unknown("machine", "vax", "valid machines: alpha21164"),
            "unknown machine \"vax\"; valid machines: alpha21164"
        );
    }
}
