//! FNV-1a 64-bit hashing.
//!
//! The experiment cache addresses results by a stable content hash of
//! the cell's canonical serialization. FNV-1a is tiny, has no seed or
//! platform dependence (unlike `std`'s `DefaultHasher`, whose output is
//! explicitly unstable across releases), and is collision-resistant
//! enough for a keyspace of a few thousand cells — and the cache layer
//! double-checks the full canonical key on every hit anyway.

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A hasher in its initial state (the FNV offset basis).
    #[must_use]
    pub fn new() -> Self {
        Fnv1a {
            state: OFFSET_BASIS,
        }
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot convenience.
    #[must_use]
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(Fnv1a::hash(b""), 0xcbf29ce484222325);
        assert_eq!(Fnv1a::hash(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(Fnv1a::hash(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), Fnv1a::hash(b"foobar"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(Fnv1a::hash(b"cell-1"), Fnv1a::hash(b"cell-2"));
    }
}
