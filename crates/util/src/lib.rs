//! `bsched-util` — std-only utilities shared across the workspace.
//!
//! The build environment has no access to the crates registry, so every
//! piece of infrastructure the reproduction needs beyond `std` lives
//! here, hand-rolled:
//!
//! * [`rng`] — a deterministic SplitMix64 generator used for workload
//!   array initialisation and the randomized property tests,
//! * [`fnv`] — FNV-1a 64-bit hashing for content-addressed cache keys,
//! * [`json`] — a minimal JSON reader/writer (objects, arrays, strings,
//!   integers, floats, bools, null) for the on-disk result cache,
//! * [`frame`] — length-prefixed JSON framing for the `bsched-serve`
//!   wire protocol,
//! * [`spec`] — the shared key=value spec grammar behind `--sample=`,
//!   `--engine=`, and `--machine=` (one parse/error/exit-2 contract).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fnv;
pub mod frame;
pub mod json;
pub mod rng;
pub mod spec;

pub use fnv::Fnv1a;
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use json::Json;
pub use rng::Prng;
