//! Randomized property tests for register allocation: colorings are
//! proper, and the rewritten code preserves semantics. Cases come from
//! the workspace's seeded [`Prng`].

use bsched_ir::{FuncBuilder, Interp, Op, Program, RegClass};
use bsched_regalloc::allocate;
use bsched_regalloc::coloring::{color, interference};
use bsched_util::Prng;

/// Builds a straight-line program with `n` chained float values and `w`
/// independent live webs (w controls pressure).
fn pressure_program(webs: usize, chain: usize) -> Program {
    let mut p = Program::new("prop");
    let r = p.add_region("out", (webs * 8) as u64 + 8);
    let mut b = FuncBuilder::new("main");
    let base = b.load_region_addr(r);
    let mut heads = Vec::new();
    for w in 0..webs {
        let mut v = b.fconst(w as f64 + 1.0);
        for _ in 0..chain {
            v = b.binop_imm_like(v);
        }
        heads.push(v);
    }
    for (w, v) in heads.iter().enumerate() {
        b.store(*v, base, (w * 8) as i64)
            .with_region(r)
            .emit(&mut b);
    }
    b.ret();
    p.set_main(b.finish());
    p
}

trait FMulSelf {
    fn binop_imm_like(&mut self, v: bsched_ir::Reg) -> bsched_ir::Reg;
}
impl FMulSelf for FuncBuilder {
    fn binop_imm_like(&mut self, v: bsched_ir::Reg) -> bsched_ir::Reg {
        self.binop(Op::FMul, v, v)
    }
}

#[test]
fn coloring_is_proper() {
    let mut rng = Prng::new(0xA110_0001);
    for case in 0..32 {
        let webs = 1 + rng.index(39);
        let chain = rng.index(4);
        let p = pressure_program(webs, chain);
        let g = interference(p.main());
        let (colors, spilled) = color(&g, 8);
        for (i, &reg) in g.nodes.iter().enumerate() {
            if let Some(&c) = colors.get(&reg) {
                assert!(c < 8, "case {case} (webs {webs}, chain {chain})");
                for &j in &g.adj[i] {
                    if let Some(&cj) = colors.get(&g.nodes[j]) {
                        assert_ne!(
                            c, cj,
                            "case {case} (webs {webs}, chain {chain}): adjacent nodes share a color"
                        );
                    }
                }
            }
        }
        // Everything is either colored or spilled.
        for &reg in &g.nodes {
            assert!(
                colors.contains_key(&reg) || spilled.contains(&reg),
                "case {case} (webs {webs}, chain {chain})"
            );
        }
    }
}

#[test]
fn allocation_preserves_semantics() {
    let mut rng = Prng::new(0xA110_0002);
    for case in 0..32 {
        let webs = 1 + rng.index(47);
        let chain = rng.index(3);
        let mut p = pressure_program(webs, chain);
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = allocate(&mut p);
        assert!(
            bsched_ir::verify_program(&p).is_ok(),
            "case {case} (webs {webs}, chain {chain})"
        );
        let got = Interp::new(&p).run().unwrap().checksum;
        assert_eq!(want, got, "case {case} (webs {webs}, chain {chain})");
        // High web counts must spill (28 allocatable floats).
        if webs > 35 && chain == 0 {
            assert!(
                stats.spilled > 0 || stats.assigned >= webs as u64,
                "case {case} (webs {webs}, chain {chain})"
            );
        }
        // No virtual registers survive.
        for (_, blk) in p.main().iter_blocks() {
            for inst in &blk.insts {
                for &s in inst.srcs() {
                    assert!(s.is_phys(), "case {case} (webs {webs}, chain {chain})");
                }
                if let Some(d) = inst.dst {
                    assert!(d.is_phys(), "case {case} (webs {webs}, chain {chain})");
                }
            }
        }
        let _ = RegClass::Int;
    }
}
