//! Exact-interference graph coloring.
//!
//! The linear-scan intervals in [`crate::liveness_points`] ignore lifetime
//! holes, which over-constrains tightly scheduled unrolled blocks (a
//! pressure-gated schedule with ≤27 simultaneously-live floats can still
//! show >31 *interval* overlap). This allocator computes exact per-point
//! interference from a backward liveness walk and colors greedily; only
//! registers that genuinely exceed the register file spill.

use bsched_ir::{Cfg, Function, Liveness, Reg};
use std::collections::{HashMap, HashSet};

/// Exact interference graph over virtual registers.
#[derive(Debug, Default)]
pub struct Interference {
    /// Node list in first-appearance order (block layout order).
    pub nodes: Vec<Reg>,
    /// Adjacency sets, indexed like `nodes`.
    pub adj: Vec<HashSet<usize>>,
    /// Static use counts (spill-cost proxy).
    pub uses: HashMap<Reg, u32>,
}

/// Builds the exact interference graph of `func`'s virtual registers.
#[must_use]
pub fn interference(func: &Function) -> Interference {
    let cfg = Cfg::new(func);
    let live_info = Liveness::new(func, &cfg);

    let mut g = Interference::default();
    let mut index: HashMap<Reg, usize> = HashMap::new();
    // Deterministic node order: first textual appearance.
    for (_, block) in func.iter_blocks() {
        for inst in &block.insts {
            for &s in inst.srcs() {
                if !s.is_phys() && !index.contains_key(&s) {
                    index.insert(s, g.nodes.len());
                    g.nodes.push(s);
                    g.adj.push(HashSet::new());
                }
                *g.uses.entry(s).or_insert(0) += 1;
            }
            if let Some(d) = inst.dst {
                if !d.is_phys() && !index.contains_key(&d) {
                    index.insert(d, g.nodes.len());
                    g.nodes.push(d);
                    g.adj.push(HashSet::new());
                }
            }
        }
        if let Some(c) = block.term.cond_reg() {
            if !c.is_phys() && !index.contains_key(&c) {
                index.insert(c, g.nodes.len());
                g.nodes.push(c);
                g.adj.push(HashSet::new());
            }
            *g.uses.entry(c).or_insert(0) += 1;
        }
    }

    for (id, block) in func.iter_blocks() {
        let mut live: HashSet<Reg> = live_info
            .live_out(id)
            .iter()
            .copied()
            .filter(|r| !r.is_phys())
            .collect();
        if let Some(c) = block.term.cond_reg() {
            if !c.is_phys() {
                live.insert(c);
            }
        }
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.dst {
                if !d.is_phys() {
                    live.remove(&d);
                    let di = index[&d];
                    for &l in &live {
                        if l.class() == d.class() {
                            let li = index[&l];
                            g.adj[di].insert(li);
                            g.adj[li].insert(di);
                        }
                    }
                }
            }
            for &s in inst.srcs() {
                if !s.is_phys() {
                    live.insert(s);
                }
            }
        }
    }
    g
}

/// Greedy coloring with `k` colors per class. Returns
/// `(reg -> color, spilled regs in spill order)`.
///
/// Nodes are colored in first-appearance order (near-interval graphs color
/// near-optimally this way); uncolorable nodes are retried after evicting
/// the *least-used* conflicting choice, and spill candidates are picked by
/// minimal static use count.
#[must_use]
pub fn color(g: &Interference, k: u32) -> (HashMap<Reg, u32>, Vec<Reg>) {
    let mut colors: HashMap<Reg, u32> = HashMap::new();
    let mut spilled: Vec<Reg> = Vec::new();

    // Color in decreasing use count (hot registers claim colors first),
    // falling back to appearance order for determinism.
    let mut order: Vec<usize> = (0..g.nodes.len()).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(g.uses.get(&g.nodes[i]).copied().unwrap_or(0)),
            i,
        )
    });

    for &i in &order {
        let reg = g.nodes[i];
        let mut taken = vec![false; k as usize];
        for &j in &g.adj[i] {
            if let Some(&c) = colors.get(&g.nodes[j]) {
                taken[c as usize] = true;
            }
        }
        match taken.iter().position(|t| !t) {
            Some(c) => {
                colors.insert(reg, c as u32);
            }
            None => spilled.push(reg),
        }
    }
    (colors, spilled)
}

/// [`color`] restricted to one register class.
#[must_use]
pub fn color_class(
    g: &Interference,
    class: bsched_ir::RegClass,
    k: u32,
) -> (HashMap<Reg, u32>, Vec<Reg>) {
    let mut colors: HashMap<Reg, u32> = HashMap::new();
    let mut spilled: Vec<Reg> = Vec::new();
    let mut order: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| g.nodes[i].class() == class)
        .collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(g.uses.get(&g.nodes[i]).copied().unwrap_or(0)),
            i,
        )
    });
    for &i in &order {
        let reg = g.nodes[i];
        let mut taken = vec![false; k as usize];
        for &j in &g.adj[i] {
            if let Some(&c) = colors.get(&g.nodes[j]) {
                taken[c as usize] = true;
            }
        }
        match taken.iter().position(|t| !t) {
            Some(c) => {
                colors.insert(reg, c as u32);
            }
            None => spilled.push(reg),
        }
    }
    (colors, spilled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{FuncBuilder, Op};

    #[test]
    fn disjoint_lifetimes_share_colors() {
        // x dies before y is born: same color allowed.
        let mut b = FuncBuilder::new("t");
        let x = b.iconst(1);
        let x2 = b.binop_imm(Op::Add, x, 1); // last use of x
        let y = b.iconst(2);
        let _y2 = b.binop(Op::Add, y, x2);
        b.ret();
        let f = b.finish();
        let g = interference(&f);
        // Two colors suffice even though three values exist: x's hole
        // lets y reuse a register (interval min-max would need three).
        let (colors, spilled) = color(&g, 2);
        assert!(spilled.is_empty(), "{colors:?}");
        let distinct: std::collections::HashSet<u32> = colors.values().copied().collect();
        assert!(distinct.len() <= 2);
        let _ = (x, y);
    }

    #[test]
    fn overlapping_lifetimes_conflict() {
        let mut b = FuncBuilder::new("t");
        let x = b.iconst(1);
        let y = b.iconst(2);
        let _z = b.binop(Op::Add, x, y); // both live here
        b.ret();
        let f = b.finish();
        let g = interference(&f);
        let (colors, spilled) = color(&g, 2);
        assert!(spilled.is_empty());
        assert_ne!(colors[&x], colors[&y]);
    }

    #[test]
    fn too_many_live_spills_least_used() {
        // Three mutually live ints, one color: the two hottest get the
        // color?? No — one gets the color, two spill; the hottest wins.
        let mut b = FuncBuilder::new("t");
        let x = b.iconst(1);
        let y = b.iconst(2);
        let z = b.iconst(3);
        let t1 = b.binop(Op::Add, x, y);
        let t2 = b.binop(Op::Add, t1, z);
        let t3 = b.binop(Op::Add, t2, x);
        let _t4 = b.binop(Op::Add, t3, x); // x is hottest (3 uses)
        b.ret();
        let f = b.finish();
        let g = interference(&f);
        let (colors, spilled) = color(&g, 1);
        assert!(colors.contains_key(&x), "hottest register keeps the color");
        assert!(spilled.contains(&y) || spilled.contains(&z));
    }

    #[test]
    fn classes_do_not_interfere() {
        let mut b = FuncBuilder::new("t");
        let x = b.iconst(1);
        let f1 = b.fconst(1.0);
        let f2 = b.binop(Op::FAdd, f1, f1);
        let _u = b.binop(Op::Add, x, x);
        let _v = b.binop(Op::FMul, f2, f1);
        b.ret();
        let f = b.finish();
        let g = interference(&f);
        let xi = g.nodes.iter().position(|&r| r == x).unwrap();
        let fi = g.nodes.iter().position(|&r| r == f1).unwrap();
        assert!(!g.adj[xi].contains(&fi), "int and float never interfere");
    }
}
