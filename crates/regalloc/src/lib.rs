//! `bsched-regalloc` — linear-scan register allocation with spill code.
//!
//! Runs after instruction scheduling (the Multiflow phase order): virtual
//! registers are mapped onto the Alpha's 31 integer / 31 floating-point
//! architectural registers, and registers that do not fit are *spilled* to
//! a dedicated stack region with allocator-inserted restore loads and
//! spill stores. Spill code is marked ([`bsched_ir::Inst::spill`]) so the
//! simulator counts it separately, reproducing the paper's observation
//! that aggressive unrolling raises register pressure until "the
//! independent instructions ... were less able to hide the latency of the
//! additional spill loads" (§5.1).
//!
//! Register file layout per class: the low registers are allocatable,
//! three are reserved as spill-restore temporaries, and one integer
//! register is the spill-area frame pointer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod linear_scan;
pub mod liveness_points;

pub use linear_scan::{allocate, AllocStats};
