//! Live-interval construction over a linearised program-point numbering.

use bsched_ir::{Cfg, Function, Liveness, Reg};
use std::collections::HashMap;

/// A conservative live interval `[start, end]` in linearised program
/// points (holes are ignored, as in classic linear scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The register.
    pub reg: Reg,
    /// First program point where the register is live.
    pub start: u32,
    /// Last program point where the register is live.
    pub end: u32,
}

/// Computes live intervals for every *virtual* register of `func`.
///
/// Program points: blocks in layout order; each block contributes one
/// point for its entry, one per instruction, and one for its terminator.
#[must_use]
pub fn intervals(func: &Function) -> Vec<Interval> {
    let cfg = Cfg::new(func);
    let live = Liveness::new(func, &cfg);

    let mut spans: HashMap<Reg, (u32, u32)> = HashMap::new();
    let touch = |r: Reg, p: u32, spans: &mut HashMap<Reg, (u32, u32)>| {
        if !r.is_phys() {
            let e = spans.entry(r).or_insert((p, p));
            e.0 = e.0.min(p);
            e.1 = e.1.max(p);
        }
    };

    let mut pos: u32 = 0;
    for (id, block) in func.iter_blocks() {
        let entry_pos = pos;
        for &r in live.live_in(id) {
            touch(r, entry_pos, &mut spans);
        }
        pos += 1;
        for inst in &block.insts {
            for &s in inst.srcs() {
                touch(s, pos, &mut spans);
            }
            if let Some(d) = inst.dst {
                touch(d, pos, &mut spans);
            }
            pos += 1;
        }
        let term_pos = pos;
        if let Some(c) = block.term.cond_reg() {
            touch(c, term_pos, &mut spans);
        }
        for &r in live.live_out(id) {
            touch(r, term_pos, &mut spans);
        }
        pos += 1;
    }

    let mut out: Vec<Interval> = spans
        .into_iter()
        .map(|(reg, (start, end))| Interval { reg, start, end })
        .collect();
    out.sort_by_key(|iv| (iv.start, iv.end, iv.reg.index()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{FuncBuilder, Op, RegClass};

    #[test]
    fn straight_line_intervals_nest() {
        let mut b = FuncBuilder::new("t");
        let x = b.iconst(1); // long-lived
        let y = b.binop_imm(Op::Add, x, 1); // short
        let _z = b.binop(Op::Add, x, y);
        b.ret();
        let f = b.finish();
        let ivs = intervals(&f);
        let get = |r| ivs.iter().find(|iv| iv.reg == r).copied().unwrap();
        assert!(get(x).start < get(y).start);
        assert!(get(x).end >= get(y).end);
    }

    #[test]
    fn loop_carried_interval_spans_loop() {
        use bsched_ir::{BrCond, Inst};
        let mut b = FuncBuilder::new("t");
        let header = b.add_block();
        let body = b.add_block();
        let exit = b.add_block();
        let s = b.iconst(0);
        let n = b.iconst(4);
        let i = b.iconst(0);
        b.jmp(header);
        b.switch_to(header);
        let c = b.binop(Op::CmpLt, i, n);
        b.br(c, BrCond::Zero, exit, body);
        b.switch_to(body);
        b.push(Inst::op(Op::Add, s, &[s, i]));
        b.push(Inst::op_imm(Op::Add, i, i, 1));
        b.jmp(header);
        b.switch_to(exit);
        let _u = b.binop_imm(Op::Add, s, 0);
        b.ret();
        let f = b.finish();
        let ivs = intervals(&f);
        let s_iv = ivs.iter().find(|iv| iv.reg == s).unwrap();
        // s must be live from its def in the entry to its use in the exit
        // block, covering the whole loop.
        let total_points: u32 = f.blocks().iter().map(|b| b.len() as u32 + 2).sum();
        assert!(s_iv.end > s_iv.start);
        assert!(s_iv.end >= total_points - 3, "spans into the exit block");
    }

    #[test]
    fn physical_registers_are_ignored() {
        use bsched_ir::Inst;
        let mut b = FuncBuilder::new("t");
        let p = Reg::phys(RegClass::Int, 3);
        b.push(Inst::li(p, 1));
        b.ret();
        let f = b.finish();
        assert!(intervals(&f).is_empty());
    }
}
