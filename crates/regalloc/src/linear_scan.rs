//! The linear-scan allocator and spill-code rewriter.

use crate::liveness_points::intervals;
use bsched_ir::{BlockId, Function, Inst, Program, Reg, RegClass, Terminator};
use std::collections::HashMap;

/// Number of allocatable integer registers: 31 architectural minus three
/// restore temporaries minus the spill frame pointer.
pub const INT_ALLOCATABLE: u32 = Reg::NUM_PHYS - 4;
/// Number of allocatable floating-point registers: 31 minus three
/// restore temporaries.
pub const FLOAT_ALLOCATABLE: u32 = Reg::NUM_PHYS - 3;

fn allocatable(class: RegClass) -> u32 {
    match class {
        RegClass::Int => INT_ALLOCATABLE,
        RegClass::Float => FLOAT_ALLOCATABLE,
    }
}

fn temp(class: RegClass, k: u32) -> Reg {
    debug_assert!(k < 3);
    Reg::phys(class, allocatable(class) + k)
}

/// The spill-frame pointer register.
fn frame_ptr() -> Reg {
    Reg::phys(RegClass::Int, Reg::NUM_PHYS - 1)
}

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Phys(Reg),
    Spill(u32),
}

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Virtual registers assigned to physical registers.
    pub assigned: u64,
    /// Virtual registers spilled to stack slots.
    pub spilled: u64,
    /// Restore loads inserted.
    pub restores: u64,
    /// Spill stores inserted.
    pub spill_stores: u64,
}

/// Runs linear scan per register class; returns the location map and the
/// number of spill slots used.
#[allow(dead_code)] // kept for the linear-scan-vs-coloring ablation bench
fn assign(func: &Function) -> (HashMap<Reg, Loc>, u32, AllocStats) {
    let ivs = intervals(func);
    let mut locs: HashMap<Reg, Loc> = HashMap::new();
    let mut slots: u32 = 0;
    let mut stats = AllocStats::default();

    // Static use counts steer spill choice: spilling a many-use register
    // (say, an array base read every iteration) costs a restore per use,
    // so prefer the least-used candidate.
    let mut uses: HashMap<Reg, u32> = HashMap::new();
    for (_, block) in func.iter_blocks() {
        for inst in &block.insts {
            for &s in inst.srcs() {
                *uses.entry(s).or_insert(0) += 1;
            }
        }
        if let Some(c) = block.term.cond_reg() {
            *uses.entry(c).or_insert(0) += 1;
        }
    }

    for class in RegClass::ALL {
        let k = allocatable(class);
        let mut free: Vec<u32> = (0..k).rev().collect();
        // (end, phys index, reg)
        let mut active: Vec<(u32, u32, Reg)> = Vec::new();
        for iv in ivs.iter().filter(|iv| iv.reg.class() == class) {
            active.retain(|&(end, phys, _)| {
                if end < iv.start {
                    free.push(phys);
                    false
                } else {
                    true
                }
            });
            if let Some(p) = free.pop() {
                locs.insert(iv.reg, Loc::Phys(Reg::phys(class, p)));
                active.push((iv.end, p, iv.reg));
                stats.assigned += 1;
                continue;
            }
            // Spill the candidate (an active interval or the incoming
            // one) with the fewest static uses; ties go to the interval
            // ending last.
            let use_of = |r: Reg| uses.get(&r).copied().unwrap_or(0);
            let victim = active
                .iter()
                .enumerate()
                .min_by_key(|(_, &(end, _, r))| (use_of(r), std::cmp::Reverse(end)))
                .map(|(i, _)| i);
            match victim {
                Some(vi)
                    if (use_of(active[vi].2), std::cmp::Reverse(active[vi].0))
                        < (use_of(iv.reg), std::cmp::Reverse(iv.end)) =>
                {
                    let (_, phys, vreg) = active.swap_remove(vi);
                    locs.insert(vreg, Loc::Spill(slots));
                    slots += 1;
                    stats.spilled += 1;
                    stats.assigned -= 1;
                    locs.insert(iv.reg, Loc::Phys(Reg::phys(class, phys)));
                    active.push((iv.end, phys, iv.reg));
                    stats.assigned += 1;
                }
                _ => {
                    locs.insert(iv.reg, Loc::Spill(slots));
                    slots += 1;
                    stats.spilled += 1;
                }
            }
        }
    }
    (locs, slots, stats)
}

/// Exact-interference assignment: colors each class's virtual registers
/// with the allocatable register count and spills the uncolorable
/// remainder (see [`crate::coloring`]).
fn assign_by_coloring(func: &Function) -> (HashMap<Reg, Loc>, u32, AllocStats) {
    let g = crate::coloring::interference(func);
    let mut locs: HashMap<Reg, Loc> = HashMap::new();
    let mut slots: u32 = 0;
    let mut stats = AllocStats::default();
    for class in RegClass::ALL {
        // Build the per-class subgraph view by filtering nodes.
        let k = allocatable(class);
        let (colors, spilled) = crate::coloring::color_class(&g, class, k);
        for (reg, c) in colors {
            locs.insert(reg, Loc::Phys(Reg::phys(class, c)));
            stats.assigned += 1;
        }
        for reg in spilled {
            locs.insert(reg, Loc::Spill(slots));
            slots += 1;
            stats.spilled += 1;
        }
    }
    (locs, slots, stats)
}

fn rewrite_block(
    func: &mut Function,
    id: BlockId,
    locs: &HashMap<Reg, Loc>,
    spill_region: Option<bsched_ir::RegionId>,
    stats: &mut AllocStats,
) {
    let fp = frame_ptr();
    let old = std::mem::take(&mut func.block_mut(id).insts);
    let mut out: Vec<Inst> = Vec::with_capacity(old.len());
    // Block-local temp cache: which spilled register each temp currently
    // holds. Values are written through to their slots eagerly, so a
    // cached temp can always be discarded; a repeated use within the
    // block reuses the temp instead of reloading.
    let mut cache: [[Option<Reg>; 3]; 2] = [[None; 3]; 2];
    let mut lru: [[u64; 3]; 2] = [[0; 3]; 2];
    let mut tick: u64 = 0;
    let class_ix = |c: RegClass| match c {
        RegClass::Int => 0usize,
        RegClass::Float => 1usize,
    };
    for mut inst in old {
        tick += 1;
        // Map spilled sources to cached temps, restoring at most once per
        // distinct register.
        let srcs_snapshot: Vec<Reg> = inst.srcs().to_vec();
        let mut claimed: Vec<(Reg, Reg)> = Vec::new(); // (vreg, temp)
        for &s in &srcs_snapshot {
            if let Some(Loc::Spill(slot)) = locs.get(&s) {
                if claimed.iter().any(|&(v, _)| v == s) {
                    continue;
                }
                let ci = class_ix(s.class());
                // Already cached?
                if let Some(k) = (0..3).find(|&k| cache[ci][k] == Some(s)) {
                    lru[ci][k] = tick;
                    claimed.push((s, temp(s.class(), k as u32)));
                    continue;
                }
                // Pick a victim temp not claimed by this instruction.
                let k = (0..3)
                    .filter(|&k| !claimed.iter().any(|&(_, t)| t == temp(s.class(), k as u32)))
                    .min_by_key(|&k| lru[ci][k])
                    .expect("three temps, at most three sources");
                let t = temp(s.class(), k as u32);
                let ld = Inst::load(t, fp, i64::from(*slot) * 8)
                    .with_region(spill_region.expect("spills imply a region"))
                    .as_spill();
                out.push(ld);
                stats.restores += 1;
                cache[ci][k] = Some(s);
                lru[ci][k] = tick;
                claimed.push((s, t));
            }
        }
        for s in inst.srcs_mut() {
            match locs.get(s) {
                Some(Loc::Phys(p)) => *s = *p,
                Some(Loc::Spill(_)) => {
                    *s = claimed
                        .iter()
                        .find(|&&(v, _)| v == *s)
                        .expect("claimed above")
                        .1;
                }
                None => debug_assert!(s.is_phys(), "unallocated virtual register {s}"),
            }
        }
        // Destination: write into a temp, store through to the slot, and
        // keep the temp cached for later uses.
        let mut post_store: Option<(u32, Reg)> = None;
        if let Some(d) = inst.dst {
            match locs.get(&d) {
                Some(Loc::Phys(p)) => inst.dst = Some(*p),
                Some(Loc::Spill(slot)) => {
                    let ci = class_ix(d.class());
                    let k = (0..3)
                        .filter(|&k| !claimed.iter().any(|&(_, t)| t == temp(d.class(), k as u32)))
                        .min_by_key(|&k| lru[ci][k])
                        .unwrap_or(0);
                    let t = temp(d.class(), k as u32);
                    inst.dst = Some(t);
                    // The redefinition invalidates any other cached copy.
                    for (slot_k, entry) in cache[ci].iter_mut().enumerate() {
                        if slot_k != k && *entry == Some(d) {
                            *entry = None;
                        }
                    }
                    cache[ci][k] = Some(d);
                    lru[ci][k] = tick;
                    post_store = Some((*slot, t));
                }
                None => debug_assert!(d.is_phys(), "unallocated virtual register {d}"),
            }
        } else if inst.dst.is_none() {
            // no destination
        }
        // Any non-spilled def that happens to BE a temp register (from a
        // previous allocation pass) would invalidate the cache; physical
        // temps never appear in unallocated input, so nothing to do.
        out.push(inst);
        if let Some((slot, t)) = post_store {
            let st = Inst::store(t, fp, i64::from(slot) * 8)
                .with_region(spill_region.expect("spills imply a region"))
                .as_spill();
            out.push(st);
            stats.spill_stores += 1;
        }
    }
    // Terminator condition.
    if let Terminator::Br { cond, .. } = &func.block(id).term.clone() {
        match locs.get(cond) {
            Some(Loc::Phys(p)) => {
                let p = *p;
                if let Terminator::Br { cond, .. } = &mut func.block_mut(id).term {
                    *cond = p;
                }
            }
            Some(Loc::Spill(slot)) => {
                let t = temp(RegClass::Int, 2);
                let ld = Inst::load(t, fp, i64::from(*slot) * 8)
                    .with_region(spill_region.expect("spills imply a region"))
                    .as_spill();
                out.push(ld);
                stats.restores += 1;
                if let Terminator::Br { cond, .. } = &mut func.block_mut(id).term {
                    *cond = t;
                }
            }
            None => {}
        }
    }
    func.block_mut(id).insts = out;
}

/// Allocates registers for the program's main function, inserting spill
/// code against a fresh `spill` region when the virtual registers exceed
/// the architectural register file.
///
/// # Panics
///
/// Panics (debug) if an unallocated virtual register survives.
pub fn allocate(program: &mut Program) -> AllocStats {
    let (locs, slots, mut stats) = assign_by_coloring(program.main());
    let spill_region = (slots > 0).then(|| {
        program
            .push_region(bsched_ir::Region::zeroed("spill", u64::from(slots.max(1)) * 8).hidden())
    });

    let func = program.main_mut();
    let nblocks = func.blocks().len();
    for bi in 0..nblocks {
        rewrite_block(func, BlockId::new(bi), &locs, spill_region, &mut stats);
    }
    if let Some(region) = spill_region {
        // Materialise the frame pointer at function entry.
        let entry = func.entry();
        func.block_mut(entry)
            .insts
            .insert(0, Inst::ldaddr(frame_ptr(), region));
    }
    // The loop metadata's registers are now stale; later passes must not
    // consume it.
    func.loops.clear();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Op, Program};
    use bsched_workloads::lang::ast::{Expr, Index};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    fn all_physical(func: &Function) -> bool {
        func.iter_blocks().all(|(_, b)| {
            b.insts
                .iter()
                .all(|i| i.srcs().iter().all(|s| s.is_phys()) && i.dst.is_none_or(|d| d.is_phys()))
                && b.term.cond_reg().is_none_or(|c| c.is_phys())
        })
    }

    fn axpy(n: i64) -> Program {
        let mut k = Kernel::new("axpy");
        let x = k.array("x", n as u64, ArrayInit::Ramp(0.0, 1.0));
        let y = k.array("y", n as u64, ArrayInit::Ramp(1.0, 0.5));
        let i = k.int_var("i");
        let body = vec![k.store(
            y,
            Index::of(i),
            Expr::load(x, Index::of(i)) * Expr::Float(2.0) + Expr::load(y, Index::of(i)),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.lower()
    }

    #[test]
    fn small_kernel_allocates_without_spills() {
        let mut p = axpy(16);
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = allocate(&mut p);
        assert_eq!(stats.spilled, 0);
        assert!(all_physical(p.main()));
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    /// Dozens of simultaneously live float accumulators force spills.
    fn pressure_kernel(nacc: usize) -> Program {
        let mut k = Kernel::new("pressure");
        let a = k.array("a", 64, ArrayInit::Random(5));
        let out = k.array("out", nacc as u64, ArrayInit::Zero);
        let i = k.int_var("i");
        let accs: Vec<_> = (0..nacc).map(|q| k.float_var(format!("s{q}"))).collect();
        for (q, &s) in accs.iter().enumerate() {
            k.push(k.assign(s, Expr::Float(q as f64)));
        }
        let mut body = Vec::new();
        for (q, &s) in accs.iter().enumerate() {
            body.push(k.assign(
                s,
                Expr::Var(s) + Expr::load(a, Index::of_plus(i, (q % 4) as i64)),
            ));
        }
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(16), body));
        for (q, &s) in accs.iter().enumerate() {
            k.push(k.store(out, Index::constant(q as i64), Expr::Var(s)));
        }
        k.lower()
    }

    #[test]
    fn high_pressure_spills_and_stays_correct() {
        let mut p = pressure_kernel(40); // 40 live accumulators > 28 fp regs
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = allocate(&mut p);
        assert!(stats.spilled > 0, "{stats:?}");
        assert!(stats.restores > 0 && stats.spill_stores > 0);
        assert!(all_physical(p.main()));
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
        // Spill code is marked for the simulator's separate accounting.
        let spill_marked = p
            .main()
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .filter(|i| i.spill)
            .count();
        assert!(spill_marked as u64 >= stats.restores + stats.spill_stores);
    }

    #[test]
    fn unrolled_code_allocates_correctly() {
        use bsched_opt::{unroll_function, UnrollLimits};
        let mut p = axpy(37);
        let want = Interp::new(&p).run().unwrap().checksum;
        unroll_function(p.main_mut(), &UnrollLimits::for_factor(8));
        bsched_opt::copy_propagate(p.main_mut());
        bsched_opt::dead_code_elim(p.main_mut());
        let _stats = allocate(&mut p);
        assert!(all_physical(p.main()));
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    #[test]
    fn scheduled_then_allocated_is_still_correct() {
        use bsched_core::{schedule_function, SchedulerKind, WeightConfig};
        let mut p = pressure_kernel(35);
        let want = Interp::new(&p).run().unwrap().checksum;
        schedule_function(p.main_mut(), &WeightConfig::new(SchedulerKind::Balanced));
        allocate(&mut p);
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    #[test]
    fn spilled_branch_condition() {
        // Force an integer spill with many live int scalars used across a
        // branch.
        let mut k = Kernel::new("intpress");
        let out = k.array("out", 64, ArrayInit::Zero);
        let vars: Vec<_> = (0..40).map(|q| k.int_var(format!("v{q}"))).collect();
        for (q, &v) in vars.iter().enumerate() {
            k.push(k.assign(v, Expr::Int(q as i64)));
        }
        let i = k.int_var("i");
        let mut body = Vec::new();
        for &v in &vars {
            body.push(k.assign(v, Expr::Var(v) + Expr::Int(1)));
        }
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(8), body));
        for (q, &v) in vars.iter().enumerate() {
            k.push(k.store(
                out,
                Index::constant(q as i64),
                Expr::IntToFloat(Box::new(Expr::Var(v))),
            ));
        }
        let mut p = k.lower();
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = allocate(&mut p);
        assert!(stats.spilled > 0);
        assert!(all_physical(p.main()));
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    #[test]
    fn allocation_is_idempotent_on_physical_code() {
        let mut p = axpy(8);
        allocate(&mut p);
        let snapshot = format!("{}", p.main());
        let stats = allocate(&mut p);
        assert_eq!(stats.spilled, 0);
        assert_eq!(snapshot, format!("{}", p.main()));
    }

    #[test]
    fn temp_registers_do_not_collide_with_allocatable() {
        for class in RegClass::ALL {
            for k in 0..3 {
                assert!(temp(class, k).index() >= allocatable(class));
            }
        }
        assert_eq!(frame_ptr().index(), Reg::NUM_PHYS - 1);
        let _ = Op::Add;
    }
}
