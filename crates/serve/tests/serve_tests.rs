//! End-to-end serving tests over real Unix sockets: serve-vs-direct
//! equivalence (results and cache entries), bounded backpressure with
//! recovery, and cross-client in-flight deduplication.

use bsched_harness::{encode_metrics, Engine, EngineConfig, ExperimentCell};
use bsched_pipeline::standard_grid;
use bsched_serve::{
    serve, Client, Endpoint, ServeConfig, ServeCore, ServerConfig, SubmitReply,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static NEXT_SOCK: AtomicU64 = AtomicU64::new(0);

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "bsched-serve-{tag}-{}-{}.sock",
        std::process::id(),
        NEXT_SOCK.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsched-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A server running in-process on its own threads. `start_dispatcher`
/// false leaves the queue undrained so tests can observe a full queue
/// deterministically.
struct TestServer {
    core: Arc<ServeCore>,
    endpoint: Endpoint,
    serve_thread: Option<std::thread::JoinHandle<()>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(engine: Engine, cfg: ServeConfig, tag: &str, start_dispatcher: bool) -> TestServer {
        let core = Arc::new(ServeCore::new(engine, cfg));
        let endpoint = Endpoint::Unix(sock_path(tag));
        let dispatcher = start_dispatcher.then(|| {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.run_dispatcher())
        });
        let serve_thread = {
            let core = Arc::clone(&core);
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                serve(&core, &endpoint, &ServerConfig::default()).expect("serve");
            })
        };
        // Wait for the socket to exist before handing out the endpoint.
        let Endpoint::Unix(path) = &endpoint else {
            unreachable!()
        };
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        TestServer {
            core,
            endpoint,
            serve_thread: Some(serve_thread),
            dispatcher,
        }
    }

    fn start_dispatcher(&mut self) {
        assert!(self.dispatcher.is_none());
        let core = Arc::clone(&self.core);
        self.dispatcher = Some(std::thread::spawn(move || core.run_dispatcher()));
    }

    fn client(&self) -> Client {
        Client::connect(&self.endpoint, Duration::from_secs(120)).expect("connect")
    }

    fn shutdown(mut self) {
        self.client().shutdown().expect("shutdown");
        self.serve_thread.take().expect("running").join().expect("serve thread");
        if let Some(d) = self.dispatcher.take() {
            d.join().expect("dispatcher");
        }
    }
}

fn small_grid(kernels: &[&str]) -> Vec<ExperimentCell> {
    let configs = standard_grid();
    kernels
        .iter()
        .flat_map(|k| configs.iter().map(|c| ExperimentCell::new(k, c.options())))
        .collect()
}

/// Distinct cheap cells (unoptimized TRFD with varied weight caps) for
/// tests that exercise queueing/dedup mechanics rather than grid
/// semantics — debug-build friendly.
fn cheap_cells(n: usize) -> Vec<ExperimentCell> {
    use bsched_pipeline::{CompileOptions, SchedulerKind};
    (0..n)
        .map(|i| {
            let mut o = CompileOptions::new(SchedulerKind::Balanced);
            o.weight_cap = 10 + i as u32;
            ExperimentCell::new("TRFD", o)
        })
        .collect()
}

fn cache_files(dir: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir.join(format!(
        "v{}",
        bsched_harness::CACHE_SCHEMA_VERSION
    ))) else {
        return files;
    };
    for entry in entries {
        let entry = entry.expect("dir entry");
        files.push((
            entry.file_name().to_string_lossy().to_string(),
            std::fs::read_to_string(entry.path()).expect("cache file"),
        ));
    }
    files.sort();
    files
}

#[test]
fn served_grid_matches_direct_run_cold_and_warm_including_cache_entries() {
    // A slice of the grid keeps the verified debug-build runtime sane;
    // the ci.sh serve smoke covers the full grid in release.
    let cells: Vec<ExperimentCell> = small_grid(&["TRFD"]).into_iter().take(4).collect();

    // Direct path: its own engine, its own cache directory.
    let direct_dir = tmp_dir("direct");
    let direct = Engine::with_standard_kernels(
        EngineConfig::default()
            .with_jobs(2)
            .with_cache_dir(direct_dir.clone()),
    );
    direct.run_where(&cells, true).expect("direct run");

    // Served path: a second engine behind the wire protocol.
    let served_dir = tmp_dir("served");
    let engine = Engine::with_standard_kernels(
        EngineConfig::default()
            .with_jobs(2)
            .with_cache_dir(served_dir.clone()),
    );
    let server = TestServer::start(engine, ServeConfig::default(), "equiv", true);

    for round in ["cold", "warm"] {
        let mut client = server.client();
        let reply = client.submit(&cells, true, false).expect("submit");
        let SubmitReply::Completed { cells: received, .. } = reply else {
            panic!("{round}: unexpected overload");
        };
        assert_eq!(received.len(), cells.len());
        for (cell, rc) in cells.iter().zip(&received) {
            assert_eq!(rc.key, cell.canonical_key(), "{round}: key mismatch");
            let served = rc.outcome.as_ref().expect("cell ok");
            let direct_result = direct.result(cell).expect("direct result");
            // Byte-identical through the shared codec — the exact bytes
            // both the disk cache and the wire carry.
            assert_eq!(
                encode_metrics(&served.metrics).to_string_compact(),
                encode_metrics(&direct_result.metrics).to_string_compact(),
                "{round}: metrics diverge for {cell}"
            );
            assert!(served.verified, "{round}: served cell not verified");
        }
    }

    // Warm round was served from memory: no extra executions.
    let stats = server.client().stats().expect("stats");
    assert_eq!(stats.executed, cells.len() as u64);
    assert!(
        stats.memory_hits >= cells.len() as u64,
        "warm round must hit the memory layer, got {} hits",
        stats.memory_hits
    );

    server.shutdown();

    // Identical cache entries: same file names, same bytes.
    let direct_files = cache_files(&direct_dir);
    let served_files = cache_files(&served_dir);
    assert_eq!(direct_files.len(), cells.len());
    assert_eq!(direct_files, served_files, "cache entries diverge");

    let _ = std::fs::remove_dir_all(&direct_dir);
    let _ = std::fs::remove_dir_all(&served_dir);
}

#[test]
fn full_queue_rejects_with_overloaded_and_recovers_after_drain() {
    let engine = Engine::with_standard_kernels(
        EngineConfig::default().with_jobs(2).with_disk_cache(false),
    );
    // Queue bounded at 4; dispatcher held back so the queue stays full.
    let mut server = TestServer::start(
        engine,
        ServeConfig {
            queue_limit: 4,
            ..ServeConfig::default()
        },
        "backpressure",
        false,
    );

    let grid = cheap_cells(15); // 15 cells > 4
    let four: Vec<ExperimentCell> = grid[..4].to_vec();
    let rest: Vec<ExperimentCell> = grid[4..].to_vec();

    // Fill the queue from a background client (its submit blocks until
    // results stream back, which needs the dispatcher).
    let filler = {
        let endpoint = server.endpoint.clone();
        let four = four.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint, Duration::from_secs(120)).expect("connect");
            match client.submit(&four, false, false).expect("fill submit") {
                SubmitReply::Completed { cells, .. } => cells.len(),
                SubmitReply::Overloaded { .. } => panic!("filler must be admitted"),
            }
        })
    };
    // Wait until the filler's jobs are queued.
    for _ in 0..200 {
        if server.core.stats().queue_depth == 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.core.stats().queue_depth, 4);

    // Queue is full: a distinct submit must bounce, whole, immediately.
    let mut client = server.client();
    match client.submit(&rest, false, false).expect("submit") {
        SubmitReply::Overloaded { queued, limit } => {
            assert_eq!((queued, limit), (4, 4));
        }
        SubmitReply::Completed { .. } => panic!("full queue must reject"),
    }
    assert_eq!(server.core.stats().queue_depth, 4, "rejection queued nothing");
    assert_eq!(server.core.stats().rejected_submits, 1);

    // Recovery: once the dispatcher drains the queue, submits that fit
    // the bound are admitted again and complete (the client's remedy
    // for overload is exactly this — retry within the limit).
    server.start_dispatcher();
    assert_eq!(filler.join().expect("filler"), 4);
    for chunk in rest.chunks(4) {
        let mut served = None;
        for _ in 0..200 {
            match client.submit(chunk, false, false).expect("retry") {
                SubmitReply::Completed { cells, .. } => {
                    served = Some(cells);
                    break;
                }
                // A previous chunk may still occupy the queue briefly.
                SubmitReply::Overloaded { .. } => {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let served = served.expect("drained queue must admit within-limit submits");
        assert_eq!(served.len(), chunk.len());
        assert!(served.iter().all(|c| c.outcome.is_ok()));
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_submitting_one_cold_grid_compute_each_cell_once() {
    let engine = Engine::with_standard_kernels(
        EngineConfig::default().with_jobs(2).with_disk_cache(false),
    );
    // Dispatcher held back until every client's submit is admitted, so
    // the later submits demonstrably join in-flight jobs rather than
    // hitting a warm cache.
    let mut server = TestServer::start(engine, ServeConfig::default(), "dedup", false);
    let grid = cheap_cells(12);

    const CLIENTS: usize = 3;
    let mut waiters = Vec::new();
    for _ in 0..CLIENTS {
        let endpoint = server.endpoint.clone();
        let grid = grid.clone();
        waiters.push(std::thread::spawn(move || {
            let mut client = Client::connect(&endpoint, Duration::from_secs(120)).expect("connect");
            match client.submit(&grid, false, false).expect("submit") {
                SubmitReply::Completed { cells, .. } => {
                    assert!(cells.iter().all(|c| c.outcome.is_ok()));
                    cells.len()
                }
                SubmitReply::Overloaded { .. } => panic!("default queue must admit"),
            }
        }));
    }
    // All three submits admitted (queue holds the one unique copy).
    for _ in 0..500 {
        let s = server.core.stats();
        if s.submits == CLIENTS as u64 && s.queue_depth == grid.len() as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let before = server.core.stats();
    assert_eq!(before.queue_depth, grid.len() as u64, "one copy queued");
    assert_eq!(
        before.joined_inflight,
        (grid.len() * (CLIENTS - 1)) as u64,
        "later clients join every in-flight cell"
    );

    server.start_dispatcher();
    for w in waiters {
        assert_eq!(w.join().expect("client"), grid.len());
    }
    let stats = server.client().stats().expect("stats");
    assert_eq!(
        stats.executed,
        grid.len() as u64,
        "each cell computed exactly once for {CLIENTS} clients"
    );
    server.shutdown();
}

#[test]
fn client_disconnect_mid_stream_does_not_leak_queue_slots() {
    let engine = Engine::with_standard_kernels(
        EngineConfig::default().with_jobs(2).with_disk_cache(false),
    );
    let server = TestServer::start(engine, ServeConfig::default(), "disconnect", true);
    let grid = cheap_cells(8);

    // Hand-roll a submit and hang up immediately, before reading any
    // result frame.
    {
        use bsched_serve::{Request, SubmitRequest};
        let Endpoint::Unix(path) = &server.endpoint else {
            unreachable!()
        };
        let mut stream = std::os::unix::net::UnixStream::connect(path).expect("connect");
        bsched_util::write_frame(
            &mut stream,
            &Request::Submit(SubmitRequest {
                id: 7,
                verify: false,
                trace: false,
                cells: grid.clone(),
            })
            .to_json(),
        )
        .expect("write");
        // Dropping the stream here closes the connection mid-stream.
    }

    // The work still completes into the shared cache, and the queue
    // drains to empty — the abandoned submit leaked nothing.
    for _ in 0..1000 {
        let s = server.core.stats();
        if s.completed_cells >= grid.len() as u64 && s.queue_depth == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.core.stats();
    assert_eq!(stats.queue_depth, 0, "abandoned jobs must drain");
    assert_eq!(stats.completed_cells, grid.len() as u64);

    // A follow-up client gets the abandoned work from the warm cache.
    let mut client = server.client();
    match client.submit(&grid, false, false).expect("submit") {
        SubmitReply::Completed { cells, .. } => assert_eq!(cells.len(), grid.len()),
        SubmitReply::Overloaded { .. } => panic!("must admit"),
    }
    let stats = server.client().stats().expect("stats");
    assert_eq!(stats.executed, grid.len() as u64, "no recompute after disconnect");
    server.shutdown();
}
