//! Wire-protocol hardening: hostile and malformed input must kill the
//! offending connection — never the server, never a queue slot.
//!
//! The deterministic cases cover each failure class by name; the seeded
//! SplitMix64 fuzz throws hundreds of mutated frames at both the frame
//! decoder (in process) and a live server (over a socket) and then
//! proves the server still serves.

use bsched_harness::{Engine, EngineConfig};
use bsched_serve::{
    serve, Client, Endpoint, Request, Response, ServeConfig, ServeCore, ServerConfig,
    WIRE_SCHEMA_VERSION,
};
use bsched_util::{read_frame, write_frame, Json, Prng, MAX_FRAME_LEN};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bsched-wire-{tag}-{}.sock", std::process::id()))
}

struct TestServer {
    /// Keeps the serving core alive for the server/dispatcher threads.
    #[allow(dead_code)]
    core: Arc<ServeCore>,
    endpoint: Endpoint,
    serve_thread: std::thread::JoinHandle<()>,
    dispatcher: std::thread::JoinHandle<()>,
}

fn start_server(tag: &str) -> TestServer {
    let engine = Engine::with_standard_kernels(
        EngineConfig::default().with_jobs(2).with_disk_cache(false),
    );
    let core = Arc::new(ServeCore::new(engine, ServeConfig::default()));
    let endpoint = Endpoint::Unix(sock_path(tag));
    let dispatcher = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || core.run_dispatcher())
    };
    let serve_thread = {
        let core = Arc::clone(&core);
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            serve(&core, &endpoint, &ServerConfig::default()).expect("serve");
        })
    };
    let Endpoint::Unix(path) = &endpoint else {
        unreachable!()
    };
    for _ in 0..200 {
        if path.exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    TestServer {
        core,
        endpoint,
        serve_thread,
        dispatcher,
    }
}

fn stop_server(server: TestServer) {
    Client::connect(&server.endpoint, Duration::from_secs(30))
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    server.serve_thread.join().expect("serve thread");
    server.dispatcher.join().expect("dispatcher");
}

fn raw_connect(endpoint: &Endpoint) -> UnixStream {
    let Endpoint::Unix(path) = endpoint else {
        unreachable!()
    };
    let s = UnixStream::connect(path).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    s
}

/// Reads one frame and asserts it is an `error` response.
fn expect_error_frame(stream: &mut UnixStream) {
    let doc = read_frame(stream, MAX_FRAME_LEN)
        .expect("server must answer before closing")
        .expect("frame, not EOF");
    let response = Response::from_json(&doc).expect("parseable response");
    assert!(
        matches!(response, Response::Error { .. }),
        "expected error frame, got {response:?}"
    );
}

#[test]
fn hostile_frames_kill_the_connection_but_never_the_server() {
    let server = start_server("hostile");

    // Case 1: oversized length prefix → error frame, connection closed.
    {
        let mut s = raw_connect(&server.endpoint);
        s.write_all(&(u32::MAX).to_be_bytes()).expect("write");
        s.flush().expect("flush");
        expect_error_frame(&mut s);
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).expect("closed cleanly");
        assert!(rest.is_empty(), "nothing after the error frame");
    }

    // Case 2: truncated frame (length promises more than arrives).
    {
        let mut s = raw_connect(&server.endpoint);
        s.write_all(&100u32.to_be_bytes()).expect("write");
        s.write_all(b"short").expect("write");
        drop(s); // close mid-payload; server sees EOF and drops the conn
    }

    // Case 3: garbage JSON payload → error frame, connection closed.
    {
        let mut s = raw_connect(&server.endpoint);
        let garbage = b"{this is not json";
        s.write_all(&(garbage.len() as u32).to_be_bytes()).expect("write");
        s.write_all(garbage).expect("write");
        s.flush().expect("flush");
        expect_error_frame(&mut s);
    }

    // Case 4: valid JSON, wrong schema version → error frame, but the
    // connection survives (stream is still in sync) and serves a ping.
    {
        let mut s = raw_connect(&server.endpoint);
        let wrong = Json::obj(vec![
            ("v", Json::u64(u64::from(WIRE_SCHEMA_VERSION) + 41)),
            ("type", Json::Str("ping".to_string())),
        ]);
        write_frame(&mut s, &wrong).expect("write");
        expect_error_frame(&mut s);
        write_frame(&mut s, &Request::Ping.to_json()).expect("write");
        let doc = read_frame(&mut s, MAX_FRAME_LEN).expect("read").expect("frame");
        assert!(matches!(
            Response::from_json(&doc).expect("response"),
            Response::Pong
        ));
    }

    // Case 5: valid frame, unknown request type → same survivable path.
    {
        let mut s = raw_connect(&server.endpoint);
        let unknown = Json::obj(vec![
            ("v", Json::u64(u64::from(WIRE_SCHEMA_VERSION))),
            ("type", Json::Str("make_coffee".to_string())),
        ]);
        write_frame(&mut s, &unknown).expect("write");
        expect_error_frame(&mut s);
    }

    // After all of it: the server still answers and leaked no slots.
    let mut client = Client::connect(&server.endpoint, Duration::from_secs(30)).expect("connect");
    client.ping().expect("server must still serve");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queue_depth, 0, "hostile input must not occupy the queue");
    stop_server(server);
}

#[test]
fn seeded_fuzz_of_frame_decoding_never_panics_or_leaks() {
    // In-process fuzz of the decoder itself: mutated valid frames,
    // random prefixes, random bytes. The decoder must return, not panic.
    let mut rng = Prng::new(0xB5ED_F422);
    let valid = {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.to_json()).expect("encode");
        buf
    };
    for _ in 0..500 {
        let mut bytes = match rng.next_u64() % 3 {
            0 => {
                // Mutate a valid frame at 1–4 positions.
                let mut b = valid.clone();
                for _ in 0..rng.range_u64(1, 5) {
                    let at = rng.range_u64(0, b.len() as u64) as usize;
                    b[at] = (rng.next_u64() & 0xFF) as u8;
                }
                b
            }
            1 => {
                // Truncate a valid frame.
                let at = rng.range_u64(0, valid.len() as u64) as usize;
                valid[..at].to_vec()
            }
            _ => {
                // Pure noise.
                (0..rng.range_u64(0, 64))
                    .map(|_| (rng.next_u64() & 0xFF) as u8)
                    .collect()
            }
        };
        // Sometimes append a second partial frame to catch desyncs.
        if rng.next_u64().is_multiple_of(4) {
            bytes.extend_from_slice(&valid[..rng.range_u64(0, valid.len() as u64) as usize]);
        }
        let mut cursor = bytes.as_slice();
        // Drain the stream: every frame either parses or errors; EOF ends.
        while let Ok(Some(doc)) = read_frame(&mut cursor, MAX_FRAME_LEN) {
            // Whatever parsed must survive request decoding too.
            let _ = Request::from_json(&doc);
        }
    }

    // Socket fuzz: the same generator against a live server, across
    // many short-lived connections.
    let server = start_server("fuzz");
    let mut rng = Prng::new(0xB5ED_F423);
    for _ in 0..60 {
        let mut s = raw_connect(&server.endpoint);
        let n = rng.range_u64(1, 48) as usize;
        let mut bytes = Vec::with_capacity(n);
        if rng.next_u64().is_multiple_of(2) {
            // Start from a valid frame, then corrupt.
            bytes.extend_from_slice(&valid);
            let at = rng.range_u64(0, bytes.len() as u64) as usize;
            bytes[at] = (rng.next_u64() & 0xFF) as u8;
        }
        bytes.extend((0..n).map(|_| (rng.next_u64() & 0xFF) as u8));
        let _ = s.write_all(&bytes); // server may hang up mid-write
        let _ = s.flush();
        drop(s);
    }
    // The server survived and is fully functional.
    let mut client = Client::connect(&server.endpoint, Duration::from_secs(30)).expect("connect");
    client.ping().expect("server survived the fuzz");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queue_depth, 0, "fuzz must not occupy queue slots");
    stop_server(server);
}
