//! The network front end: socket listeners, per-connection handlers,
//! and the accept/shutdown loop.
//!
//! Each accepted connection gets a handler thread speaking the framed
//! protocol of [`crate::protocol`]. Handlers are deliberately
//! defensive: a malformed frame, an oversized length prefix, a wrong
//! schema version, or a read timeout kills *that connection* with a
//! best-effort `error` frame — never the server, and never a queue
//! slot (jobs leave the admission queue only by completing, and results
//! land in the shared cache whether or not their submitter is still
//! around to read them).
//!
//! Shutdown is a wire request, not a signal: a `shutdown` frame flips a
//! flag the accept loop polls, the listener stops accepting, the core
//! drains (finishing queued and running work), and `serve` returns.

use crate::core::{ServeCore, SubmitError};
use crate::protocol::{Request, Response, SubmitRequest};
use bsched_util::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (removed before bind and
    /// after shutdown).
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7421`.
    Tcp(String),
}

impl Endpoint {
    /// Parses `unix:<path>` or `tcp:<addr>`.
    ///
    /// # Errors
    ///
    /// A message naming the expected forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path (expected unix:<path>)".to_string());
            }
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty tcp address (expected tcp:<host>:<port>)".to_string());
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        Err(format!(
            "unrecognized endpoint {s:?}: expected unix:<path> or tcp:<host>:<port>"
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Server front-end tunables (the serving core has its own
/// [`crate::core::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection socket read timeout. A client that goes silent
    /// mid-frame is disconnected; its submitted work still completes
    /// into the shared cache.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (TCP only; Unix sockets
    /// block on a full peer buffer until the read timeout path fires).
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(30),
        }
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn apply_timeouts(&self, cfg: &ServerConfig) -> std::io::Result<()> {
        match self {
            Conn::Unix(s) => {
                s.set_read_timeout(Some(cfg.read_timeout))?;
                s.set_write_timeout(Some(cfg.write_timeout))
            }
            Conn::Tcp(s) => {
                s.set_read_timeout(Some(cfg.read_timeout))?;
                s.set_write_timeout(Some(cfg.write_timeout))?;
                s.set_nodelay(true)
            }
        }
    }

    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            Conn::Unix(s) => {
                let r = s.try_clone()?;
                Ok((Box::new(r), Box::new(s)))
            }
            Conn::Tcp(s) => {
                let r = s.try_clone()?;
                Ok((Box::new(r), Box::new(s)))
            }
        }
    }
}

/// Runs the server on `endpoint` until a client sends `shutdown`.
///
/// Owns the accept loop; the caller supplies a core whose dispatcher is
/// already running on its own thread. On return the core is drained and
/// the socket is closed (and unlinked, for Unix endpoints).
///
/// # Errors
///
/// Bind/listen failures. Per-connection I/O errors are handled by
/// dropping the connection, never returned.
pub fn serve(core: &Arc<ServeCore>, endpoint: &Endpoint, cfg: &ServerConfig) -> std::io::Result<()> {
    let listener = match endpoint {
        Endpoint::Unix(path) => {
            // A stale socket file from a crashed predecessor would make
            // bind fail; remove it (connect() to a dead socket errors
            // anyway, so this destroys nothing live we could talk to).
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            Listener::Unix(l, path.clone())
        }
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            Listener::Tcp(l)
        }
    };
    eprintln!("bsched-serve: listening on {endpoint}");

    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let conn_ids = AtomicU64::new(0);
    while !core.shutdown_requested() {
        let conn = match &listener {
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Some(Conn::Unix(s)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    eprintln!("bsched-serve: accept failed: {e}");
                    None
                }
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Some(Conn::Tcp(s)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => {
                    eprintln!("bsched-serve: accept failed: {e}");
                    None
                }
            },
        };
        match conn {
            Some(conn) => {
                let core = Arc::clone(core);
                let cfg = cfg.clone();
                let id = conn_ids.fetch_add(1, Ordering::Relaxed);
                handlers.push(std::thread::spawn(move || {
                    if let Err(e) = handle_connection(&core, conn, &cfg) {
                        eprintln!("bsched-serve: connection {id} closed: {e}");
                    }
                }));
                handlers.retain(|h| !h.is_finished());
            }
            None => std::thread::sleep(Duration::from_millis(15)),
        }
    }

    eprintln!("bsched-serve: draining for shutdown");
    core.drain();
    for h in handlers {
        let _ = h.join();
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    eprintln!("bsched-serve: shutdown complete");
    Ok(())
}

/// One connection's request loop. Any error return closes the
/// connection; a best-effort `error` frame is attempted first for
/// protocol-level failures.
fn handle_connection(
    core: &Arc<ServeCore>,
    conn: Conn,
    cfg: &ServerConfig,
) -> Result<(), FrameError> {
    conn.apply_timeouts(cfg)?;
    let (read_half, write_half) = conn.split()?;
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(write_half);
    loop {
        let doc = match read_frame(&mut reader, MAX_FRAME_LEN) {
            Ok(Some(doc)) => doc,
            Ok(None) => return Ok(()), // clean EOF between frames
            Err(e) => {
                // Malformed/oversized/truncated input: tell the client
                // why (best effort — the socket may already be dead),
                // then drop the connection.
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        id: None,
                        msg: format!("protocol error: {e}"),
                    }
                    .to_json(),
                );
                return Err(e);
            }
        };
        let request = match Request::from_json(&doc) {
            Ok(r) => r,
            Err(e) => {
                let _ = write_frame(
                    &mut writer,
                    &Response::Error {
                        id: None,
                        msg: format!("bad request: {e}"),
                    }
                    .to_json(),
                );
                // A parseable frame with a bad request is a client bug,
                // not a stream desync: the connection stays usable.
                continue;
            }
        };
        match request {
            Request::Hello => {
                write_frame(&mut writer, &Response::hello_ok().to_json())?;
            }
            Request::Ping => {
                write_frame(&mut writer, &Response::Pong.to_json())?;
            }
            Request::Stats => {
                write_frame(&mut writer, &Response::Stats(core.stats()).to_json())?;
            }
            Request::Shutdown => {
                core.request_shutdown();
                write_frame(&mut writer, &Response::ShutdownOk.to_json())?;
                return Ok(());
            }
            Request::Submit(submit) => {
                handle_submit(core, &mut writer, &submit)?;
            }
        }
    }
}

/// Admits a submit and streams its result frames in request order.
fn handle_submit(
    core: &Arc<ServeCore>,
    writer: &mut impl Write,
    submit: &SubmitRequest,
) -> Result<(), FrameError> {
    let outcome = match core.submit(&submit.cells, submit.verify) {
        Ok(outcome) => outcome,
        Err(SubmitError::Overloaded { queued, limit }) => {
            write_frame(
                writer,
                &Response::Overloaded {
                    id: submit.id,
                    queued,
                    limit,
                }
                .to_json(),
            )?;
            return Ok(());
        }
        Err(SubmitError::Draining) => {
            write_frame(
                writer,
                &Response::Error {
                    id: Some(submit.id),
                    msg: "server is draining for shutdown".to_string(),
                }
                .to_json(),
            )?;
            return Ok(());
        }
    };
    write_frame(
        writer,
        &Response::Accepted {
            id: submit.id,
            cells: submit.cells.len() as u64,
            new_jobs: outcome.new_jobs,
            joined_inflight: outcome.joined_inflight,
        }
        .to_json(),
    )?;
    // Stream results in request order. Waiting in order (rather than
    // completion order) keeps the client trivially simple and matches
    // the direct `all_experiments` output contract; the dispatcher
    // computes out-of-order regardless.
    for (index, job) in outcome.jobs.iter().enumerate() {
        let (result, trace) = job.wait();
        let index = index as u64;
        match result {
            Ok(result) => {
                if submit.trace && !trace.is_empty() {
                    write_frame(
                        writer,
                        &Response::TraceEvents {
                            id: submit.id,
                            index,
                            events: trace,
                        }
                        .to_json(),
                    )?;
                }
                write_frame(
                    writer,
                    &Response::cell_result(submit.id, index, job.cell(), &result).to_json(),
                )?;
            }
            Err(msg) => {
                write_frame(
                    writer,
                    &Response::CellError {
                        id: submit.id,
                        index,
                        cell: job.cell().to_string(),
                        msg,
                    }
                    .to_json(),
                )?;
            }
        }
    }
    write_frame(writer, &Response::Done { id: submit.id }.to_json())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_accepts_both_forms_and_rejects_garbage() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7421"),
            Ok(Endpoint::Tcp("127.0.0.1:7421".to_string()))
        );
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("/tmp/bare-path").is_err());
        assert!(Endpoint::parse("http://x").is_err());
    }

    #[test]
    fn endpoint_display_round_trips() {
        for s in ["unix:/tmp/a.sock", "tcp:127.0.0.1:9"] {
            assert_eq!(Endpoint::parse(s).unwrap().to_string(), s);
        }
    }
}
