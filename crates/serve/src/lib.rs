//! `bsched-serve` — a long-running experiment service over the
//! `bsched-harness` engine.
//!
//! The table binaries are batch programs: cold-start the engine,
//! compute a grid, exit. That wastes the warm in-memory cache the
//! moment anything interactive wants results — a sweep driver, a
//! notebook, CI shards probing a handful of cells. This crate keeps one
//! engine resident and serves experiment-grid cells over a socket:
//!
//! * **wire protocol** ([`protocol`]) — versioned, length-prefixed JSON
//!   frames ([`bsched_util::frame`]) over TCP or Unix sockets; cells
//!   travel either as paper-table shorthand (`kernel`/`scheduler`/
//!   `config` label) or as exhaustive `CompileOptions` documents whose
//!   round-trip reproduces the exact canonical cache key;
//! * **serving core** ([`core`]) — bounded admission queue with
//!   explicit `overloaded` rejection (backpressure a client can see and
//!   retry, instead of unbounded buffering), deduplication of identical
//!   in-flight cells across connections (N clients submitting the same
//!   cold grid compute each cell once), and a dispatcher that batches
//!   admitted work into [`bsched_harness::Engine::run_where`] — the
//!   same work-stealing pool, sharded memo store, and content-addressed
//!   disk cache every batch binary uses, so a served result and a
//!   locally computed one are byte-identical by construction;
//! * **front end** ([`server`]) — nonblocking accept loop, a handler
//!   thread per connection with read/write timeouts, malformed frames
//!   killing the connection (never the server, never a queue slot), and
//!   graceful drain on a wire-level `shutdown` request;
//! * **client** ([`client`]) — the blocking client used by the
//!   `bsched-client` binary (grid mode and load generator) and the
//!   equivalence tests.
//!
//! Per-request `verify` runs the `bsched-verify` conformance suite on
//! served cells; per-request `trace` streams `bsched-trace` events for
//! cold-computed cells back to the submitter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod core;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ReceivedCell, SubmitReply};
pub use core::{CellJob, ServeConfig, ServeCore, SubmitError, SubmitOutcome};
pub use protocol::{
    cell_from_json, cell_to_json, Request, Response, StatsSnapshot, SubmitRequest, WireTraceEvent,
    WIRE_SCHEMA_VERSION,
};
pub use server::{serve, Endpoint, ServerConfig};
