//! The `bsched-serve` server binary.
//!
//! ```text
//! bsched-serve --unix /tmp/bsched.sock [--queue-limit N] [--batch-max N]
//! bsched-serve --tcp 127.0.0.1:7421 [--trace-stream] [--jobs N]
//! ```
//!
//! Engine settings come from the usual environment (`BSCHED_JOBS`,
//! `BSCHED_NO_CACHE`, `BSCHED_CACHE_DIR`) with `--jobs`/`--no-cache`/
//! `--cache-dir` overrides. Exit codes: 0 after a graceful wire-level
//! shutdown, 2 on usage or configuration errors.

use bsched_harness::{Engine, EngineConfig};
use bsched_serve::{serve, Endpoint, ServeConfig, ServeCore, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: bsched-serve (--unix PATH | --tcp ADDR) [options]\n\
         \n\
         options:\n\
         \x20 --queue-limit N     admission queue bound (default 1024)\n\
         \x20 --batch-max N       max cells per engine batch (default 64)\n\
         \x20 --trace-stream      capture trace events for submits that ask\n\
         \x20 --jobs N            worker threads (overrides BSCHED_JOBS)\n\
         \x20 --cache-dir PATH    disk cache root (overrides BSCHED_CACHE_DIR)\n\
         \x20 --no-cache          disable the disk cache layer\n\
         \x20 --read-timeout-ms N per-connection read timeout (default 120000)"
    );
    std::process::exit(2);
}

fn bail(msg: &str) -> ! {
    eprintln!("bsched-serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint: Option<Endpoint> = None;
    let mut serve_cfg = ServeConfig::default();
    let mut server_cfg = ServerConfig::default();
    let mut engine_cfg = match EngineConfig::try_from_env() {
        Ok(cfg) => cfg,
        Err(msg) => bail(&msg),
    };

    let mut i = 0;
    let next_value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| bail(&format!("{flag} needs a value")))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--unix" => {
                let path = next_value(&mut i, "--unix");
                endpoint = Some(Endpoint::Unix(path.into()));
            }
            "--tcp" => {
                let addr = next_value(&mut i, "--tcp");
                endpoint = Some(Endpoint::Tcp(addr));
            }
            "--queue-limit" => {
                let v = next_value(&mut i, "--queue-limit");
                serve_cfg.queue_limit = v
                    .parse()
                    .unwrap_or_else(|_| bail(&format!("invalid --queue-limit {v:?}")));
            }
            "--batch-max" => {
                let v = next_value(&mut i, "--batch-max");
                match v.parse() {
                    Ok(n) if n >= 1 => serve_cfg.batch_max = n,
                    _ => bail(&format!("invalid --batch-max {v:?}")),
                }
            }
            "--trace-stream" => serve_cfg.stream_traces = true,
            "--jobs" => {
                let v = next_value(&mut i, "--jobs");
                match v.parse() {
                    Ok(n) if n >= 1 => engine_cfg.jobs = n,
                    _ => bail(&format!("invalid --jobs {v:?}")),
                }
            }
            "--cache-dir" => {
                engine_cfg.cache_dir = next_value(&mut i, "--cache-dir").into();
            }
            "--no-cache" => engine_cfg.disk_cache = false,
            "--read-timeout-ms" => {
                let v = next_value(&mut i, "--read-timeout-ms");
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|_| bail(&format!("invalid --read-timeout-ms {v:?}")));
                server_cfg.read_timeout = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => usage(),
            other => bail(&format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    let Some(endpoint) = endpoint else { usage() };

    let engine = Engine::with_standard_kernels(engine_cfg);
    eprintln!(
        "bsched-serve: engine ready ({} kernels, {} workers, disk cache {})",
        engine.kernel_names().len(),
        engine.jobs(),
        if engine.config().disk_cache { "on" } else { "off" }
    );
    let core = Arc::new(ServeCore::new(engine, serve_cfg));
    let dispatcher = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || core.run_dispatcher())
    };
    if let Err(e) = serve(&core, &endpoint, &server_cfg) {
        // serve() already drained on the graceful path; this is a bind
        // or listen failure.
        eprintln!("bsched-serve: {e}");
        std::process::exit(1);
    }
    dispatcher.join().expect("dispatcher thread panicked");
}
