//! The `bsched-serve` wire protocol: versioned, length-prefixed JSON
//! frames (see [`bsched_util::frame`] for the framing layer).
//!
//! # Schema
//!
//! Every frame is a JSON object carrying `"v": WIRE_SCHEMA_VERSION` and
//! a `"type"` discriminator. The server refuses any other version
//! loudly (an `error` frame, then connection close) rather than
//! misreading fields — the same policy as the result cache and the
//! trace export.
//!
//! Client → server frames: `hello`, `ping`, `stats`, `shutdown`, and
//! `submit` (a batch of experiment-grid cells plus `verify`/`trace`
//! flags). Server → client frames: `hello_ok`, `pong`, `stats`,
//! `shutdown_ok`, `accepted`, `overloaded`, `result`, `cell_error`,
//! `trace_events`, `done`, and `error`.
//!
//! # Cell encoding
//!
//! A cell is `kernel × CompileOptions` (the options embed the full
//! simulated machine). Two spellings are accepted:
//!
//! * **shorthand** — `{"kernel": "TRFD", "scheduler": "bal",
//!   "config": "LA+LU 4"}` using the paper's table labels over the
//!   standard machine; this is what the recorded request mixes use;
//! * **full** — `{"kernel": "TRFD", "options": {...}}` with every
//!   `CompileOptions` and `SimConfig` field spelled out, as produced by
//!   [`options_to_json`]. The codec is exhaustive: a round-trip through
//!   JSON reproduces the exact canonical cache key, which is what makes
//!   served results and locally computed results interchangeable.
//!
//! Metrics travel in the same flat document the on-disk cache uses
//! ([`bsched_harness::encode_metrics`]) — one codec, byte-identical
//! results on both paths.

use bsched_core::{SchedulerKind, TieBreak};
use bsched_harness::{decode_metrics, encode_metrics, CellResult, ExperimentCell};
use bsched_mem::{CacheConfig, MemConfig};
use bsched_pipeline::{CompileOptions, ConfigKind};
use bsched_sim::SimConfig;
use bsched_util::Json;
use std::fmt;

/// Version of the wire schema. Bump whenever a frame's meaning changes;
/// both ends refuse other versions instead of guessing.
///
/// v2: `CompileOptions` gained the exact scheduler arm
/// (`"scheduler": "exact"`) and the required `exact_budget` field.
///
/// v3: the MachineSpec redesign — `branch` gained the required `kind`
/// field (predictor family) and `mem` the required `prefetch` and
/// `mshr_policy` fields.
pub const WIRE_SCHEMA_VERSION: u32 = 3;

/// A protocol-level failure: the frame was valid JSON but not a valid
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err(msg: impl Into<String>) -> ProtoError {
    ProtoError(msg.into())
}

// ---------------------------------------------------------------------
// Scalar helpers
// ---------------------------------------------------------------------

fn get_u64(doc: &Json, key: &str) -> Result<u64, ProtoError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(format!("missing or non-integer field {key:?}")))
}

fn get_bool(doc: &Json, key: &str) -> Result<bool, ProtoError> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| err(format!("missing or non-bool field {key:?}")))
}

fn get_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ProtoError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(format!("missing or non-string field {key:?}")))
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| err(format!("field {key:?} must be an integer or null"))),
    }
}

fn u64_or_null(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::u64)
}

fn check_version(doc: &Json) -> Result<(), ProtoError> {
    let v = get_u64(doc, "v")?;
    if v != u64::from(WIRE_SCHEMA_VERSION) {
        return Err(err(format!(
            "unsupported wire schema version {v} (this end speaks {WIRE_SCHEMA_VERSION})"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// CompileOptions / SimConfig codec
// ---------------------------------------------------------------------

fn scheduler_to_str(k: SchedulerKind) -> &'static str {
    match k {
        SchedulerKind::Traditional => "trad",
        SchedulerKind::Balanced => "bal",
        SchedulerKind::SelectiveBalanced => "selbal",
        SchedulerKind::Exact => "exact",
    }
}

fn scheduler_from_str(s: &str) -> Result<SchedulerKind, ProtoError> {
    match s {
        "trad" | "traditional" | "TS" => Ok(SchedulerKind::Traditional),
        "bal" | "balanced" | "BS" => Ok(SchedulerKind::Balanced),
        "selbal" | "selective" => Ok(SchedulerKind::SelectiveBalanced),
        "exact" | "EX" => Ok(SchedulerKind::Exact),
        other => Err(err(format!(
            "unknown scheduler {other:?} (expected trad|bal|selbal|exact)"
        ))),
    }
}

fn tie_break_to_str(t: TieBreak) -> &'static str {
    match t {
        TieBreak::Standard => "std",
        TieBreak::ExposedFirst => "exposed",
        TieBreak::ProgramOrder => "order",
    }
}

fn tie_break_from_str(s: &str) -> Result<TieBreak, ProtoError> {
    match s {
        "std" => Ok(TieBreak::Standard),
        "exposed" => Ok(TieBreak::ExposedFirst),
        "order" => Ok(TieBreak::ProgramOrder),
        other => Err(err(format!(
            "unknown tie_break {other:?} (expected std|exposed|order)"
        ))),
    }
}

fn cache_to_json(c: &CacheConfig) -> Json {
    Json::obj(vec![
        ("size", Json::u64(c.size)),
        ("line", Json::u64(c.line)),
        ("assoc", Json::u64(u64::from(c.assoc))),
        ("latency", Json::u64(u64::from(c.latency))),
    ])
}

fn cache_from_json(doc: &Json) -> Result<CacheConfig, ProtoError> {
    Ok(CacheConfig {
        size: get_u64(doc, "size")?,
        line: get_u64(doc, "line")?,
        assoc: u32::try_from(get_u64(doc, "assoc")?).map_err(|_| err("assoc out of range"))?,
        latency: u32::try_from(get_u64(doc, "latency")?)
            .map_err(|_| err("latency out of range"))?,
    })
}

fn mem_to_json(m: &MemConfig) -> Json {
    Json::obj(vec![
        ("l1d", cache_to_json(&m.l1d)),
        ("icache", cache_to_json(&m.icache)),
        ("l2", cache_to_json(&m.l2)),
        ("l3", m.l3.as_ref().map_or(Json::Null, cache_to_json)),
        ("mem_latency", Json::u64(u64::from(m.mem_latency))),
        ("mshrs", Json::u64(m.mshrs as u64)),
        ("dtb_entries", Json::u64(m.dtb_entries as u64)),
        ("itb_entries", Json::u64(m.itb_entries as u64)),
        ("page_size", Json::u64(m.page_size)),
        ("tlb_miss_penalty", Json::u64(u64::from(m.tlb_miss_penalty))),
        (
            "write_buffer",
            m.write_buffer.map_or(Json::Null, |n| Json::u64(u64::from(n))),
        ),
        ("write_drain_cycles", Json::u64(u64::from(m.write_drain_cycles))),
        ("prefetch", Json::Str(m.prefetch.label().into())),
        ("mshr_policy", Json::Str(m.mshr_policy.label().into())),
    ])
}

fn mem_from_json(doc: &Json) -> Result<MemConfig, ProtoError> {
    let cache_at = |key: &str| -> Result<CacheConfig, ProtoError> {
        cache_from_json(
            doc.get(key)
                .ok_or_else(|| err(format!("missing cache level {key:?}")))?,
        )
    };
    let l3 = match doc.get("l3") {
        None | Some(Json::Null) => None,
        Some(v) => Some(cache_from_json(v)?),
    };
    let narrow = |v: u64, what: &str| -> Result<u32, ProtoError> {
        u32::try_from(v).map_err(|_| err(format!("{what} out of range")))
    };
    Ok(MemConfig {
        l1d: cache_at("l1d")?,
        icache: cache_at("icache")?,
        l2: cache_at("l2")?,
        l3,
        mem_latency: narrow(get_u64(doc, "mem_latency")?, "mem_latency")?,
        mshrs: get_u64(doc, "mshrs")? as usize,
        dtb_entries: get_u64(doc, "dtb_entries")? as usize,
        itb_entries: get_u64(doc, "itb_entries")? as usize,
        page_size: get_u64(doc, "page_size")?,
        tlb_miss_penalty: narrow(get_u64(doc, "tlb_miss_penalty")?, "tlb_miss_penalty")?,
        write_buffer: opt_u64(doc, "write_buffer")?
            .map(|n| narrow(n, "write_buffer"))
            .transpose()?,
        write_drain_cycles: narrow(get_u64(doc, "write_drain_cycles")?, "write_drain_cycles")?,
        prefetch: get_str(doc, "prefetch")?
            .parse()
            .map_err(|e: String| err(e))?,
        mshr_policy: get_str(doc, "mshr_policy")?
            .parse()
            .map_err(|e: String| err(e))?,
    })
}

fn sim_to_json(c: &SimConfig) -> Json {
    Json::obj(vec![
        ("mem", mem_to_json(&c.mem)),
        (
            "branch",
            Json::obj(vec![
                ("kind", Json::Str(c.branch.kind.label().into())),
                ("entries", Json::u64(c.branch.entries as u64)),
                (
                    "mispredict_penalty",
                    Json::u64(u64::from(c.branch.mispredict_penalty)),
                ),
            ]),
        ),
        ("fuel", Json::u64(c.fuel)),
        ("model_ifetch", Json::Bool(c.model_ifetch)),
        ("issue_width", Json::u64(u64::from(c.issue_width))),
        ("mem_ports", Json::u64(u64::from(c.mem_ports))),
        ("uniform_fixed_latency", Json::Bool(c.uniform_fixed_latency)),
    ])
}

fn sim_from_json(doc: &Json) -> Result<SimConfig, ProtoError> {
    let branch = doc.get("branch").ok_or_else(|| err("missing field \"branch\""))?;
    Ok(SimConfig {
        mem: mem_from_json(doc.get("mem").ok_or_else(|| err("missing field \"mem\""))?)?,
        branch: bsched_sim::BranchConfig {
            kind: get_str(branch, "kind")?
                .parse()
                .map_err(|e: String| err(e))?,
            entries: get_u64(branch, "entries")? as usize,
            mispredict_penalty: u32::try_from(get_u64(branch, "mispredict_penalty")?)
                .map_err(|_| err("mispredict_penalty out of range"))?,
        },
        fuel: get_u64(doc, "fuel")?,
        model_ifetch: get_bool(doc, "model_ifetch")?,
        issue_width: u32::try_from(get_u64(doc, "issue_width")?)
            .map_err(|_| err("issue_width out of range"))?,
        mem_ports: u32::try_from(get_u64(doc, "mem_ports")?)
            .map_err(|_| err("mem_ports out of range"))?,
        uniform_fixed_latency: get_bool(doc, "uniform_fixed_latency")?,
    })
}

/// Serializes every field of [`CompileOptions`] (machine configuration
/// included). The inverse of [`options_from_json`].
#[must_use]
pub fn options_to_json(o: &CompileOptions) -> Json {
    Json::obj(vec![
        ("scheduler", Json::Str(scheduler_to_str(o.scheduler).into())),
        ("unroll", u64_or_null(o.unroll.map(u64::from))),
        ("trace", Json::Bool(o.trace)),
        ("locality", Json::Bool(o.locality)),
        ("predicate", Json::Bool(o.predicate)),
        ("weight_cap", Json::u64(u64::from(o.weight_cap))),
        ("tie_break", Json::Str(tie_break_to_str(o.tie_break).into())),
        ("unroll_budget", u64_or_null(o.unroll_budget.map(|b| b as u64))),
        ("selective", Json::Bool(o.selective)),
        ("reference_weights", Json::Bool(o.reference_weights)),
        ("exact_budget", Json::u64(o.exact_budget)),
        ("sim", sim_to_json(&o.sim)),
    ])
}

/// Rebuilds [`CompileOptions`] from [`options_to_json`] output.
///
/// # Errors
///
/// [`ProtoError`] on any missing, mistyped, or out-of-range field.
pub fn options_from_json(doc: &Json) -> Result<CompileOptions, ProtoError> {
    let mut o = CompileOptions::new(scheduler_from_str(get_str(doc, "scheduler")?)?);
    o.unroll = opt_u64(doc, "unroll")?
        .map(|f| u32::try_from(f).map_err(|_| err("unroll out of range")))
        .transpose()?;
    o.trace = get_bool(doc, "trace")?;
    o.locality = get_bool(doc, "locality")?;
    o.predicate = get_bool(doc, "predicate")?;
    o.weight_cap =
        u32::try_from(get_u64(doc, "weight_cap")?).map_err(|_| err("weight_cap out of range"))?;
    o.tie_break = tie_break_from_str(get_str(doc, "tie_break")?)?;
    o.unroll_budget = opt_u64(doc, "unroll_budget")?.map(|b| b as usize);
    o.selective = get_bool(doc, "selective")?;
    o.reference_weights = get_bool(doc, "reference_weights")?;
    o.exact_budget = get_u64(doc, "exact_budget")?;
    o.sim = sim_from_json(doc.get("sim").ok_or_else(|| err("missing field \"sim\""))?)?;
    Ok(o)
}

/// Parses a paper-table configuration label (`none`, `LU 4`,
/// `TrS+LU 8`, `LA`, `LA+LU 4`, `LA+TrS+LU 8`; spaces optional).
///
/// # Errors
///
/// [`ProtoError`] naming the accepted spellings.
pub fn config_kind_from_label(label: &str) -> Result<ConfigKind, ProtoError> {
    let compact: String = label.chars().filter(|c| !c.is_whitespace()).collect();
    let unroll_of = |rest: &str| -> Result<u32, ProtoError> {
        rest.parse::<u32>()
            .map_err(|_| err(format!("bad unroll factor in config label {label:?}")))
    };
    if compact == "none" {
        Ok(ConfigKind::Base)
    } else if compact == "LA" {
        Ok(ConfigKind::La)
    } else if let Some(rest) = compact.strip_prefix("LA+TrS+LU") {
        Ok(ConfigKind::LaTrsLu(unroll_of(rest)?))
    } else if let Some(rest) = compact.strip_prefix("LA+LU") {
        Ok(ConfigKind::LaLu(unroll_of(rest)?))
    } else if let Some(rest) = compact.strip_prefix("TrS+LU") {
        Ok(ConfigKind::TrsLu(unroll_of(rest)?))
    } else if let Some(rest) = compact.strip_prefix("LU") {
        Ok(ConfigKind::Lu(unroll_of(rest)?))
    } else {
        Err(err(format!(
            "unknown config label {label:?} (expected none, LU n, TrS+LU n, LA, LA+LU n, or LA+TrS+LU n)"
        )))
    }
}

/// Serializes a cell in the full spelling.
#[must_use]
pub fn cell_to_json(cell: &ExperimentCell) -> Json {
    Json::obj(vec![
        ("kernel", Json::Str(cell.kernel().to_string())),
        ("options", options_to_json(cell.options())),
    ])
}

/// Decodes a cell in either spelling (shorthand `config` label or full
/// `options`). Kernel names are validated against the workload suite so
/// a typo is rejected at the protocol layer, before anything is queued.
///
/// # Errors
///
/// [`ProtoError`] on unknown kernels, unknown labels, or a malformed
/// options object.
pub fn cell_from_json(doc: &Json) -> Result<ExperimentCell, ProtoError> {
    let kernel = get_str(doc, "kernel")?;
    if bsched_workloads::suite::kernel_by_name(kernel).is_none() {
        let valid: Vec<&str> = bsched_workloads::all_kernels().iter().map(|k| k.name).collect();
        return Err(err(format!(
            "unknown kernel {kernel:?} (valid kernels: {})",
            valid.join(", ")
        )));
    }
    let options = match doc.get("options") {
        Some(full) => options_from_json(full)?,
        None => {
            let kind = config_kind_from_label(get_str(doc, "config")?)?;
            let scheduler = scheduler_from_str(get_str(doc, "scheduler")?)?;
            kind.options(scheduler)
        }
    };
    Ok(ExperimentCell::new(kernel, options))
}

// ---------------------------------------------------------------------
// Trace events on the wire
// ---------------------------------------------------------------------

/// A trace event as it travels to a client: the owned mirror of
/// [`bsched_trace::Event`] (the in-process event interns its point
/// identity as `'static` strings, which a decoder cannot reconstruct).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTraceEvent {
    /// Subsystem (`"harness"`, `"sim"`, …).
    pub cat: String,
    /// Point name within the subsystem.
    pub name: String,
    /// Span or instant (`"span"` / `"instant"`).
    pub kind: String,
    /// Span duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Dynamic context (cell label, kernel name); may be empty.
    pub label: String,
    /// Numeric payload in recording order.
    pub args: Vec<(String, u64)>,
}

impl WireTraceEvent {
    /// Converts an in-process event. The wall-clock timestamp is
    /// deliberately dropped: it is not deterministic and the client is
    /// on a different clock anyway.
    #[must_use]
    pub fn from_event(e: &bsched_trace::Event) -> Self {
        WireTraceEvent {
            cat: e.id.cat.to_string(),
            name: e.id.name.to_string(),
            kind: e.kind.label().to_string(),
            dur_ns: e.dur_ns,
            label: e.label.clone(),
            args: e.args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cat", Json::Str(self.cat.clone())),
            ("name", Json::Str(self.name.clone())),
            ("kind", Json::Str(self.kind.clone())),
            ("dur_ns", Json::u64(self.dur_ns)),
            ("label", Json::Str(self.label.clone())),
            (
                "args",
                Json::Arr(
                    self.args
                        .iter()
                        .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::u64(*v)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<Self, ProtoError> {
        let args = match doc.get("args") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|pair| match pair {
                    Json::Arr(kv) if kv.len() == 2 => {
                        let k = kv[0].as_str().ok_or_else(|| err("bad trace arg key"))?;
                        let v = kv[1].as_u64().ok_or_else(|| err("bad trace arg value"))?;
                        Ok((k.to_string(), v))
                    }
                    _ => Err(err("bad trace arg pair")),
                })
                .collect::<Result<Vec<_>, ProtoError>>()?,
            _ => return Err(err("missing trace args")),
        };
        Ok(WireTraceEvent {
            cat: get_str(doc, "cat")?.to_string(),
            name: get_str(doc, "name")?.to_string(),
            kind: get_str(doc, "kind")?.to_string(),
            dur_ns: get_u64(doc, "dur_ns")?,
            label: get_str(doc, "label")?.to_string(),
            args,
        })
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A `submit` request: one batch of cells to answer.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Client-chosen id echoed in every frame of the reply stream.
    pub id: u64,
    /// Run the `bsched-verify` conformance suite on every executed
    /// cell (cached-but-unverified results are recomputed).
    pub verify: bool,
    /// Stream per-cell `trace_events` frames (only meaningful when the
    /// server was started with trace streaming enabled).
    pub trace: bool,
    /// The cells, in reply order.
    pub cells: Vec<ExperimentCell>,
}

/// A client → server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Handshake; the server answers `hello_ok`.
    Hello,
    /// Liveness probe; the server answers `pong`.
    Ping,
    /// Server counters; the server answers a `stats` frame.
    Stats,
    /// Graceful drain: stop admitting, finish in-flight work, exit.
    Shutdown,
    /// A batch of cells.
    Submit(SubmitRequest),
}

impl Request {
    /// Serializes the request as one frame document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("v", Json::u64(u64::from(WIRE_SCHEMA_VERSION)))];
        match self {
            Request::Hello => pairs.push(("type", Json::Str("hello".into()))),
            Request::Ping => pairs.push(("type", Json::Str("ping".into()))),
            Request::Stats => pairs.push(("type", Json::Str("stats".into()))),
            Request::Shutdown => pairs.push(("type", Json::Str("shutdown".into()))),
            Request::Submit(s) => {
                pairs.push(("type", Json::Str("submit".into())));
                pairs.push(("id", Json::u64(s.id)));
                pairs.push(("verify", Json::Bool(s.verify)));
                pairs.push(("trace", Json::Bool(s.trace)));
                pairs.push((
                    "cells",
                    Json::Arr(s.cells.iter().map(cell_to_json).collect()),
                ));
            }
        }
        Json::obj(pairs)
    }

    /// Decodes one frame document into a request.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on a version mismatch, unknown type, or malformed
    /// fields.
    pub fn from_json(doc: &Json) -> Result<Request, ProtoError> {
        check_version(doc)?;
        match get_str(doc, "type")? {
            "hello" => Ok(Request::Hello),
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let cells = match doc.get("cells") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(cell_from_json)
                        .collect::<Result<Vec<_>, ProtoError>>()?,
                    _ => return Err(err("submit requires a \"cells\" array")),
                };
                if cells.is_empty() {
                    return Err(err("submit requires at least one cell"));
                }
                Ok(Request::Submit(SubmitRequest {
                    id: get_u64(doc, "id")?,
                    verify: get_bool(doc, "verify")?,
                    trace: get_bool(doc, "trace")?,
                    cells,
                }))
            }
            other => Err(err(format!("unknown request type {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// A snapshot of server-side counters (the `stats` frame).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Submit requests admitted.
    pub submits: u64,
    /// Cells across admitted submits (before any dedup).
    pub submitted_cells: u64,
    /// Cells that joined an identical in-flight job instead of queueing
    /// a new one (concurrent-client dedup).
    pub joined_inflight: u64,
    /// Submit requests rejected with `overloaded`.
    pub rejected_submits: u64,
    /// Jobs completed (success or failure).
    pub completed_cells: u64,
    /// Jobs that failed.
    pub failed_cells: u64,
    /// Unique jobs currently queued (admission queue depth).
    pub queue_depth: u64,
    /// The admission queue limit.
    pub queue_limit: u64,
    /// Engine: cells executed (cache misses actually computed).
    pub executed: u64,
    /// Engine: in-memory store hits.
    pub memory_hits: u64,
    /// Engine: on-disk cache hits.
    pub disk_hits: u64,
    /// Engine: cells requested across all batches.
    pub requested: u64,
    /// Engine: cells verified.
    pub verified: u64,
    /// Store: lookups answered from memory since server start.
    pub store_hits: u64,
    /// Store: lookups that missed since server start.
    pub store_misses: u64,
}

impl StatsSnapshot {
    fn to_json_pairs(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("submits", Json::u64(self.submits)),
            ("submitted_cells", Json::u64(self.submitted_cells)),
            ("joined_inflight", Json::u64(self.joined_inflight)),
            ("rejected_submits", Json::u64(self.rejected_submits)),
            ("completed_cells", Json::u64(self.completed_cells)),
            ("failed_cells", Json::u64(self.failed_cells)),
            ("queue_depth", Json::u64(self.queue_depth)),
            ("queue_limit", Json::u64(self.queue_limit)),
            ("executed", Json::u64(self.executed)),
            ("memory_hits", Json::u64(self.memory_hits)),
            ("disk_hits", Json::u64(self.disk_hits)),
            ("requested", Json::u64(self.requested)),
            ("verified", Json::u64(self.verified)),
            ("store_hits", Json::u64(self.store_hits)),
            ("store_misses", Json::u64(self.store_misses)),
        ]
    }

    fn from_json(doc: &Json) -> Result<Self, ProtoError> {
        Ok(StatsSnapshot {
            submits: get_u64(doc, "submits")?,
            submitted_cells: get_u64(doc, "submitted_cells")?,
            joined_inflight: get_u64(doc, "joined_inflight")?,
            rejected_submits: get_u64(doc, "rejected_submits")?,
            completed_cells: get_u64(doc, "completed_cells")?,
            failed_cells: get_u64(doc, "failed_cells")?,
            queue_depth: get_u64(doc, "queue_depth")?,
            queue_limit: get_u64(doc, "queue_limit")?,
            executed: get_u64(doc, "executed")?,
            memory_hits: get_u64(doc, "memory_hits")?,
            disk_hits: get_u64(doc, "disk_hits")?,
            requested: get_u64(doc, "requested")?,
            verified: get_u64(doc, "verified")?,
            store_hits: get_u64(doc, "store_hits")?,
            store_misses: get_u64(doc, "store_misses")?,
        })
    }
}

/// A server → client message.
#[derive(Debug, Clone)]
pub enum Response {
    /// Handshake reply.
    HelloOk {
        /// Server identity string.
        server: String,
        /// Wire schema version the server speaks.
        schema: u32,
    },
    /// Liveness reply.
    Pong,
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Drain acknowledged; the server exits once in-flight work ends.
    ShutdownOk,
    /// The submit was admitted; `result` frames follow in cell order.
    Accepted {
        /// Echo of the submit id.
        id: u64,
        /// Unique cells after in-request dedup.
        cells: u64,
        /// New jobs queued by this submit.
        new_jobs: u64,
        /// Cells that joined an identical in-flight job.
        joined_inflight: u64,
    },
    /// Backpressure: the admission queue is full. The submit was
    /// dropped in its entirety; nothing was queued. Retry later.
    Overloaded {
        /// Echo of the submit id.
        id: u64,
        /// Queue depth at rejection time.
        queued: u64,
        /// The admission limit.
        limit: u64,
    },
    /// One cell's result.
    CellResult {
        /// Echo of the submit id.
        id: u64,
        /// Index into the submitted cell list.
        index: u64,
        /// Human-readable `kernel/label`.
        cell: String,
        /// The canonical cache key (clients use it to cross-check
        /// equivalence with local runs).
        key: String,
        /// Metrics plus verification flags.
        result: CellResult,
    },
    /// One cell failed (the rest of the stream continues).
    CellError {
        /// Echo of the submit id.
        id: u64,
        /// Index into the submitted cell list.
        index: u64,
        /// Human-readable `kernel/label`.
        cell: String,
        /// What went wrong.
        msg: String,
    },
    /// Trace events attributed to one cell (follows that cell's
    /// `result` frame when the submit asked for tracing).
    TraceEvents {
        /// Echo of the submit id.
        id: u64,
        /// Index into the submitted cell list.
        index: u64,
        /// The events.
        events: Vec<WireTraceEvent>,
    },
    /// The reply stream for a submit is complete.
    Done {
        /// Echo of the submit id.
        id: u64,
    },
    /// A request-level failure (unknown type, bad cell spec, draining).
    Error {
        /// The submit id when the failure belongs to one.
        id: Option<u64>,
        /// What went wrong.
        msg: String,
    },
}

impl Response {
    /// The handshake reply for this server build.
    #[must_use]
    pub fn hello_ok() -> Response {
        Response::HelloOk {
            server: format!("bsched-serve/{}", env!("CARGO_PKG_VERSION")),
            schema: WIRE_SCHEMA_VERSION,
        }
    }

    /// A result frame for `cell`, deriving the display string and the
    /// canonical cache key from the cell itself.
    #[must_use]
    pub fn cell_result(id: u64, index: u64, cell: &ExperimentCell, result: &CellResult) -> Response {
        Response::CellResult {
            id,
            index,
            cell: cell.to_string(),
            key: cell.canonical_key().to_string(),
            result: result.clone(),
        }
    }

    /// Serializes the response as one frame document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("v", Json::u64(u64::from(WIRE_SCHEMA_VERSION)))];
        match self {
            Response::HelloOk { server, schema } => {
                pairs.push(("type", Json::Str("hello_ok".into())));
                pairs.push(("server", Json::Str(server.clone())));
                pairs.push(("schema", Json::u64(u64::from(*schema))));
            }
            Response::Pong => pairs.push(("type", Json::Str("pong".into()))),
            Response::Stats(s) => {
                pairs.push(("type", Json::Str("stats".into())));
                pairs.extend(s.to_json_pairs());
            }
            Response::ShutdownOk => pairs.push(("type", Json::Str("shutdown_ok".into()))),
            Response::Accepted {
                id,
                cells,
                new_jobs,
                joined_inflight,
            } => {
                pairs.push(("type", Json::Str("accepted".into())));
                pairs.push(("id", Json::u64(*id)));
                pairs.push(("cells", Json::u64(*cells)));
                pairs.push(("new_jobs", Json::u64(*new_jobs)));
                pairs.push(("joined_inflight", Json::u64(*joined_inflight)));
            }
            Response::Overloaded { id, queued, limit } => {
                pairs.push(("type", Json::Str("overloaded".into())));
                pairs.push(("id", Json::u64(*id)));
                pairs.push(("queued", Json::u64(*queued)));
                pairs.push(("limit", Json::u64(*limit)));
            }
            Response::CellResult {
                id,
                index,
                cell,
                key,
                result,
            } => {
                pairs.push(("type", Json::Str("result".into())));
                pairs.push(("id", Json::u64(*id)));
                pairs.push(("index", Json::u64(*index)));
                pairs.push(("cell", Json::Str(cell.clone())));
                pairs.push(("key", Json::Str(key.clone())));
                pairs.push(("checksum_ok", Json::Bool(result.checksum_ok)));
                pairs.push(("verified", Json::Bool(result.verified)));
                pairs.push(("metrics", encode_metrics(&result.metrics)));
            }
            Response::CellError { id, index, cell, msg } => {
                pairs.push(("type", Json::Str("cell_error".into())));
                pairs.push(("id", Json::u64(*id)));
                pairs.push(("index", Json::u64(*index)));
                pairs.push(("cell", Json::Str(cell.clone())));
                pairs.push(("msg", Json::Str(msg.clone())));
            }
            Response::TraceEvents { id, index, events } => {
                pairs.push(("type", Json::Str("trace_events".into())));
                pairs.push(("id", Json::u64(*id)));
                pairs.push(("index", Json::u64(*index)));
                pairs.push((
                    "events",
                    Json::Arr(events.iter().map(WireTraceEvent::to_json).collect()),
                ));
            }
            Response::Done { id } => {
                pairs.push(("type", Json::Str("done".into())));
                pairs.push(("id", Json::u64(*id)));
            }
            Response::Error { id, msg } => {
                pairs.push(("type", Json::Str("error".into())));
                pairs.push(("id", id.map_or(Json::Null, Json::u64)));
                pairs.push(("msg", Json::Str(msg.clone())));
            }
        }
        Json::obj(pairs)
    }

    /// Decodes one frame document into a response.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] on a version mismatch, unknown type, or malformed
    /// fields.
    pub fn from_json(doc: &Json) -> Result<Response, ProtoError> {
        check_version(doc)?;
        match get_str(doc, "type")? {
            "hello_ok" => Ok(Response::HelloOk {
                server: get_str(doc, "server")?.to_string(),
                schema: u32::try_from(get_u64(doc, "schema")?)
                    .map_err(|_| err("schema out of range"))?,
            }),
            "pong" => Ok(Response::Pong),
            "stats" => Ok(Response::Stats(StatsSnapshot::from_json(doc)?)),
            "shutdown_ok" => Ok(Response::ShutdownOk),
            "accepted" => Ok(Response::Accepted {
                id: get_u64(doc, "id")?,
                cells: get_u64(doc, "cells")?,
                new_jobs: get_u64(doc, "new_jobs")?,
                joined_inflight: get_u64(doc, "joined_inflight")?,
            }),
            "overloaded" => Ok(Response::Overloaded {
                id: get_u64(doc, "id")?,
                queued: get_u64(doc, "queued")?,
                limit: get_u64(doc, "limit")?,
            }),
            "result" => {
                let metrics = doc
                    .get("metrics")
                    .and_then(decode_metrics)
                    .ok_or_else(|| err("missing or malformed metrics"))?;
                Ok(Response::CellResult {
                    id: get_u64(doc, "id")?,
                    index: get_u64(doc, "index")?,
                    cell: get_str(doc, "cell")?.to_string(),
                    key: get_str(doc, "key")?.to_string(),
                    result: CellResult {
                        metrics,
                        checksum_ok: get_bool(doc, "checksum_ok")?,
                        verified: get_bool(doc, "verified")?,
                    },
                })
            }
            "cell_error" => Ok(Response::CellError {
                id: get_u64(doc, "id")?,
                index: get_u64(doc, "index")?,
                cell: get_str(doc, "cell")?.to_string(),
                msg: get_str(doc, "msg")?.to_string(),
            }),
            "trace_events" => {
                let events = match doc.get("events") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(WireTraceEvent::from_json)
                        .collect::<Result<Vec<_>, ProtoError>>()?,
                    _ => return Err(err("missing trace events array")),
                };
                Ok(Response::TraceEvents {
                    id: get_u64(doc, "id")?,
                    index: get_u64(doc, "index")?,
                    events,
                })
            }
            "done" => Ok(Response::Done {
                id: get_u64(doc, "id")?,
            }),
            "error" => Ok(Response::Error {
                id: opt_u64(doc, "id")?,
                msg: get_str(doc, "msg")?.to_string(),
            }),
            other => Err(err(format!("unknown response type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_pipeline::standard_grid;
    use bsched_sim::SimMetrics;

    #[test]
    fn options_round_trip_preserves_canonical_keys() {
        // Every standard-grid configuration, plus ablation knobs, must
        // survive the wire codec with its cache key intact — that is
        // the whole equivalence story.
        let mut all: Vec<CompileOptions> =
            standard_grid().iter().map(|c| c.options()).collect();
        let mut exotic = CompileOptions::new(SchedulerKind::SelectiveBalanced)
            .with_unroll(8)
            .with_weight_cap(10)
            .with_tie_break(TieBreak::ProgramOrder)
            .with_unroll_budget(96)
            .with_reference_weights();
        exotic.predicate = false;
        exotic.selective = false;
        exotic.sim = SimConfig::default().with_issue(4, 2).with_mshrs(1);
        exotic.sim.mem.l3 = None;
        exotic.sim.mem.write_buffer = Some(6);
        all.push(exotic);
        all.push({
            let mut o = CompileOptions::new(SchedulerKind::Balanced);
            o.sim = SimConfig::default().simple_model_1993();
            o
        });
        // The machine zoo's new axes must survive the wire too.
        for spec in [
            "alpha21264",
            "blocking21164",
            "alpha21164+bp=tage+pf=nextline+mshr=nomerge",
        ] {
            let mut o = CompileOptions::new(SchedulerKind::Balanced);
            o.sim = spec.parse::<bsched_sim::MachineSpec>().unwrap().config();
            all.push(o);
        }
        for o in &all {
            let back = options_from_json(&options_to_json(o)).expect("round-trip");
            let a = ExperimentCell::new("TRFD", *o);
            let b = ExperimentCell::new("TRFD", back);
            assert_eq!(a.canonical_key(), b.canonical_key());
        }
    }

    #[test]
    fn shorthand_cells_match_standard_grid_options() {
        for cfg in standard_grid() {
            let doc = Json::obj(vec![
                ("kernel", Json::Str("ARC2D".into())),
                ("scheduler", Json::Str(scheduler_to_str(cfg.scheduler).into())),
                ("config", Json::Str(cfg.kind.label())),
            ]);
            let cell = cell_from_json(&doc).expect("shorthand decodes");
            let want = ExperimentCell::new("ARC2D", cfg.options());
            assert_eq!(cell.canonical_key(), want.canonical_key(), "{:?}", cfg.kind);
            // Compact (no-space) labels decode identically.
            let compact = Json::obj(vec![
                ("kernel", Json::Str("ARC2D".into())),
                ("scheduler", Json::Str(scheduler_to_str(cfg.scheduler).into())),
                ("config", Json::Str(cfg.kind.label().replace(' ', ""))),
            ]);
            assert_eq!(
                cell_from_json(&compact).unwrap().canonical_key(),
                want.canonical_key()
            );
        }
    }

    #[test]
    fn unknown_kernels_and_labels_are_rejected() {
        let bad_kernel = Json::obj(vec![
            ("kernel", Json::Str("nonesuch".into())),
            ("scheduler", Json::Str("bal".into())),
            ("config", Json::Str("none".into())),
        ]);
        let e = cell_from_json(&bad_kernel).unwrap_err();
        assert!(e.0.contains("nonesuch") && e.0.contains("TRFD"), "{e}");

        let bad_label = Json::obj(vec![
            ("kernel", Json::Str("TRFD".into())),
            ("scheduler", Json::Str("bal".into())),
            ("config", Json::Str("LU banana".into())),
        ]);
        assert!(cell_from_json(&bad_label).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let cells = vec![
            ExperimentCell::new("TRFD", CompileOptions::new(SchedulerKind::Balanced)),
            ExperimentCell::new("ARC2D", CompileOptions::new(SchedulerKind::Traditional).with_unroll(4)),
        ];
        let req = Request::Submit(SubmitRequest {
            id: 42,
            verify: true,
            trace: false,
            cells: cells.clone(),
        });
        match Request::from_json(&req.to_json()).unwrap() {
            Request::Submit(s) => {
                assert_eq!(s.id, 42);
                assert!(s.verify);
                assert!(!s.trace);
                assert_eq!(s.cells.len(), 2);
                for (a, b) in s.cells.iter().zip(&cells) {
                    assert_eq!(a.canonical_key(), b.canonical_key());
                }
            }
            other => panic!("wrong request: {other:?}"),
        }
        for req in [Request::Hello, Request::Ping, Request::Stats, Request::Shutdown] {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(&req)
            );
        }
    }

    #[test]
    fn responses_round_trip() {
        let result = CellResult {
            metrics: SimMetrics {
                cycles: 123,
                load_interlock: 9,
                ..SimMetrics::default()
            },
            checksum_ok: true,
            verified: true,
        };
        let frames = vec![
            Response::HelloOk {
                server: "bsched-serve".into(),
                schema: WIRE_SCHEMA_VERSION,
            },
            Response::Pong,
            Response::Stats(StatsSnapshot {
                submits: 3,
                queue_limit: 64,
                ..StatsSnapshot::default()
            }),
            Response::ShutdownOk,
            Response::Accepted {
                id: 7,
                cells: 30,
                new_jobs: 28,
                joined_inflight: 2,
            },
            Response::Overloaded {
                id: 7,
                queued: 64,
                limit: 64,
            },
            Response::CellResult {
                id: 7,
                index: 3,
                cell: "TRFD/BS".into(),
                key: "v3;kernel=TRFD;...".into(),
                result: result.clone(),
            },
            Response::CellError {
                id: 7,
                index: 4,
                cell: "TRFD/BS".into(),
                msg: "boom".into(),
            },
            Response::TraceEvents {
                id: 7,
                index: 3,
                events: vec![WireTraceEvent {
                    cat: "harness".into(),
                    name: "cell".into(),
                    kind: "span".into(),
                    dur_ns: 1234,
                    label: "TRFD/BS".into(),
                    args: vec![("cycles".into(), 5)],
                }],
            },
            Response::Done { id: 7 },
            Response::Error {
                id: None,
                msg: "nope".into(),
            },
        ];
        for frame in frames {
            let doc = frame.to_json();
            let back = Response::from_json(&doc).expect("decodes");
            // Round-trip to JSON again: stable representation.
            assert_eq!(back.to_json().to_string_compact(), doc.to_string_compact());
        }
        // The metrics specifically must survive.
        match Response::from_json(
            &Response::CellResult {
                id: 1,
                index: 0,
                cell: "c".into(),
                key: "k".into(),
                result,
            }
            .to_json(),
        )
        .unwrap()
        {
            Response::CellResult { result, .. } => {
                assert_eq!(result.metrics.cycles, 123);
                assert_eq!(result.metrics.load_interlock, 9);
                assert!(result.verified);
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_loud() {
        let mut doc = Request::Ping.to_json();
        if let Json::Obj(m) = &mut doc {
            m.insert("v".into(), Json::u64(99));
        }
        let e = Request::from_json(&doc).unwrap_err();
        assert!(e.0.contains("version 99"), "{e}");
        let e = Response::from_json(&doc).unwrap_err();
        assert!(e.0.contains("version 99"), "{e}");
    }
}
