//! A blocking client for the `bsched-serve` protocol.
//!
//! Wraps one connection: handshake on connect, then synchronous
//! request/reply exchanges. [`Client::submit`] streams the server's
//! per-cell frames back in request order and returns them collected;
//! backpressure surfaces as [`SubmitReply::Overloaded`], which the
//! caller retries (the load generator measures exactly this).

use crate::protocol::{
    Request, Response, StatsSnapshot, SubmitRequest, WireTraceEvent, WIRE_SCHEMA_VERSION,
};
use crate::server::Endpoint;
use bsched_harness::{CellResult, ExperimentCell};
use bsched_util::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket/framing failure.
    Frame(FrameError),
    /// The server replied with something the exchange didn't expect,
    /// or an `error` frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Protocol(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// One cell's outcome as received over the wire.
#[derive(Debug, Clone)]
pub struct ReceivedCell {
    /// Index into the submitted cell list.
    pub index: u64,
    /// Human-readable `kernel/label`.
    pub cell: String,
    /// The canonical cache key (empty for error frames).
    pub key: String,
    /// The result, or the server's error message.
    pub outcome: Result<CellResult, String>,
    /// Trace events the server attributed to this cell (empty unless
    /// the submit asked for tracing and the cell was a cold compute).
    pub trace: Vec<WireTraceEvent>,
}

/// What a submit came back as.
#[derive(Debug)]
pub enum SubmitReply {
    /// The full reply stream, one entry per submitted cell in request
    /// order.
    Completed {
        /// New jobs the server queued for this submit.
        new_jobs: u64,
        /// Cells that joined an identical in-flight job.
        joined_inflight: u64,
        /// Per-cell outcomes.
        cells: Vec<ReceivedCell>,
    },
    /// The server's admission queue was full; nothing was queued.
    Overloaded {
        /// Server queue depth at rejection.
        queued: u64,
        /// Server queue limit.
        limit: u64,
    },
}

/// A connected client.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: BufWriter<Box<dyn Write + Send>>,
    next_id: u64,
    /// The server identity string from the handshake.
    pub server: String,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Client(server={:?})", self.server)
    }
}

impl Client {
    /// Connects and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, or a server speaking a different schema
    /// version.
    pub fn connect(endpoint: &Endpoint, timeout: Duration) -> Result<Client, ClientError> {
        let (read_half, write_half): (Box<dyn Read + Send>, Box<dyn Write + Send>) =
            match endpoint {
                Endpoint::Unix(path) => {
                    let s = UnixStream::connect(path)?;
                    s.set_read_timeout(Some(timeout))?;
                    s.set_write_timeout(Some(timeout))?;
                    (Box::new(s.try_clone()?), Box::new(s))
                }
                Endpoint::Tcp(addr) => {
                    let s = TcpStream::connect(addr.as_str())?;
                    s.set_read_timeout(Some(timeout))?;
                    s.set_write_timeout(Some(timeout))?;
                    s.set_nodelay(true)?;
                    (Box::new(s.try_clone()?), Box::new(s))
                }
            };
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(write_half),
            next_id: 1,
            server: String::new(),
        };
        write_frame(&mut client.writer, &Request::Hello.to_json())?;
        match client.read_response()? {
            Response::HelloOk { server, schema } => {
                if schema != WIRE_SCHEMA_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks wire schema {schema}, this client speaks {WIRE_SCHEMA_VERSION}"
                    )));
                }
                client.server = server;
                Ok(client)
            }
            other => Err(ClientError::Protocol(format!(
                "expected hello_ok, got {other:?}"
            ))),
        }
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let doc = read_frame(&mut self.reader, MAX_FRAME_LEN)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".to_string()))?;
        Response::from_json(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Round-trips a ping.
    ///
    /// # Errors
    ///
    /// Socket failures or an unexpected reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Request::Ping.to_json())?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetches the server's counter snapshot.
    ///
    /// # Errors
    ///
    /// Socket failures or an unexpected reply.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        write_frame(&mut self.writer, &Request::Stats.to_json())?;
        match self.read_response()? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Asks the server to drain and exit. The connection is done after
    /// this.
    ///
    /// # Errors
    ///
    /// Socket failures or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Request::Shutdown.to_json())?;
        match self.read_response()? {
            Response::ShutdownOk => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected shutdown_ok, got {other:?}"
            ))),
        }
    }

    /// Submits a batch of cells and collects the reply stream.
    ///
    /// # Errors
    ///
    /// Socket failures, or a protocol violation in the stream. A full
    /// queue is **not** an error — it comes back as
    /// [`SubmitReply::Overloaded`].
    pub fn submit(
        &mut self,
        cells: &[ExperimentCell],
        verify: bool,
        trace: bool,
    ) -> Result<SubmitReply, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = Request::Submit(SubmitRequest {
            id,
            verify,
            trace,
            cells: cells.to_vec(),
        });
        write_frame(&mut self.writer, &request.to_json())?;
        let (new_jobs, joined_inflight) = match self.read_response()? {
            Response::Accepted {
                id: rid,
                new_jobs,
                joined_inflight,
                ..
            } if rid == id => (new_jobs, joined_inflight),
            Response::Overloaded {
                id: rid,
                queued,
                limit,
            } if rid == id => return Ok(SubmitReply::Overloaded { queued, limit }),
            Response::Error { msg, .. } => return Err(ClientError::Protocol(msg)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected accepted/overloaded for submit {id}, got {other:?}"
                )))
            }
        };
        let mut received: Vec<ReceivedCell> = Vec::with_capacity(cells.len());
        let mut pending_trace: Option<(u64, Vec<WireTraceEvent>)> = None;
        loop {
            match self.read_response()? {
                Response::CellResult {
                    id: rid,
                    index,
                    cell,
                    key,
                    result,
                } if rid == id => {
                    let trace = match pending_trace.take() {
                        Some((tidx, events)) if tidx == index => events,
                        other => {
                            pending_trace = other;
                            Vec::new()
                        }
                    };
                    received.push(ReceivedCell {
                        index,
                        cell,
                        key,
                        outcome: Ok(result),
                        trace,
                    });
                }
                Response::CellError {
                    id: rid,
                    index,
                    cell,
                    msg,
                } if rid == id => {
                    received.push(ReceivedCell {
                        index,
                        cell,
                        key: String::new(),
                        outcome: Err(msg),
                        trace: Vec::new(),
                    });
                }
                Response::TraceEvents {
                    id: rid,
                    index,
                    events,
                } if rid == id => {
                    pending_trace = Some((index, events));
                }
                Response::Done { id: rid } if rid == id => {
                    return Ok(SubmitReply::Completed {
                        new_jobs,
                        joined_inflight,
                        cells: received,
                    });
                }
                Response::Error { msg, .. } => return Err(ClientError::Protocol(msg)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame in submit {id} stream: {other:?}"
                    )))
                }
            }
        }
    }
}
