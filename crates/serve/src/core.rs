//! The serving core: admission control, in-flight deduplication, and
//! batch dispatch into the shared experiment engine.
//!
//! Every connection handler talks to one [`ServeCore`]:
//!
//! * [`ServeCore::submit`] admits a batch of cells under a **bounded
//!   queue** — when admitting would push the queue past its limit the
//!   whole submit is rejected immediately ([`SubmitError::Overloaded`]),
//!   so a burst above capacity costs the client one round-trip, never
//!   the server unbounded memory;
//! * identical in-flight cells are **deduplicated across clients**: a
//!   submit whose cell is already queued or running joins the existing
//!   [`CellJob`] instead of queueing a second compute — N clients
//!   submitting the same cold grid compute each cell exactly once;
//! * a single **dispatcher** ([`ServeCore::run_dispatcher`], one
//!   dedicated thread) drains the queue in batches and executes them
//!   through [`Engine::run_where`], which fans the batch out on the
//!   harness's work-stealing pool and settles hits from the shared
//!   sharded store / disk cache;
//! * [`ServeCore::drain`] implements graceful shutdown: admission stops
//!   ([`SubmitError::Draining`]), queued and running work finishes, and
//!   the dispatcher exits.
//!
//! Completion is broadcast per job via a `Mutex`+`Condvar` pair, so any
//! number of connection handlers can wait on the same cell.

use crate::protocol::{StatsSnapshot, WireTraceEvent};
use bsched_harness::{CellResult, Engine, ExperimentCell};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Serving-core tunables.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum unique jobs waiting in the admission queue. A submit
    /// that would exceed this is rejected whole.
    pub queue_limit: usize,
    /// Maximum cells the dispatcher hands to the engine per batch.
    pub batch_max: usize,
    /// Capture `bsched-trace` events per executed cell and attach them
    /// to jobs so `submit(trace: true)` requests can stream them.
    pub stream_traces: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_limit: 1024,
            batch_max: 64,
            stream_traces: false,
        }
    }
}

/// One deduplicated unit of serving work, shared by every client
/// waiting on it.
#[derive(Debug)]
pub struct CellJob {
    cell: ExperimentCell,
    verify: bool,
    state: Mutex<JobState>,
    done: Condvar,
}

#[derive(Debug, Default)]
struct JobState {
    outcome: Option<Result<CellResult, String>>,
    trace: Vec<WireTraceEvent>,
}

impl CellJob {
    /// The cell this job computes.
    #[must_use]
    pub fn cell(&self) -> &ExperimentCell {
        &self.cell
    }

    /// Blocks until the job completes; returns the outcome and any
    /// captured trace events.
    ///
    /// # Panics
    ///
    /// Panics if the job mutex is poisoned (a dispatcher panic).
    pub fn wait(&self) -> (Result<CellResult, String>, Vec<WireTraceEvent>) {
        let mut st = self.state.lock().expect("job poisoned");
        while st.outcome.is_none() {
            st = self.done.wait(st).expect("job poisoned");
        }
        (
            st.outcome.clone().expect("checked above"),
            st.trace.clone(),
        )
    }

    fn finish(&self, outcome: Result<CellResult, String>, trace: Vec<WireTraceEvent>) {
        let mut st = self.state.lock().expect("job poisoned");
        st.outcome = Some(outcome);
        st.trace = trace;
        drop(st);
        self.done.notify_all();
    }
}

/// Why a submit was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full; nothing was queued.
    Overloaded {
        /// Queue depth at rejection time.
        queued: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The server is draining for shutdown.
    Draining,
}

/// What an admitted submit got.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// One job per submitted cell, in request order. Duplicates within
    /// the request and cells already in flight share `Arc`s.
    pub jobs: Vec<Arc<CellJob>>,
    /// Jobs newly queued by this submit.
    pub new_jobs: u64,
    /// Cells that joined an already in-flight job.
    pub joined_inflight: u64,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Arc<CellJob>>,
    /// Queued *and* running jobs, keyed by `canonical_key#verify`.
    /// Entries leave only when the job finishes, so any concurrent
    /// request for the same cell joins rather than recomputes.
    inflight: HashMap<String, Arc<CellJob>>,
    dispatcher_parked: bool,
}

#[derive(Default)]
struct Counters {
    submits: AtomicU64,
    submitted_cells: AtomicU64,
    joined_inflight: AtomicU64,
    rejected_submits: AtomicU64,
    completed_cells: AtomicU64,
    failed_cells: AtomicU64,
}

/// The shared serving state: one per server process.
pub struct ServeCore {
    engine: Engine,
    cfg: ServeConfig,
    state: Mutex<QueueState>,
    /// Signals the dispatcher that work arrived or draining started.
    work: Condvar,
    /// Signals `drain` waiters that the core went idle.
    idle: Condvar,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    counters: Counters,
}

impl ServeCore {
    /// A core over an engine (the engine brings kernels, cache layers,
    /// and the worker pool).
    #[must_use]
    pub fn new(engine: Engine, cfg: ServeConfig) -> Self {
        ServeCore {
            engine,
            cfg,
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            counters: Counters::default(),
        }
    }

    /// The underlying engine (tests and stats read its report).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn job_key(cell: &ExperimentCell, verify: bool) -> String {
        // Verified and unverified requests for the same cell are
        // distinct jobs: a verifying client must not be handed a result
        // whose conformance suite never ran.
        format!("{}#v{}", cell.canonical_key(), u8::from(verify))
    }

    /// Admits a batch of cells, deduplicating against in-flight work.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when admission would exceed the
    /// queue limit (nothing is queued in that case), or
    /// [`SubmitError::Draining`] during shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the core mutex is poisoned.
    pub fn submit(
        &self,
        cells: &[ExperimentCell],
        verify: bool,
    ) -> Result<SubmitOutcome, SubmitError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(SubmitError::Draining);
        }
        let mut st = self.state.lock().expect("core poisoned");
        // First pass: how many genuinely new jobs would this submit
        // queue? Rejecting *before* creating anything keeps "overloaded"
        // side-effect-free.
        let mut new_keys: Vec<String> = Vec::new();
        for cell in cells {
            let key = ServeCore::job_key(cell, verify);
            if !st.inflight.contains_key(&key) && !new_keys.contains(&key) {
                new_keys.push(key);
            }
        }
        if st.queue.len() + new_keys.len() > self.cfg.queue_limit {
            self.counters.rejected_submits.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Overloaded {
                queued: st.queue.len() as u64,
                limit: self.cfg.queue_limit as u64,
            });
        }
        let mut jobs = Vec::with_capacity(cells.len());
        let mut new_jobs = 0u64;
        let mut joined = 0u64;
        for cell in cells {
            let key = ServeCore::job_key(cell, verify);
            if let Some(job) = st.inflight.get(&key) {
                // Already queued or running. Count a join only when the
                // job came from an *earlier* submit (jobs this request
                // created or already joined are in `jobs`).
                if !jobs.iter().any(|j| Arc::ptr_eq(j, job)) {
                    joined += 1;
                }
                jobs.push(Arc::clone(job));
                continue;
            }
            let job = Arc::new(CellJob {
                cell: cell.clone(),
                verify,
                state: Mutex::new(JobState::default()),
                done: Condvar::new(),
            });
            st.inflight.insert(key, Arc::clone(&job));
            st.queue.push_back(Arc::clone(&job));
            jobs.push(job);
            new_jobs += 1;
        }
        drop(st);
        self.counters.submits.fetch_add(1, Ordering::Relaxed);
        self.counters
            .submitted_cells
            .fetch_add(cells.len() as u64, Ordering::Relaxed);
        self.counters.joined_inflight.fetch_add(joined, Ordering::Relaxed);
        self.work.notify_all();
        Ok(SubmitOutcome {
            jobs,
            new_jobs,
            joined_inflight: joined,
        })
    }

    /// Runs the dispatcher loop until [`ServeCore::drain`] completes.
    /// Call exactly once, on a dedicated thread.
    ///
    /// # Panics
    ///
    /// Panics if the core mutex is poisoned.
    pub fn run_dispatcher(&self) {
        loop {
            let batch: Vec<Arc<CellJob>> = {
                let mut st = self.state.lock().expect("core poisoned");
                loop {
                    if !st.queue.is_empty() {
                        break;
                    }
                    if self.draining.load(Ordering::Acquire) {
                        st.dispatcher_parked = true;
                        drop(st);
                        self.idle.notify_all();
                        return;
                    }
                    st = self.work.wait(st).expect("core poisoned");
                }
                // Drain a batch of jobs sharing one verify flag (the
                // engine verifies per batch).
                let verify = st.queue.front().expect("nonempty").verify;
                let mut batch = Vec::new();
                while batch.len() < self.cfg.batch_max {
                    match st.queue.front() {
                        Some(job) if job.verify == verify => {
                            batch.push(st.queue.pop_front().expect("nonempty"));
                        }
                        _ => break,
                    }
                }
                batch
            };
            self.execute_batch(&batch);
            // Jobs leave the inflight map only now, after completion —
            // a submit arriving mid-execution joins the running job.
            {
                let mut st = self.state.lock().expect("core poisoned");
                for job in &batch {
                    st.inflight.remove(&ServeCore::job_key(&job.cell, job.verify));
                }
                if st.queue.is_empty() && st.inflight.is_empty() {
                    self.idle.notify_all();
                }
            }
        }
    }

    fn execute_batch(&self, batch: &[Arc<CellJob>]) {
        debug_assert!(!batch.is_empty());
        let verify = batch[0].verify;
        let cells: Vec<ExperimentCell> = batch.iter().map(|j| j.cell.clone()).collect();
        let trace_guard = if self.cfg.stream_traces {
            // Start from a clean collector so drained events belong to
            // this batch (the dispatcher is the only drainer), and turn
            // recording on for the batch's pool workers.
            let _ = bsched_trace::drain();
            Some(bsched_trace::enable_scope())
        } else {
            None
        };
        let batch_result = self.engine.run_where(&cells, verify);
        drop(trace_guard);
        let mut trace_by_label: HashMap<String, Vec<WireTraceEvent>> = HashMap::new();
        if self.cfg.stream_traces {
            for event in bsched_trace::drain() {
                trace_by_label
                    .entry(event.label.clone())
                    .or_default()
                    .push(WireTraceEvent::from_event(&event));
            }
        }
        match batch_result {
            Ok(()) => {
                for job in batch {
                    let result = self
                        .engine
                        .result(&job.cell)
                        .expect("run_where populated the store");
                    let trace = trace_by_label.remove(&job.cell.to_string()).unwrap_or_default();
                    self.counters.completed_cells.fetch_add(1, Ordering::Relaxed);
                    job.finish(Ok(result), trace);
                }
            }
            Err(_) => {
                // The batch failed as a unit; re-run cells one by one so
                // each waiting client learns its own cell's fate instead
                // of a neighbour's.
                for job in batch {
                    let outcome = self
                        .engine
                        .run_where(std::slice::from_ref(&job.cell), verify)
                        .map(|()| {
                            self.engine
                                .result(&job.cell)
                                .expect("run_where populated the store")
                        })
                        .map_err(|e| e.to_string());
                    match &outcome {
                        Ok(_) => self.counters.completed_cells.fetch_add(1, Ordering::Relaxed),
                        Err(_) => self.counters.failed_cells.fetch_add(1, Ordering::Relaxed),
                    };
                    job.finish(outcome, Vec::new());
                }
            }
        }
    }

    /// Marks the server as shutting down (set by a `shutdown` request;
    /// the accept loop polls this).
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::Release);
    }

    /// Whether a client asked for shutdown.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Acquire)
    }

    /// Graceful drain: stops admission, waits for every queued and
    /// running job to finish and for the dispatcher to park.
    ///
    /// # Panics
    ///
    /// Panics if the core mutex is poisoned.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.work.notify_all();
        let mut st = self.state.lock().expect("core poisoned");
        while !(st.queue.is_empty() && st.inflight.is_empty() && st.dispatcher_parked) {
            // The dispatcher only parks from its queue-wait loop, so
            // keep nudging it in case it was between batches.
            self.work.notify_all();
            let (guard, _timeout) = self
                .idle
                .wait_timeout(st, std::time::Duration::from_millis(50))
                .expect("core poisoned");
            st = guard;
        }
    }

    /// A counter snapshot for the `stats` frame.
    ///
    /// # Panics
    ///
    /// Panics if the core mutex is poisoned.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        let queue_depth = self.state.lock().expect("core poisoned").queue.len() as u64;
        let report = self.engine.report();
        StatsSnapshot {
            submits: self.counters.submits.load(Ordering::Relaxed),
            submitted_cells: self.counters.submitted_cells.load(Ordering::Relaxed),
            joined_inflight: self.counters.joined_inflight.load(Ordering::Relaxed),
            rejected_submits: self.counters.rejected_submits.load(Ordering::Relaxed),
            completed_cells: self.counters.completed_cells.load(Ordering::Relaxed),
            failed_cells: self.counters.failed_cells.load(Ordering::Relaxed),
            queue_depth,
            queue_limit: self.cfg.queue_limit as u64,
            executed: report.executed,
            memory_hits: report.memory_hits,
            disk_hits: report.disk_hits,
            requested: report.requested,
            verified: report.verified,
            store_hits: self.engine.store().hit_count(),
            store_misses: self.engine.store().miss_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_harness::EngineConfig;
    use bsched_pipeline::{CompileOptions, SchedulerKind};

    fn small_engine() -> Engine {
        // No disk cache: core tests must not leak state between runs.
        Engine::with_standard_kernels(
            EngineConfig::default().with_jobs(2).with_disk_cache(false),
        )
    }

    fn cells(n: usize) -> Vec<ExperimentCell> {
        // n distinct cheap cells over one kernel.
        (0..n)
            .map(|i| {
                let mut o = CompileOptions::new(SchedulerKind::Balanced);
                o.weight_cap = 10 + i as u32; // distinct keys, same work
                ExperimentCell::new("TRFD", o)
            })
            .collect()
    }

    #[test]
    fn overload_rejects_whole_submit_without_side_effects() {
        let core = ServeCore::new(
            small_engine(),
            ServeConfig {
                queue_limit: 4,
                ..ServeConfig::default()
            },
        );
        // Dispatcher not running: the queue cannot drain.
        let err = core.submit(&cells(5), false).unwrap_err();
        assert_eq!(
            err,
            SubmitError::Overloaded {
                queued: 0,
                limit: 4
            }
        );
        assert_eq!(core.stats().queue_depth, 0, "rejection must queue nothing");
        assert_eq!(core.stats().rejected_submits, 1);
        // A submit inside the limit is admitted.
        let ok = core.submit(&cells(4), false).unwrap();
        assert_eq!(ok.new_jobs, 4);
        assert_eq!(core.stats().queue_depth, 4);
        // And the next one overflows (4 + 1 > 4).
        assert!(matches!(
            core.submit(&cells(5), false),
            Err(SubmitError::Overloaded { queued: 4, limit: 4 })
        ));
    }

    #[test]
    fn inflight_submits_dedup_and_all_waiters_complete() {
        let core = Arc::new(ServeCore::new(small_engine(), ServeConfig::default()));
        let grid = cells(6);
        // Two submits of the same grid before the dispatcher starts:
        // the second must join every job of the first.
        let a = core.submit(&grid, false).unwrap();
        let b = core.submit(&grid, false).unwrap();
        assert_eq!(a.new_jobs, 6);
        assert_eq!(a.joined_inflight, 0);
        assert_eq!(b.new_jobs, 0);
        assert_eq!(b.joined_inflight, 6);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert!(Arc::ptr_eq(x, y), "same cell must share one job");
        }

        let dispatcher = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.run_dispatcher())
        };
        for job in a.jobs.iter().chain(&b.jobs) {
            let (outcome, _) = job.wait();
            assert!(outcome.is_ok(), "{outcome:?}");
        }
        // Each cell computed exactly once despite two submitters.
        assert_eq!(core.engine().report().executed, 6);
        assert_eq!(core.stats().joined_inflight, 6);
        core.drain();
        dispatcher.join().unwrap();
    }

    #[test]
    fn duplicate_cells_within_one_submit_share_a_job() {
        let core = ServeCore::new(small_engine(), ServeConfig::default());
        let c = cells(1);
        let doubled = vec![c[0].clone(), c[0].clone(), c[0].clone()];
        let out = core.submit(&doubled, false).unwrap();
        assert_eq!(out.new_jobs, 1);
        assert_eq!(out.jobs.len(), 3);
        assert!(Arc::ptr_eq(&out.jobs[0], &out.jobs[1]));
        assert_eq!(core.stats().queue_depth, 1);
    }

    #[test]
    fn verified_and_unverified_requests_are_distinct_jobs() {
        let core = ServeCore::new(small_engine(), ServeConfig::default());
        let c = cells(1);
        let plain = core.submit(&c, false).unwrap();
        let verified = core.submit(&c, true).unwrap();
        assert!(!Arc::ptr_eq(&plain.jobs[0], &verified.jobs[0]));
        assert_eq!(verified.new_jobs, 1);
    }

    #[test]
    fn drain_rejects_new_submits_and_finishes_queued_work() {
        let core = Arc::new(ServeCore::new(small_engine(), ServeConfig::default()));
        let out = core.submit(&cells(3), false).unwrap();
        let dispatcher = {
            let core = Arc::clone(&core);
            std::thread::spawn(move || core.run_dispatcher())
        };
        core.drain();
        assert!(matches!(
            core.submit(&cells(1), false),
            Err(SubmitError::Draining)
        ));
        for job in &out.jobs {
            let (outcome, _) = job.wait();
            assert!(outcome.is_ok(), "queued work must finish during drain");
        }
        dispatcher.join().unwrap();
    }
}
