//! Metamorphic invariants over simulator output.
//!
//! These are relations that must hold for *every* simulated cell, derived
//! from the timing machine's accounting discipline rather than from any
//! particular expected value:
//!
//! * **Cycle accounting** — every advance of the simulator clock is
//!   either an issue step or lands in exactly one stall counter, so
//!   `stalls + terminators <= cycles <= stalls + dynamic instructions`.
//! * **Cache-stats conservation** — each executed load makes exactly one
//!   hierarchy read (served at L1, L2, L3, memory, or merged into an
//!   outstanding MSHR) and each executed store exactly one write, so the
//!   hierarchy totals must equal the instruction counts, spills included.
//! * **Monotonicity** ([`check_allhit_closeness`]) — when memory always
//!   hits (a first-level cache big enough that only compulsory misses
//!   remain), balanced and traditional weights describe the same machine,
//!   so their cycle counts may differ only by tie-break noise.

use bsched_ir::Program;
use bsched_mem::CacheConfig;
use bsched_pipeline::{CompileOptions, Experiment, PipelineError};
use bsched_sim::{SimConfig, SimMetrics};
use std::fmt;

/// One violated metamorphic invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaViolation {
    /// `cycles` is smaller than the accounted stalls + terminator issues.
    CyclesBelowAccountedFloor {
        /// Total cycles reported.
        cycles: u64,
        /// Sum of every stall counter plus terminator issue steps.
        floor: u64,
    },
    /// `cycles` exceeds what instructions + stalls can explain.
    CyclesAboveAccountedCeiling {
        /// Total cycles reported.
        cycles: u64,
        /// Dynamic instructions plus every stall counter.
        ceiling: u64,
    },
    /// Hierarchy reads+writes disagree with executed loads+stores.
    MemoryAccessesNotConserved {
        /// Hierarchy-side accesses (reads at any level + merges + writes).
        hierarchy: u64,
        /// Instruction-side memory operations (loads + stores + spills).
        instructions: u64,
    },
    /// More prefetched lines were counted useful than were ever issued.
    PrefetchAccountingBroken {
        /// Prefetches issued by the L1D prefetcher.
        prefetches: u64,
        /// Prefetched lines later hit by a demand access.
        useful: u64,
    },
    /// Under all-hit memory, balanced and traditional cycles diverged
    /// beyond tie-break noise.
    AllHitDivergence {
        /// Balanced-schedule cycles.
        balanced: u64,
        /// Traditional-schedule cycles.
        traditional: u64,
        /// The tolerated relative difference.
        tolerance: f64,
    },
}

impl fmt::Display for MetaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaViolation::CyclesBelowAccountedFloor { cycles, floor } => write!(
                f,
                "cycle accounting broken: {cycles} cycles < accounted floor {floor}"
            ),
            MetaViolation::CyclesAboveAccountedCeiling { cycles, ceiling } => write!(
                f,
                "cycle accounting broken: {cycles} cycles > accounted ceiling {ceiling}"
            ),
            MetaViolation::MemoryAccessesNotConserved {
                hierarchy,
                instructions,
            } => write!(
                f,
                "cache stats not conserved: {hierarchy} hierarchy accesses vs \
                 {instructions} executed memory instructions"
            ),
            MetaViolation::PrefetchAccountingBroken { prefetches, useful } => write!(
                f,
                "prefetch accounting broken: {useful} useful prefetches out of only \
                 {prefetches} issued"
            ),
            MetaViolation::AllHitDivergence {
                balanced,
                traditional,
                tolerance,
            } => write!(
                f,
                "all-hit memory: balanced ({balanced}) and traditional ({traditional}) \
                 cycles diverge beyond {:.0}% tie-break noise",
                tolerance * 100.0
            ),
        }
    }
}

/// Sum of every stall counter.
#[must_use]
pub fn stall_sum(m: &SimMetrics) -> u64 {
    m.load_interlock + m.fixed_interlock + m.branch_penalty + m.store_stall + m.fetch_stall
        + m.tlb_stall
}

/// Checks the per-cell invariants (cycle accounting, cache-stats
/// conservation) on one simulated run's metrics.
#[must_use]
pub fn check_metrics(m: &SimMetrics) -> Vec<MetaViolation> {
    let mut violations = Vec::new();
    let stalls = stall_sum(m);
    // Each terminator (branch or jump) advances the clock by one issue
    // step beyond its stalls; block instructions advance it at most once
    // each. Hence: stalls + terminators <= cycles <= stalls + total.
    let floor = stalls + m.insts.branches + m.insts.jumps;
    let ceiling = stalls + m.insts.total();
    if m.cycles < floor {
        violations.push(MetaViolation::CyclesBelowAccountedFloor {
            cycles: m.cycles,
            floor,
        });
    }
    if m.cycles > ceiling {
        violations.push(MetaViolation::CyclesAboveAccountedCeiling {
            cycles: m.cycles,
            ceiling,
        });
    }
    // One hierarchy read per executed load, one write per executed store;
    // the spill counter covers both allocator-inserted restores (loads)
    // and spill stores, so the instruction side is loads+stores+spills.
    let hierarchy = m.mem.total_reads() + m.mem.stores;
    let instructions = m.insts.loads + m.insts.stores + m.insts.spills;
    if hierarchy != instructions {
        violations.push(MetaViolation::MemoryAccessesNotConserved {
            hierarchy,
            instructions,
        });
    }
    // Prefetches ride outside the demand stream (they are deliberately
    // not part of `total_reads`), but a line can only turn useful after
    // being issued.
    if m.mem.prefetch_useful > m.mem.prefetches {
        violations.push(MetaViolation::PrefetchAccountingBroken {
            prefetches: m.mem.prefetches,
            useful: m.mem.prefetch_useful,
        });
    }
    violations
}

/// A machine whose data side always hits: a first-level data cache large
/// and associative enough that nothing ever leaves L1 (compulsory misses
/// aside), with I-fetch modeling off so only the data side is measured.
#[must_use]
pub fn allhit_config() -> SimConfig {
    let mut cfg = SimConfig::alpha21164().with_ifetch(false);
    cfg.mem.l1d = CacheConfig {
        size: 16 * 1024 * 1024,
        line: 32,
        assoc: 4,
        latency: 2,
    };
    cfg.mem.dtb_entries = 4096;
    cfg
}

/// The monotonicity check: compiles `program` with balanced and with
/// traditional weights, runs both on all-hit memory, and requires the
/// cycle counts to agree within `tolerance` (relative). With no variable
/// latency left to hide, the two weight policies describe the same
/// machine and may differ only through tie-breaking.
///
/// # Errors
///
/// Propagates [`PipelineError`]s if either arm fails to compile or run.
pub fn check_allhit_closeness(
    program: &Program,
    tolerance: f64,
) -> Result<Vec<MetaViolation>, PipelineError> {
    let run = |scheduler| -> Result<u64, PipelineError> {
        let session = Experiment::builder()
            .program("allhit", program.clone())
            .compile_options(
                CompileOptions::new(scheduler).with_sim(allhit_config()),
            )
            .build()
            .expect("program is supplied directly");
        Ok(session.run()?.metrics.cycles)
    };
    let balanced = run(bsched_core::SchedulerKind::Balanced)?;
    let traditional = run(bsched_core::SchedulerKind::Traditional)?;
    let max = balanced.max(traditional) as f64;
    let diff = balanced.abs_diff(traditional) as f64;
    let mut violations = Vec::new();
    if max > 0.0 && diff / max > tolerance {
        violations.push(MetaViolation::AllHitDivergence {
            balanced,
            traditional,
            tolerance,
        });
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_sim::InstCounts;

    fn plausible_metrics() -> SimMetrics {
        SimMetrics {
            cycles: 150,
            load_interlock: 20,
            fixed_interlock: 5,
            branch_penalty: 10,
            insts: InstCounts {
                short_int: 50,
                loads: 30,
                stores: 20,
                branches: 10,
                jumps: 5,
                ..InstCounts::default()
            },
            ..SimMetrics::default()
        }
    }

    #[test]
    fn conserved_metrics_pass() {
        let mut m = plausible_metrics();
        m.mem.l1d_hits = 25;
        m.mem.l2_hits = 5;
        m.mem.stores = 20;
        assert_eq!(check_metrics(&m), vec![]);
    }

    #[test]
    fn unconserved_memory_is_caught() {
        let mut m = plausible_metrics();
        m.mem.l1d_hits = 25; // 5 loads vanished
        m.mem.stores = 20;
        let v = check_metrics(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, MetaViolation::MemoryAccessesNotConserved { .. })));
    }

    #[test]
    fn broken_cycle_accounting_is_caught() {
        let mut m = plausible_metrics();
        m.mem.l1d_hits = 30;
        m.mem.stores = 20;
        m.cycles = 10; // below the stall floor
        let v = check_metrics(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, MetaViolation::CyclesBelowAccountedFloor { .. })));
        m.cycles = 100_000; // above instructions + stalls
        let v = check_metrics(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, MetaViolation::CyclesAboveAccountedCeiling { .. })));
    }

    #[test]
    fn broken_prefetch_accounting_is_caught() {
        let mut m = plausible_metrics();
        m.mem.l1d_hits = 30;
        m.mem.stores = 20;
        m.mem.prefetches = 2;
        m.mem.prefetch_useful = 5; // more useful than issued
        let v = check_metrics(&m);
        assert!(v
            .iter()
            .any(|x| matches!(x, MetaViolation::PrefetchAccountingBroken { .. })));
    }

    #[test]
    fn real_simulated_runs_satisfy_the_invariants() {
        let session = Experiment::builder()
            .kernel("TRFD")
            .build()
            .unwrap();
        let run = session.run().unwrap();
        assert_eq!(check_metrics(&run.metrics), vec![]);
    }

    /// The invariants are per-machine properties: every description in
    /// the registry — across predictors, prefetchers, MSHR policies and
    /// issue widths — must satisfy cycle accounting, memory
    /// conservation, and prefetch accounting on a real kernel run.
    #[test]
    fn every_registered_machine_satisfies_the_invariants() {
        for info in bsched_sim::MachineSpec::registry() {
            let machine = bsched_sim::MachineSpec::named(info.name).unwrap();
            let session = Experiment::builder()
                .kernel("TRFD")
                .machine(machine)
                .build()
                .unwrap();
            let run = session.run().unwrap();
            assert!(run.checksum_ok, "{}: simulator diverged", info.name);
            assert_eq!(
                check_metrics(&run.metrics),
                vec![],
                "machine {} violates the per-cell invariants",
                info.name
            );
        }
    }
}
