//! `bsched-verify` — the conformance subsystem: proofs that the numbers
//! in every table came from legal schedules and a sound machine.
//!
//! Four pillars, one per module:
//!
//! * [`legality`] — the schedule-legality validator. Rebuilds each
//!   region's dependence DAG from a [`bsched_core::ScheduleAudit`] and
//!   proves the emitted order is a permutation that respects every
//!   dependence edge and the issue-latency floor.
//! * [`differential`] — the differential oracle. Replays optimized code
//!   through the reference interpreter against the unoptimized baseline,
//!   recomputes scheduler weights with both the bitset kernel and
//!   the retained naive implementation, and simulates the compiled
//!   program under both engines (interpreting and block-compiled),
//!   which must agree bit for bit.
//! * [`metamorphic`] — invariants every simulated run must satisfy:
//!   cycle accounting, cache-stats conservation, and all-hit
//!   balanced/traditional closeness.
//! * [`fuzz`] — a seeded pipeline fuzzer that generates random
//!   loop-language kernels, drives them through the full stack under a
//!   fuel budget, and shrinks failures to minimal reproducers.
//!
//! The harness (`bsched-harness`) calls [`verify_cell`] on every
//! executed grid cell when verification is requested (`--verify` /
//! `BSCHED_VERIFY=1`); violations fail the run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod differential;
pub mod fuzz;
pub mod legality;
pub mod metamorphic;

pub use differential::{
    check_checksum, check_checksum_with_fuel, check_engines, check_sampling, check_weights,
    sampling_rel_err, sampling_violations, DiffViolation, SAMPLING_CPI_MEAN_TOL, SAMPLING_CPI_TOL,
    SAMPLING_FLOOR_FRAC, SAMPLING_MISS_TOL, SAMPLING_STALL_TOL,
};
pub use fuzz::{fuzz, FuzzConfig, FuzzFailure, FuzzReport};
pub use legality::{
    assign_issue_cycles, check_issue_cycles, min_edge_latency, validate_region,
    validate_region_schedule, Violation,
};
pub use metamorphic::{
    allhit_config, check_allhit_closeness, check_metrics, stall_sum, MetaViolation,
};

use bsched_ir::Program;
use bsched_pipeline::{CompileOptions, Experiment};
use bsched_sim::{SampleConfig, SimMetrics};

/// The verdict on one grid cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellVerification {
    /// Scheduling regions whose legality was proven.
    pub regions: usize,
    /// Every violation found, rendered for the report. Empty means the
    /// cell is verified.
    pub violations: Vec<String>,
}

impl CellVerification {
    /// True when no check failed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the full per-cell conformance suite on one (program × options)
/// point: recompile with a schedule audit, prove every region's schedule
/// legal, cross-check the weights against both reference
/// implementations, replay optimized vs unoptimized code through the
/// interpreter, simulate the compiled program under both engines (which
/// must agree bit for bit), and check the metamorphic invariants on
/// `metrics` (the simulated run the caller already has).
#[must_use]
pub fn verify_cell(
    program: &Program,
    options: &CompileOptions,
    metrics: &SimMetrics,
) -> CellVerification {
    let mut regions = 0;
    let mut violations = Vec::new();
    let session = Experiment::builder()
        .program("cell", program.clone())
        .compile_options(*options)
        .build()
        .expect("program is supplied directly");
    match session.compile_audited() {
        Ok((compiled, audit)) => {
            regions = audit.regions.len();
            for (ri, region) in audit.regions.iter().enumerate() {
                for v in legality::validate_region_schedule(region) {
                    violations.push(format!("region {ri}: {v}"));
                }
            }
            for v in differential::check_weights(&audit) {
                violations.push(v.to_string());
            }
            match differential::check_checksum(session.source(), &compiled.program) {
                Ok(vs) => violations.extend(vs.iter().map(ToString::to_string)),
                Err(e) => violations.push(format!("interpreter error: {e}")),
            }
            match differential::check_engines(&compiled.program, options.sim) {
                Ok(vs) => violations.extend(vs.iter().map(ToString::to_string)),
                Err(e) => violations.push(format!("simulator error: {e}")),
            }
        }
        Err(e) => violations.push(format!("audited recompile failed: {e}")),
    }
    violations.extend(
        metamorphic::check_metrics(metrics)
            .iter()
            .map(ToString::to_string),
    );
    // Violations carry trace context: one event per message, so a
    // `--trace-json` export pairs every failure with the pass spans and
    // load-site attribution recorded around it.
    if bsched_trace::enabled() {
        for v in &violations {
            bsched_trace::instant(
                bsched_trace::points::VERIFY_VIOLATION,
                v,
                &[("regions", regions as u64)],
            );
        }
    }
    CellVerification {
        regions,
        violations,
    }
}

/// The sampled-mode counterpart of [`verify_cell`]: proves schedule
/// legality, weights, and the optimized-vs-baseline checksum exactly as
/// the exact path does, then replaces the engine-bit-identity diff with
/// the sampling diff ([`check_sampling`]) — exact-by-construction
/// observables must match bit for bit, estimates must land within the
/// committed tolerances.
///
/// The metamorphic metric checks are deliberately *skipped*: they are
/// exact-accounting identities (cycle accounting, cache conservation)
/// that independently-scaled cluster estimates need not satisfy.
#[must_use]
pub fn verify_cell_sampled(
    program: &Program,
    options: &CompileOptions,
    sample: SampleConfig,
) -> CellVerification {
    let mut regions = 0;
    let mut violations = Vec::new();
    let session = Experiment::builder()
        .program("cell", program.clone())
        .compile_options(*options)
        .build()
        .expect("program is supplied directly");
    match session.compile_audited() {
        Ok((compiled, audit)) => {
            regions = audit.regions.len();
            for (ri, region) in audit.regions.iter().enumerate() {
                for v in legality::validate_region_schedule(region) {
                    violations.push(format!("region {ri}: {v}"));
                }
            }
            for v in differential::check_weights(&audit) {
                violations.push(v.to_string());
            }
            match differential::check_checksum(session.source(), &compiled.program) {
                Ok(vs) => violations.extend(vs.iter().map(ToString::to_string)),
                Err(e) => violations.push(format!("interpreter error: {e}")),
            }
            match differential::check_sampling(&compiled.program, options.sim, sample) {
                Ok(vs) => violations.extend(vs.iter().map(ToString::to_string)),
                Err(e) => violations.push(format!("simulator error: {e}")),
            }
        }
        Err(e) => violations.push(format!("audited recompile failed: {e}")),
    }
    if bsched_trace::enabled() {
        for v in &violations {
            bsched_trace::instant(
                bsched_trace::points::VERIFY_VIOLATION,
                v,
                &[("regions", regions as u64)],
            );
        }
    }
    CellVerification {
        regions,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_core::SchedulerKind;
    use bsched_pipeline::resolve_kernel;

    #[test]
    fn a_real_cell_verifies_clean() {
        let program = resolve_kernel("TRFD").unwrap();
        let options = CompileOptions::new(SchedulerKind::Balanced);
        let session = Experiment::builder()
            .program("TRFD", program.clone())
            .compile_options(options)
            .build()
            .unwrap();
        let run = session.run().unwrap();
        let v = verify_cell(&program, &options, &run.metrics);
        assert!(v.regions > 0);
        assert!(v.is_clean(), "violations: {:#?}", v.violations);
    }

    #[test]
    fn a_real_cell_verifies_clean_under_sampling() {
        let program = resolve_kernel("TRFD").unwrap();
        let options = CompileOptions::new(SchedulerKind::Balanced);
        let v = verify_cell_sampled(&program, &options, SampleConfig::default());
        assert!(v.regions > 0);
        assert!(v.is_clean(), "violations: {:#?}", v.violations);
    }

    #[test]
    fn corrupted_metrics_fail_the_cell() {
        let program = resolve_kernel("TRFD").unwrap();
        let options = CompileOptions::new(SchedulerKind::Balanced);
        let session = Experiment::builder()
            .program("TRFD", program.clone())
            .compile_options(options)
            .build()
            .unwrap();
        let mut metrics = session.run().unwrap().metrics;
        metrics.cycles = 1; // below any plausible accounting floor
        let v = verify_cell(&program, &options, &metrics);
        assert!(!v.is_clean());
    }
}
