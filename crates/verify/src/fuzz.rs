//! A seeded pipeline fuzzer.
//!
//! Each iteration generates a random loop-language kernel, picks a random
//! (optimization level × scheduler × simulation engine × sampling
//! config) point, and pushes the program through the whole stack: compile with a schedule audit,
//! prove every region's schedule legal, cross-check the scheduler weights
//! against both reference implementations, replay optimized vs
//! unoptimized code through the interpreter under a fuel budget,
//! cross-check the two simulation engines against each other, then
//! simulate under the drawn engine and check the metamorphic invariants.
//!
//! Failures shrink greedily — statements are dropped and loop bounds
//! halved while the failure persists — and the minimal reproducer is
//! rendered with [`print_kernel`] so it can be replayed by hand. The
//! whole process is driven by a [`bsched_util::Prng`] stream: the same
//! seed always generates the same kernels, the same grid points, and the
//! same reproducer.

use crate::differential::{check_checksum_with_fuel, check_engines, check_weights};
use crate::legality::validate_region_schedule;
use crate::metamorphic::check_metrics;
use bsched_core::SchedulerKind;
use bsched_pipeline::{
    Experiment, ExperimentBuilder, MachineSpec, OptLevel, SampleConfig, SimEngine, SimMode,
};
use bsched_util::Prng;
use bsched_workloads::lang::{print_kernel, ArrId, ArrayInit, CmpOp, Expr, Index, Kernel, Stmt, VarId};
use std::time::{Duration, Instant};

/// Interpreter fuel for fuzz replays: generated kernels run a few
/// thousand instructions, so this bounds runaway cases tightly without
/// ever tripping on a healthy one.
pub const FUZZ_FUEL: u64 = 2_000_000;

/// Cap on shrink-predicate evaluations per failure, so a pathological
/// case cannot eat the whole fuzz budget.
const SHRINK_BUDGET: usize = 128;

/// Fuzzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Seed of the whole run; equal seeds give equal runs.
    pub seed: u64,
    /// Iterations to attempt.
    pub iterations: u64,
    /// Optional wall-clock budget; the run stops early (reporting the
    /// iterations actually finished) once it is exceeded.
    pub time_budget: Option<Duration>,
}

impl FuzzConfig {
    /// A config with the default iteration count (256) and no time
    /// budget.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FuzzConfig {
            seed,
            iterations: 256,
            time_budget: None,
        }
    }

    /// Sets the iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets a wall-clock budget.
    #[must_use]
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }
}

/// One shrunk failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Iteration (within the run) that produced the failure.
    pub iteration: u64,
    /// The configuration label (`BS+LU4`, …) of the failing cell.
    pub label: String,
    /// Every check message the shrunk case still triggers.
    pub messages: Vec<String>,
    /// The minimal reproducer: a header naming seed/level/scheduler,
    /// followed by the kernel in loop-language syntax.
    pub reproducer: String,
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Iterations actually executed (≤ the configured count when a time
    /// budget intervenes).
    pub iterations: u64,
    /// Shrunk failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

/// A generated case: immutable declarations plus pinned initializer
/// statements, a shrinkable statement tail, and the grid point to
/// compile it at. Shrinking edits only `stmts`; the pinned prefix keeps
/// every float variable initialized before use.
struct Case {
    decls: Kernel,
    pinned: Vec<Stmt>,
    stmts: Vec<Stmt>,
    level: OptLevel,
    scheduler: SchedulerKind,
    engine: SimEngine,
    sample: Option<SampleConfig>,
    /// When set, the cell runs the exact branch-and-bound scheduler arm
    /// with this node budget instead of the drawn heuristic. Budget 0
    /// is deliberately in the pool: it must reproduce the balanced
    /// schedule exactly, so any failure it triggers is a reporting bug.
    exact: Option<u64>,
    /// The machine the cell simulates, drawn uniformly from the
    /// registered zoo so every predictor, prefetcher, MSHR policy and
    /// issue width sees fuzz traffic.
    machine: MachineSpec,
}

impl Case {
    fn kernel(&self) -> Kernel {
        self.kernel_with(&self.stmts)
    }

    fn kernel_with(&self, stmts: &[Stmt]) -> Kernel {
        let mut k = self.decls.clone();
        for s in self.pinned.iter().chain(stmts) {
            k.push(s.clone());
        }
        k
    }
}

/// Everything the expression generator may reference.
struct Scope {
    arrays: Vec<(ArrId, u64)>,
    floats: Vec<VarId>,
}

/// A random in-bounds index over `arr` (size ≥ 16): affine in the
/// innermost loop variable with a small offset, occasionally wrapped in
/// `Dyn` to defeat static reuse classification. Loop bounds never exceed
/// 12 and offsets 2, so every index stays inside the array.
fn gen_index(rng: &mut Prng, loop_vars: &[VarId]) -> Index {
    match loop_vars.last() {
        None => Index::constant(rng.range_i64(0, 8)),
        Some(&v) => {
            if rng.index(4) == 0 {
                Index::Dyn(Box::new(Expr::Var(v)))
            } else {
                Index::of_plus(v, rng.range_i64(0, 3))
            }
        }
    }
}

/// A random float expression of bounded depth.
fn gen_expr(rng: &mut Prng, scope: &Scope, loop_vars: &[VarId], depth: u32) -> Expr {
    if depth == 0 || rng.index(3) == 0 {
        return match rng.index(4) {
            0 => Expr::Float(rng.range_f64(-4.0, 4.0)),
            1 if !scope.floats.is_empty() => Expr::Var(scope.floats[rng.index(scope.floats.len())]),
            2 if !loop_vars.is_empty() => {
                Expr::IntToFloat(Box::new(Expr::Var(loop_vars[rng.index(loop_vars.len())])))
            }
            _ => {
                let (arr, _) = scope.arrays[rng.index(scope.arrays.len())];
                Expr::load(arr, gen_index(rng, loop_vars))
            }
        };
    }
    let a = gen_expr(rng, scope, loop_vars, depth - 1);
    let b = gen_expr(rng, scope, loop_vars, depth - 1);
    match rng.index(6) {
        0 => a + b,
        1 => a - b,
        2 => a * b,
        // Constant positive divisor: no poles, no NaNs.
        3 => Expr::div(a, Expr::Float(rng.range_f64(1.0, 4.0))),
        // sqrt of a square is always defined.
        4 => Expr::sqrt(a.clone() * a),
        _ => Expr::select(
            Expr::cmp(CmpOp::Lt, Expr::Float(0.5), Expr::Float(rng.range_f64(0.0, 1.0))),
            a,
            b,
        ),
    }
}

/// A random statement list for one loop body (or the top level when
/// `loop_vars` is empty).
fn gen_stmts(rng: &mut Prng, scope: &Scope, loop_vars: &[VarId], len: usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let (arr, _) = scope.arrays[rng.index(scope.arrays.len())];
        match rng.index(4) {
            0 if !scope.floats.is_empty() => {
                let var = scope.floats[rng.index(scope.floats.len())];
                out.push(Stmt::AssignVar {
                    var,
                    value: gen_expr(rng, scope, loop_vars, 2),
                });
            }
            1 if !scope.floats.is_empty() && !loop_vars.is_empty() => {
                let var = scope.floats[rng.index(scope.floats.len())];
                let lv = *loop_vars.last().expect("nonempty");
                out.push(Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::Var(lv), Expr::Int(rng.range_i64(1, 8))),
                    then_: vec![Stmt::AssignVar {
                        var,
                        value: gen_expr(rng, scope, loop_vars, 1),
                    }],
                    else_: if rng.coin() {
                        vec![Stmt::AssignVar {
                            var,
                            value: gen_expr(rng, scope, loop_vars, 1),
                        }]
                    } else {
                        vec![]
                    },
                });
            }
            _ => out.push(Stmt::Store {
                arr,
                index: gen_index(rng, loop_vars),
                value: gen_expr(rng, scope, loop_vars, 2),
            }),
        }
    }
    out
}

/// Generates one random case.
fn gen_case(rng: &mut Prng, iteration: u64) -> Case {
    let mut decls = Kernel::new(format!("fuzz_{iteration}"));
    let mut scope = Scope {
        arrays: Vec::new(),
        floats: Vec::new(),
    };
    for ai in 0..rng.range_u64(1, 4) {
        let elems = rng.range_u64(16, 64);
        let init = if rng.coin() {
            ArrayInit::Ramp(rng.range_f64(0.0, 2.0), rng.range_f64(0.1, 1.0))
        } else {
            ArrayInit::Random(rng.next_u64())
        };
        let id = decls.array(format!("a{ai}"), elems, init);
        scope.arrays.push((id, elems));
    }
    let mut pinned = Vec::new();
    for fi in 0..rng.range_u64(1, 3) {
        let id = decls.float_var(format!("s{fi}"));
        scope.floats.push(id);
        pinned.push(Stmt::AssignVar {
            var: id,
            value: Expr::Float(rng.range_f64(-1.0, 1.0)),
        });
    }
    // Loop variables are declared up front so the declaration order (and
    // hence every VarId) is independent of how many loops the generator
    // ends up emitting.
    let loop_vars: Vec<VarId> = (0..6).map(|i| decls.int_var(format!("i{i}"))).collect();
    let mut stmts = Vec::new();
    for li in 0..rng.index(3) + 1 {
        let outer = loop_vars[2 * li];
        let body_len = rng.index(3) + 1;
        let mut body = gen_stmts(rng, &scope, &[outer], body_len);
        if rng.coin() {
            let inner = loop_vars[2 * li + 1];
            let hi = rng.range_i64(2, 13);
            let inner_len = rng.index(3) + 1;
            body.push(Stmt::For {
                var: inner,
                lo: Expr::Int(0),
                hi: Expr::Int(hi),
                step: 1,
                body: gen_stmts(rng, &scope, &[outer, inner], inner_len),
            });
        }
        stmts.push(Stmt::For {
            var: outer,
            lo: Expr::Int(0),
            hi: Expr::Int(rng.range_i64(2, 13)),
            step: 1,
            body,
        });
    }
    let level = OptLevel::ALL[rng.index(OptLevel::ALL.len())];
    let scheduler = SchedulerKind::ALL[rng.index(SchedulerKind::ALL.len())];
    // Drawn last so adding the engine axis left every earlier draw — and
    // hence every kernel a given seed generates — unchanged.
    let engine = SimEngine::ALL[rng.index(SimEngine::ALL.len())];
    // The sampling axis is likewise drawn after everything that came
    // before it. Intervals are kept small so generated kernels (a few
    // thousand dynamic instructions) still produce several of them.
    let sample = if rng.coin() {
        Some(SampleConfig {
            interval: [64, 256, 1024][rng.index(3)],
            k: [1, 2, 4, 8][rng.index(4)],
            reps: [1, 2, 4][rng.index(3)],
            seed: rng.next_u64(),
        })
    } else {
        None
    };
    // The exact-scheduler axis is drawn last (after `sample`) so its
    // addition left every earlier draw — and hence every kernel, grid
    // point, and sampling config a given seed generates — unchanged.
    // Small budgets keep generated-kernel searches cheap while still
    // exercising both the proven and the budget-fallback paths.
    let exact = if rng.index(4) == 0 {
        Some([0u64, 64, 4096][rng.index(3)])
    } else {
        None
    };
    // The machine axis is drawn last (after `exact`) for the same seed-
    // stability reason: adding the zoo left every earlier draw — and
    // hence every kernel and grid point a given seed generates —
    // unchanged. Uniform over the registry, so the default alpha21164
    // and every zoo machine all see traffic.
    let registry = MachineSpec::registry();
    let machine = MachineSpec::named(registry[rng.index(registry.len())].name)
        .expect("registry names parse");
    Case {
        decls,
        pinned,
        stmts,
        level,
        scheduler,
        engine,
        sample,
        exact,
        machine,
    }
}

/// Applies the exact-scheduler axis to a builder: when drawn, the cell
/// compiles under the branch-and-bound arm with the drawn node budget
/// (overriding the heuristic scheduler axis, which still seeded every
/// earlier draw).
fn exact_arm(builder: ExperimentBuilder, exact: Option<u64>) -> ExperimentBuilder {
    match exact {
        Some(budget) => builder.scheduler(SchedulerKind::Exact).exact_budget(budget),
        None => builder,
    }
}

/// Runs every conformance check on one kernel at one grid point,
/// returning human-readable messages for whatever fails.
fn check_kernel(
    kernel: &Kernel,
    level: OptLevel,
    scheduler: SchedulerKind,
    engine: SimEngine,
    sample: Option<SampleConfig>,
    exact: Option<u64>,
    machine: &MachineSpec,
) -> Vec<String> {
    let mut messages = Vec::new();
    let session = match exact_arm(
        Experiment::builder()
            .program(kernel.name(), kernel.lower())
            .opts(level)
            .scheduler(scheduler)
            .engine(engine)
            .machine(machine.clone()),
        exact,
    )
    .build()
    {
        Ok(s) => s,
        Err(e) => return vec![format!("experiment build failed: {e}")],
    };
    let compiled = match session.compile_audited() {
        Ok((compiled, audit)) => {
            for (ri, region) in audit.regions.iter().enumerate() {
                for v in validate_region_schedule(region) {
                    messages.push(format!("region {ri}: {v}"));
                }
            }
            for v in check_weights(&audit) {
                messages.push(v.to_string());
            }
            Some(compiled)
        }
        Err(e) => {
            messages.push(format!("compile failed: {e}"));
            None
        }
    };
    if let Some(compiled) = compiled {
        match check_checksum_with_fuel(session.source(), &compiled.program, FUZZ_FUEL) {
            Ok(vs) => messages.extend(vs.iter().map(ToString::to_string)),
            Err(e) => messages.push(format!("interpreter error: {e}")),
        }
        match check_engines(&compiled.program, session.options().sim) {
            Ok(vs) => messages.extend(vs.iter().map(ToString::to_string)),
            Err(e) => messages.push(format!("simulator error: {e}")),
        }
    }
    let exact_run = match session.run() {
        Ok(run) => {
            messages.extend(check_metrics(&run.metrics).iter().map(ToString::to_string));
            Some(run)
        }
        Err(e) => {
            messages.push(format!("simulated run failed: {e}"));
            None
        }
    };
    if let (Some(sample), Some(baseline)) = (sample, exact_run) {
        // The sampled mode must run wherever the exact mode did, and its
        // functional outcome (instruction counts, checksum) is exact by
        // construction — any divergence is a sampling bug, as is a
        // non-finite estimate (`NonFiniteEstimate`) or nonsensical
        // coverage. Timing *estimates* are not judged here: tolerance
        // bounds belong to the grid regression suite, not to arbitrary
        // generated kernels.
        let sampled_session = exact_arm(
            Experiment::builder()
                .program(kernel.name(), kernel.lower())
                .opts(level)
                .scheduler(scheduler)
                .engine(engine)
                .machine(machine.clone())
                .sim_mode(SimMode::Sampled(sample)),
            exact,
        )
        .build()
        .expect("exact build above succeeded");
        match sampled_session.run() {
            Ok(run) => {
                if run.metrics.insts != baseline.metrics.insts {
                    messages.push(format!(
                        "sampled instruction counts diverged: exact {:?}, sampled {:?}",
                        baseline.metrics.insts, run.metrics.insts
                    ));
                }
                if !run.checksum_ok {
                    messages.push("sampled checksum diverged from the interpreter".to_string());
                }
                match run.sample {
                    None => messages.push("sampled run reported no sample stats".to_string()),
                    Some(stats) => {
                        if stats.clusters == 0
                            || stats.clusters > stats.intervals
                            || stats.sampled_insts > stats.total_insts
                        {
                            messages.push(format!("nonsensical sample stats: {stats:?}"));
                        }
                    }
                }
            }
            Err(e) => messages.push(format!("sampled run failed: {e}")),
        }
    }
    messages
}

/// Every one-edit shrink of a statement list: drop one statement
/// (anywhere in the tree) or halve one loop's constant trip count.
fn shrink_candidates(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        let mut dropped = stmts.to_vec();
        dropped.remove(i);
        out.push(dropped);
        if let Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } = &stmts[i]
        {
            if let Expr::Int(n) = hi {
                if *n > 1 {
                    let mut halved = stmts.to_vec();
                    halved[i] = Stmt::For {
                        var: *var,
                        lo: lo.clone(),
                        hi: Expr::Int(*n / 2),
                        step: *step,
                        body: body.clone(),
                    };
                    out.push(halved);
                }
            }
            for inner in shrink_candidates(body) {
                let mut edited = stmts.to_vec();
                edited[i] = Stmt::For {
                    var: *var,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: *step,
                    body: inner,
                };
                out.push(edited);
            }
        }
    }
    out
}

/// Greedy shrink to a local minimum: keep applying the first one-edit
/// candidate that still fails, within `SHRINK_BUDGET` predicate calls.
fn shrink_stmts(stmts: Vec<Stmt>, still_fails: &mut dyn FnMut(&[Stmt]) -> bool) -> Vec<Stmt> {
    let mut current = stmts;
    let mut budget = SHRINK_BUDGET;
    'outer: loop {
        for candidate in shrink_candidates(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Runs the fuzzer.
#[must_use]
pub fn fuzz(config: &FuzzConfig) -> FuzzReport {
    let start = Instant::now();
    let mut rng = Prng::new(config.seed);
    let mut report = FuzzReport {
        iterations: 0,
        failures: Vec::new(),
    };
    for iteration in 0..config.iterations {
        if let Some(budget) = config.time_budget {
            if start.elapsed() >= budget {
                break;
            }
        }
        // Each case forks the stream so shrinking (which consumes no
        // randomness) can never desynchronize later iterations.
        let mut case_rng = rng.fork();
        let case = gen_case(&mut case_rng, iteration);
        let messages = check_kernel(
            &case.kernel(),
            case.level,
            case.scheduler,
            case.engine,
            case.sample,
            case.exact,
            &case.machine,
        );
        if !messages.is_empty() {
            // Shrinking replays the checks under the case's own engine,
            // sampling config, exact-scheduler axis, and machine, so an
            // axis-specific failure stays reproducible while it shrinks.
            let minimal = shrink_stmts(case.stmts.clone(), &mut |stmts| {
                !check_kernel(
                    &case.kernel_with(stmts),
                    case.level,
                    case.scheduler,
                    case.engine,
                    case.sample,
                    case.exact,
                    &case.machine,
                )
                .is_empty()
            });
            let kernel = case.kernel_with(&minimal);
            let messages = check_kernel(
                &kernel,
                case.level,
                case.scheduler,
                case.engine,
                case.sample,
                case.exact,
                &case.machine,
            );
            let session = exact_arm(
                Experiment::builder()
                    .program(kernel.name(), kernel.lower())
                    .opts(case.level)
                    .scheduler(case.scheduler)
                    .engine(case.engine)
                    .machine(case.machine.clone()),
                case.exact,
            )
            .build()
            .expect("program supplied directly");
            report.failures.push(FuzzFailure {
                iteration,
                label: session.label(),
                messages,
                reproducer: format!(
                    "// seed {:#x} iteration {iteration}: {:?} x {:?} x {} engine{}{} \
                     x machine {}\n{}",
                    config.seed,
                    case.level,
                    case.scheduler,
                    case.engine,
                    match case.sample {
                        Some(s) => format!(" x sample {s}"),
                        None => String::new(),
                    },
                    match case.exact {
                        Some(b) => format!(" x exact budget {b}"),
                        None => String::new(),
                    },
                    case.machine.spec(),
                    print_kernel(&kernel)
                ),
            });
        }
        report.iterations = iteration + 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let k1 = gen_case(&mut Prng::new(42), 7);
        let k2 = gen_case(&mut Prng::new(42), 7);
        assert_eq!(print_kernel(&k1.kernel()), print_kernel(&k2.kernel()));
        assert_eq!(k1.level, k2.level);
        assert_eq!(k1.scheduler, k2.scheduler);
        assert_eq!(k1.engine, k2.engine);
        assert_eq!(k1.sample, k2.sample);
        assert_eq!(k1.exact, k2.exact);
        assert_eq!(k1.machine, k2.machine);
        let k3 = gen_case(&mut Prng::new(43), 7);
        assert_ne!(print_kernel(&k1.kernel()), print_kernel(&k3.kernel()));
    }

    #[test]
    fn machine_axis_covers_the_zoo() {
        let mut rng = Prng::new(0xB5ED_2026);
        let mut names = std::collections::BTreeSet::new();
        for i in 0..32 {
            let mut fork = rng.fork();
            names.insert(gen_case(&mut fork, i).machine.spec().to_string());
        }
        assert!(
            names.len() >= 3,
            "32 draws should cover several zoo machines: {names:?}"
        );
    }

    #[test]
    fn fuzz_runs_are_deterministic_per_seed() {
        let cfg = FuzzConfig::new(0xB5ED).with_iterations(6);
        assert_eq!(fuzz(&cfg), fuzz(&cfg));
    }

    #[test]
    fn healthy_pipeline_survives_a_fuzz_burst() {
        let report = fuzz(&FuzzConfig::new(0xB5ED_0001).with_iterations(12));
        assert_eq!(report.iterations, 12);
        assert!(
            report.failures.is_empty(),
            "unexpected failures: {:#?}",
            report.failures
        );
    }

    #[test]
    fn time_budget_stops_early() {
        let cfg = FuzzConfig::new(1).with_iterations(u64::MAX).with_time_budget(Duration::ZERO);
        let report = fuzz(&cfg);
        assert_eq!(report.iterations, 0);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn shrinking_reaches_a_local_minimum() {
        let mut rng = Prng::new(99);
        let case = gen_case(&mut rng, 0);
        let contains_store = |stmts: &[Stmt]| -> bool {
            fn walk(stmts: &[Stmt]) -> bool {
                stmts.iter().any(|s| match s {
                    Stmt::Store { .. } => true,
                    Stmt::For { body, .. } => walk(body),
                    Stmt::If { then_, else_, .. } => walk(then_) || walk(else_),
                    Stmt::AssignVar { .. } => false,
                })
            }
            walk(stmts)
        };
        // Synthetic oracle: "fails" while any store remains. The shrunk
        // case must still fail and be one-edit minimal.
        if !contains_store(&case.stmts) {
            return; // this seed generated no store; nothing to shrink
        }
        let minimal = shrink_stmts(case.stmts.clone(), &mut |s| contains_store(s));
        assert!(contains_store(&minimal));
        for candidate in shrink_candidates(&minimal) {
            assert!(
                !contains_store(&candidate),
                "a further one-edit shrink still fails: not minimal"
            );
        }
    }
}
