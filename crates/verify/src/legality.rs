//! The schedule-legality validator.
//!
//! Given a region's *pre-schedule* instruction list and the emitted
//! schedule (a claimed permutation of `0..n`), the validator proves three
//! properties, returning a structured [`Violation`] for each breach:
//!
//! 1. **Permutation** — every pre-schedule index appears exactly once.
//! 2. **Dependence order** — for every edge of the dependence DAG
//!    (rebuilt here from the pre-schedule instructions, independently of
//!    whatever DAG the scheduler used), the source is issued before the
//!    target. This is the check that catches a scheduler whose DAG lost
//!    or flipped an edge.
//! 3. **Issue latency** — the minimal in-order issue cycles implied by
//!    the schedule respect every dependence latency, with a load's
//!    latency treated as the *architectural minimum* (the L1-hit
//!    latency): balanced weights may assume more slack, never less.
//!
//! The latency check is split into [`assign_issue_cycles`] (compute the
//! earliest feasible cycles) and [`check_issue_cycles`] (validate an
//! arbitrary cycle assignment), so tests can probe the checker with
//! corrupted assignments directly.

use bsched_core::RegionSchedule;
use bsched_ir::opcode::latency;
use bsched_ir::{Dag, DepKind, Inst};
use std::fmt;

/// One breach of the schedule-legality contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The schedule's length differs from the region's.
    LengthMismatch {
        /// Instructions in the region.
        expected: usize,
        /// Entries in the schedule.
        got: usize,
    },
    /// A pre-schedule index appears twice.
    DuplicateIndex {
        /// The repeated index.
        index: usize,
    },
    /// A schedule entry is not a valid pre-schedule index.
    IndexOutOfRange {
        /// The offending entry.
        index: usize,
        /// The region length.
        len: usize,
    },
    /// A pre-schedule index never appears (an instruction was dropped).
    MissingIndex {
        /// The dropped index.
        index: usize,
    },
    /// A dependence edge is issued backwards.
    DependenceViolated {
        /// Pre-schedule index of the edge source.
        from: usize,
        /// Pre-schedule index of the edge target.
        to: usize,
        /// The dependence kind.
        kind: DepKind,
        /// Issue position of the source.
        pos_from: usize,
        /// Issue position of the target.
        pos_to: usize,
    },
    /// An issue-cycle assignment violates a dependence latency.
    LatencyViolated {
        /// Pre-schedule index of the producer.
        from: usize,
        /// Pre-schedule index of the consumer.
        to: usize,
        /// Minimum cycles the consumer must issue after the producer.
        need: u64,
        /// Cycles actually between them (may be zero).
        got: u64,
    },
    /// Issue cycles are not strictly increasing along the single-issue
    /// schedule.
    IssueOrderViolated {
        /// Issue position at which the cycle failed to advance.
        pos: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LengthMismatch { expected, got } => {
                write!(f, "schedule length {got} != region length {expected}")
            }
            Violation::DuplicateIndex { index } => {
                write!(f, "instruction {index} scheduled twice")
            }
            Violation::IndexOutOfRange { index, len } => {
                write!(f, "schedule entry {index} out of range for region of {len}")
            }
            Violation::MissingIndex { index } => {
                write!(f, "instruction {index} missing from schedule")
            }
            Violation::DependenceViolated {
                from,
                to,
                kind,
                pos_from,
                pos_to,
            } => write!(
                f,
                "{kind:?} dependence {from} -> {to} issued backwards \
                 (positions {pos_from} -> {pos_to})"
            ),
            Violation::LatencyViolated { from, to, need, got } => write!(
                f,
                "latency of dependence {from} -> {to} violated: need {need} cycles, got {got}"
            ),
            Violation::IssueOrderViolated { pos } => {
                write!(f, "issue cycles not strictly increasing at position {pos}")
            }
        }
    }
}

/// The minimum cycles a consumer must wait on `producer` through a
/// dependence of `kind`. Data dependences carry the producer's latency —
/// for loads the *architectural minimum* (L1-hit latency), since no
/// schedule may assume a load resolves faster than a hit. Anti, output,
/// memory-ordering and compiler-ordering arcs only require issue order.
#[must_use]
pub fn min_edge_latency(producer: &Inst, kind: DepKind) -> u64 {
    match kind {
        DepKind::Data => {
            if producer.op.is_load() {
                u64::from(latency::LOAD_HIT)
            } else {
                u64::from(producer.op.latency())
            }
        }
        DepKind::Anti | DepKind::Output | DepKind::Mem | DepKind::Order => 1,
    }
}

/// Validates that `order` is a legal schedule of `insts` under `dag`.
///
/// Returns every violation found (empty = legal). If the permutation
/// check fails, the dependence and latency checks are skipped — they
/// would read through the broken index map.
#[must_use]
pub fn validate_region(insts: &[Inst], dag: &Dag, order: &[usize]) -> Vec<Violation> {
    let n = insts.len();
    let mut violations = Vec::new();
    if order.len() != n {
        violations.push(Violation::LengthMismatch {
            expected: n,
            got: order.len(),
        });
    }
    let mut pos = vec![usize::MAX; n];
    for (k, &i) in order.iter().enumerate() {
        if i >= n {
            violations.push(Violation::IndexOutOfRange { index: i, len: n });
        } else if pos[i] != usize::MAX {
            violations.push(Violation::DuplicateIndex { index: i });
        } else {
            pos[i] = k;
        }
    }
    for (i, &p) in pos.iter().enumerate() {
        if p == usize::MAX {
            violations.push(Violation::MissingIndex { index: i });
        }
    }
    if !violations.is_empty() {
        return violations;
    }

    // 2. Every dependence edge respects issue order.
    for i in 0..n {
        for &(t, kind) in dag.succs(i) {
            let t = t as usize;
            if pos[i] >= pos[t] {
                violations.push(Violation::DependenceViolated {
                    from: i,
                    to: t,
                    kind,
                    pos_from: pos[i],
                    pos_to: pos[t],
                });
            }
        }
    }
    if !violations.is_empty() {
        return violations;
    }

    // 3. The minimal in-order issue cycles meet every latency constraint.
    let cycles = assign_issue_cycles(insts, dag, order);
    violations.extend(check_issue_cycles(insts, dag, order, &cycles));
    violations
}

/// The earliest feasible single-issue cycle for each schedule position:
/// one instruction per cycle, and no instruction before its operands'
/// minimum-latency ready time. Indexed by *schedule position*.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the region (validate the
/// permutation first).
#[must_use]
pub fn assign_issue_cycles(insts: &[Inst], dag: &Dag, order: &[usize]) -> Vec<u64> {
    let n = insts.len();
    assert_eq!(order.len(), n, "order must be a permutation of the region");
    let mut issue_of = vec![0u64; n]; // by pre-schedule index
    let mut cycles = Vec::with_capacity(n);
    let mut clock: u64 = 0;
    for (k, &i) in order.iter().enumerate() {
        let mut at = if k == 0 { 0 } else { clock + 1 };
        for &(p, kind) in dag.preds(i) {
            let p = p as usize;
            at = at.max(issue_of[p] + min_edge_latency(&insts[p], kind));
        }
        issue_of[i] = at;
        clock = at;
        cycles.push(at);
    }
    cycles
}

/// Checks an arbitrary issue-cycle assignment (indexed by schedule
/// position) against the region's dependence latencies and single-issue
/// order. [`validate_region`] feeds it the minimal assignment; tests can
/// feed corrupted ones.
#[must_use]
pub fn check_issue_cycles(
    insts: &[Inst],
    dag: &Dag,
    order: &[usize],
    cycles: &[u64],
) -> Vec<Violation> {
    let n = insts.len();
    let mut violations = Vec::new();
    let mut issue_of = vec![0u64; n];
    for (k, &i) in order.iter().enumerate() {
        issue_of[i] = cycles[k];
        if k > 0 && cycles[k] <= cycles[k - 1] {
            violations.push(Violation::IssueOrderViolated { pos: k });
        }
    }
    for i in 0..n {
        for &(t, kind) in dag.succs(i) {
            let t = t as usize;
            let need = min_edge_latency(&insts[i], kind);
            let got = issue_of[t].saturating_sub(issue_of[i]);
            if got < need {
                violations.push(Violation::LatencyViolated {
                    from: i,
                    to: t,
                    need,
                    got,
                });
            }
        }
    }
    violations
}

/// Validates one audited region: rebuilds the dependence DAG from the
/// pre-schedule instructions and checks the emitted order against it.
#[must_use]
pub fn validate_region_schedule(region: &RegionSchedule) -> Vec<Violation> {
    let dag = Dag::new(&region.insts);
    validate_region(&region.insts, &dag, &region.order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{DagBuilder, Op, Reg, RegClass, RegionId};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn f(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    /// load -> dependent fadd, plus one independent fmul.
    fn region() -> Vec<Inst> {
        vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::op(Op::FAdd, f(1), &[f(0), f(0)]),
            Inst::op(Op::FMul, f(2), &[f(5), f(6)]),
        ]
    }

    #[test]
    fn legal_schedules_pass() {
        let insts = region();
        let dag = Dag::new(&insts);
        for order in [vec![0, 1, 2], vec![0, 2, 1], vec![2, 0, 1]] {
            assert_eq!(validate_region(&insts, &dag, &order), vec![]);
        }
    }

    #[test]
    fn consumer_before_producer_is_caught() {
        let insts = region();
        let dag = Dag::new(&insts);
        let violations = validate_region(&insts, &dag, &[1, 0, 2]);
        assert!(matches!(
            violations[0],
            Violation::DependenceViolated {
                from: 0,
                to: 1,
                kind: DepKind::Data,
                ..
            }
        ));
    }

    #[test]
    fn broken_permutations_are_caught() {
        let insts = region();
        let dag = Dag::new(&insts);
        let v = validate_region(&insts, &dag, &[0, 1]);
        assert!(v.contains(&Violation::LengthMismatch { expected: 3, got: 2 }));
        let v = validate_region(&insts, &dag, &[0, 1, 1]);
        assert!(v.contains(&Violation::DuplicateIndex { index: 1 }));
        assert!(v.contains(&Violation::MissingIndex { index: 2 }));
        let v = validate_region(&insts, &dag, &[0, 1, 9]);
        assert!(v.contains(&Violation::IndexOutOfRange { index: 9, len: 3 }));
    }

    #[test]
    fn flipped_dependence_edge_is_caught() {
        // A deliberately broken scheduler: its DAG lost the load's data
        // edge (a flipped edge bit), replaced by a spurious arc elsewhere.
        // With the consumer's weight boosted, the real list scheduler now
        // happily issues the consumer before the load. The validator,
        // rebuilding the true DAG from the pre-schedule instructions,
        // rejects the emitted order.
        let insts = region();
        let mut broken = DagBuilder::empty(insts.len());
        broken.add_edge(1, 2, DepKind::Data); // flipped/garbled edge set
        let broken = broken.build();
        let order = bsched_core::schedule_region(&insts, &broken, &[1, 50, 1]);
        assert_eq!(order[0], 1, "the broken DAG schedules the consumer first");
        let dag = Dag::new(&insts);
        let violations = validate_region(&insts, &dag, &order);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::DependenceViolated { from: 0, to: 1, .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn issue_cycles_respect_load_hit_minimum() {
        let insts = region();
        let dag = Dag::new(&insts);
        let order = vec![0, 2, 1];
        let cycles = assign_issue_cycles(&insts, &dag, &order);
        // Load at 0; independent fmul next cycle; consumer no earlier
        // than the L1-hit latency after the load.
        assert_eq!(cycles[0], 0);
        assert_eq!(cycles[1], 1);
        assert!(cycles[2] >= u64::from(latency::LOAD_HIT));
        assert_eq!(check_issue_cycles(&insts, &dag, &order, &cycles), vec![]);
    }

    #[test]
    fn corrupt_issue_cycles_are_caught() {
        let insts = region();
        let dag = Dag::new(&insts);
        let order = vec![0, 1, 2];
        // Consumer issued the cycle after the load: below the hit latency.
        let v = check_issue_cycles(&insts, &dag, &order, &[0, 1, 2]);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::LatencyViolated { from: 0, to: 1, .. })));
        // Non-increasing cycles.
        let v = check_issue_cycles(&insts, &dag, &order, &[0, 5, 5]);
        assert!(v.contains(&Violation::IssueOrderViolated { pos: 2 }));
    }

    #[test]
    fn violations_render_readably() {
        let v = Violation::DependenceViolated {
            from: 3,
            to: 7,
            kind: DepKind::Mem,
            pos_from: 9,
            pos_to: 2,
        };
        let s = v.to_string();
        assert!(s.contains("3 -> 7") && s.contains("Mem"), "{s}");
    }
}
