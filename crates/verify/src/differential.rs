//! The differential oracle: compare the optimized pipeline's observable
//! behaviour against independent reference implementations.
//!
//! Two diffs run per cell:
//!
//! * **Checksum** — the compiled (optimized, scheduled, allocated)
//!   program is replayed through `ir::interp` and its memory-image
//!   checksum compared against the *unoptimized* source program's. This
//!   repeats, from outside, the cross-check the pipeline performs
//!   internally — an independent replay that a pipeline bug cannot
//!   silently skip.
//! * **Weights** — every audited region's weight vector is recomputed
//!   with both the bitset kernel ([`bsched_core::compute_weights`]) and
//!   the retained naive reference
//!   ([`bsched_core::compute_weights_reference`]); all three must agree
//!   bit for bit.
//! * **Engines** — the compiled program is simulated under both
//!   [`SimEngine`]s; metrics and checksum must be bit-identical
//!   ([`check_engines`]).
//! * **Sampling** — the compiled program is simulated exactly and under
//!   [`SimMode::Sampled`]; the exact-by-construction observables
//!   (instruction counts, checksum) must match bit for bit and the
//!   estimated cycle-level metrics must land within committed relative
//!   tolerances of the exact oracle ([`check_sampling`]).

use bsched_core::{compute_weights, compute_weights_reference, ScheduleAudit};
use bsched_ir::{Dag, ExecError, Interp, Program};
use bsched_sim::{MachineSpec, SampleConfig, SimConfig, SimEngine, SimMetrics, SimMode, SimResult, Simulator};
use std::fmt;

/// Per-cell tolerance on the sampled CPI (cycles) estimate, as a
/// fraction of the exact value. This is the *max* bound of the paper
/// harness's acceptance criteria; the ≤ 2 % *mean* bound
/// ([`SAMPLING_CPI_MEAN_TOL`]) is enforced over whole sweeps by the
/// error-bound suite and `benches/sampling.rs`.
pub const SAMPLING_CPI_TOL: f64 = 0.05;
/// Sweep-wide mean tolerance on the sampled CPI estimate.
pub const SAMPLING_CPI_MEAN_TOL: f64 = 0.02;
/// Per-cell tolerance on the load-interlock stall estimate.
pub const SAMPLING_STALL_TOL: f64 = 0.15;
/// Per-cell tolerance on the L1D-miss estimate.
pub const SAMPLING_MISS_TOL: f64 = 0.15;
/// Denominator floor for stall and miss errors, as a fraction of the
/// run's overall magnitude (exact cycles for stalls, total reads for
/// misses). A stall estimate that is off by its own relative 50 % but by
/// under 1 % of total cycles cannot move any conclusion drawn from the
/// run; flooring the denominator keeps such noise from failing cells.
pub const SAMPLING_FLOOR_FRAC: f64 = 0.01;

/// Relative error of `estimated` against `exact` with the denominator
/// floored at `floor` (see [`SAMPLING_FLOOR_FRAC`]).
#[must_use]
pub fn sampling_rel_err(estimated: u64, exact: u64, floor: u64) -> f64 {
    let denom = exact.max(floor).max(1) as f64;
    (estimated as f64 - exact as f64).abs() / denom
}

/// One differential divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffViolation {
    /// The compiled program's memory image differs from the unoptimized
    /// baseline's.
    ChecksumDiverged {
        /// FNV-1a checksum of the baseline (source) memory image.
        baseline: u64,
        /// FNV-1a checksum of the compiled program's memory image.
        compiled: u64,
    },
    /// The two simulation engines disagree on the same compiled program
    /// (they must be bit-identical in every observable).
    EngineDiverged {
        /// The first observable that diverged (`"checksum"`, `"cycles"`,
        /// `"mem"`, …).
        field: &'static str,
        /// Its value under [`SimEngine::Interpret`], `Debug`-rendered.
        interpret: String,
        /// Its value under [`SimEngine::BlockCompiled`], `Debug`-rendered.
        block: String,
    },
    /// A sampled run diverged on an observable that sampling derives
    /// from an exact functional pass (instruction counts, checksum) —
    /// those must match bit for bit, tolerance does not apply.
    SamplingExactnessDiverged {
        /// The diverging observable (`"insts"`, `"checksum"`).
        field: &'static str,
        /// The exact engine's value, `Debug`-rendered.
        exact: String,
        /// The sampled run's value, `Debug`-rendered.
        sampled: String,
    },
    /// A sampled estimate strayed outside its committed tolerance of the
    /// exact oracle. Errors are stored in per-mille so the variant stays
    /// `Eq` (reports and the fuzzer dedup violations by equality).
    SamplingOutOfTolerance {
        /// The estimated metric (`"cpi"`, `"load_interlock"`,
        /// `"l1d_misses"`).
        metric: &'static str,
        /// The exact engine's value.
        exact: u64,
        /// The sampled estimate.
        estimated: u64,
        /// Relative error in per-mille, after denominator flooring.
        err_permille: u64,
        /// The tolerance it exceeded, in per-mille.
        tol_permille: u64,
    },
    /// A region's scheduler weights disagree with a reference
    /// recomputation.
    WeightsDiverged {
        /// Index of the region in the audit.
        region: usize,
        /// First instruction index whose weight differs.
        index: usize,
        /// The weight the scheduler used.
        scheduled: u32,
        /// The weight the bitset kernel recomputes.
        kernel: u32,
        /// The weight the naive reference computes.
        reference: u32,
    },
}

impl fmt::Display for DiffViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffViolation::ChecksumDiverged { baseline, compiled } => write!(
                f,
                "compiled program diverged from the unoptimized baseline: \
                 checksum {compiled:#018x} vs {baseline:#018x}"
            ),
            DiffViolation::EngineDiverged {
                field,
                interpret,
                block,
            } => write!(
                f,
                "simulation engines diverged on {field}: \
                 interpret produced {interpret}, block produced {block}"
            ),
            DiffViolation::SamplingExactnessDiverged {
                field,
                exact,
                sampled,
            } => write!(
                f,
                "sampled run diverged on exact-by-construction {field}: \
                 sampled produced {sampled}, exact engine {exact}"
            ),
            DiffViolation::SamplingOutOfTolerance {
                metric,
                exact,
                estimated,
                err_permille,
                tol_permille,
            } => write!(
                f,
                "sampled {metric} estimate out of tolerance: {estimated} vs \
                 exact {exact} ({err_permille}\u{2030} > {tol_permille}\u{2030} allowed)"
            ),
            DiffViolation::WeightsDiverged {
                region,
                index,
                scheduled,
                kernel,
                reference,
            } => write!(
                f,
                "weights diverged in region {region} at instruction {index}: \
                 scheduled with {scheduled}, kernel recomputes {kernel}, \
                 naive reference {reference}"
            ),
        }
    }
}

/// Replays both programs through the reference interpreter and compares
/// final memory checksums.
///
/// # Errors
///
/// Propagates [`ExecError`]s if either program fails to execute.
pub fn check_checksum(
    baseline: &Program,
    compiled: &Program,
) -> Result<Vec<DiffViolation>, ExecError> {
    check_checksum_with_fuel(baseline, compiled, Interp::DEFAULT_FUEL)
}

/// [`check_checksum`] under an explicit instruction budget — the fuzzer
/// uses a tight budget so a runaway generated program fails fast.
///
/// # Errors
///
/// Propagates [`ExecError`]s (including fuel exhaustion) if either
/// program fails to execute.
pub fn check_checksum_with_fuel(
    baseline: &Program,
    compiled: &Program,
    fuel: u64,
) -> Result<Vec<DiffViolation>, ExecError> {
    let base = Interp::new(baseline).with_fuel(fuel).run()?;
    let comp = Interp::new(compiled).with_fuel(fuel).run()?;
    let mut violations = Vec::new();
    if base.checksum != comp.checksum {
        violations.push(DiffViolation::ChecksumDiverged {
            baseline: base.checksum,
            compiled: comp.checksum,
        });
    }
    Ok(violations)
}

/// Simulates `compiled` under both engines and reports any observable
/// divergence. The engines must agree bit for bit on every metric and
/// on the final memory checksum; the first differing field is reported
/// (one violation keeps reports readable — the engines either agree
/// everywhere or have a structural bug).
///
/// # Errors
///
/// Propagates [`ExecError`]s if either engine fails to execute. An
/// *asymmetric* failure (one engine errors, the other does not) is
/// itself a divergence, reported as a violation rather than an error.
pub fn check_engines(
    compiled: &Program,
    config: SimConfig,
) -> Result<Vec<DiffViolation>, ExecError> {
    let machine = MachineSpec::custom(config);
    let run = |engine| {
        Simulator::for_machine(compiled, &machine)
            .with_engine(engine)
            .run()
    };
    let (interp, block) = match (run(SimEngine::Interpret), run(SimEngine::BlockCompiled)) {
        (Ok(i), Ok(b)) => (i, b),
        (Err(e), Err(_)) => return Err(e),
        (i, b) => {
            let render = |r: &Result<_, ExecError>| match r {
                Ok(_) => "success".to_string(),
                Err(e) => format!("error ({e})"),
            };
            return Ok(vec![DiffViolation::EngineDiverged {
                field: "outcome",
                interpret: render(&i),
                block: render(&b),
            }]);
        }
    };
    let mut violations = Vec::new();
    if let Some((field, iv, bv)) = first_metric_diff(&interp.metrics, &block.metrics) {
        violations.push(DiffViolation::EngineDiverged {
            field,
            interpret: iv,
            block: bv,
        });
    } else if interp.checksum != block.checksum {
        violations.push(DiffViolation::EngineDiverged {
            field: "checksum",
            interpret: format!("{:#018x}", interp.checksum),
            block: format!("{:#018x}", block.checksum),
        });
    }
    Ok(violations)
}

/// Simulates `compiled` exactly (block engine) and under
/// [`SimMode::Sampled`] and reports any divergence: the
/// exact-by-construction observables (instruction counts, checksum)
/// must be bit-identical, and each estimated metric must land within
/// its committed tolerance ([`SAMPLING_CPI_TOL`],
/// [`SAMPLING_STALL_TOL`], [`SAMPLING_MISS_TOL`]) of the exact oracle.
///
/// # Errors
///
/// Propagates [`ExecError`]s if the exact run fails. A *sampled-only*
/// failure (exact succeeds, the estimator errors — e.g.
/// [`ExecError::NonFiniteEstimate`]) is itself a divergence, reported
/// as a violation rather than an error.
pub fn check_sampling(
    compiled: &Program,
    config: SimConfig,
    sample: SampleConfig,
) -> Result<Vec<DiffViolation>, ExecError> {
    let machine = MachineSpec::custom(config);
    let run = |mode| {
        Simulator::for_machine(compiled, &machine)
            .with_engine(SimEngine::BlockCompiled)
            .with_mode(mode)
            .run()
    };
    let exact = run(SimMode::Exact)?;
    let sampled = match run(SimMode::Sampled(sample)) {
        Ok(s) => s,
        Err(e) => {
            return Ok(vec![DiffViolation::SamplingExactnessDiverged {
                field: "outcome",
                exact: "success".to_string(),
                sampled: format!("error ({e})"),
            }])
        }
    };
    Ok(sampling_violations(&exact, &sampled))
}

/// The comparison behind [`check_sampling`], on runs the caller already
/// has (the error-bound suite reuses its oracle runs).
#[must_use]
pub fn sampling_violations(exact: &SimResult, sampled: &SimResult) -> Vec<DiffViolation> {
    let mut violations = Vec::new();
    if exact.metrics.insts != sampled.metrics.insts {
        violations.push(DiffViolation::SamplingExactnessDiverged {
            field: "insts",
            exact: format!("{:?}", exact.metrics.insts),
            sampled: format!("{:?}", sampled.metrics.insts),
        });
    }
    if exact.checksum != sampled.checksum {
        violations.push(DiffViolation::SamplingExactnessDiverged {
            field: "checksum",
            exact: format!("{:#018x}", exact.checksum),
            sampled: format!("{:#018x}", sampled.checksum),
        });
    }

    let permille = |x: f64| (x * 1000.0).ceil() as u64;
    let mut tol_check = |metric, est: u64, ex: u64, floor: u64, tol: f64| {
        let err = sampling_rel_err(est, ex, floor);
        if err > tol {
            violations.push(DiffViolation::SamplingOutOfTolerance {
                metric,
                exact: ex,
                estimated: est,
                err_permille: permille(err),
                tol_permille: permille(tol),
            });
        }
    };
    let cycles_floor = (exact.metrics.cycles as f64 * SAMPLING_FLOOR_FRAC) as u64;
    let reads = exact.metrics.mem.total_reads();
    let reads_floor = (reads as f64 * SAMPLING_FLOOR_FRAC) as u64;
    tol_check(
        "cpi",
        sampled.metrics.cycles,
        exact.metrics.cycles,
        1,
        SAMPLING_CPI_TOL,
    );
    tol_check(
        "load_interlock",
        sampled.metrics.load_interlock,
        exact.metrics.load_interlock,
        cycles_floor,
        SAMPLING_STALL_TOL,
    );
    let misses = |r: &SimResult| r.metrics.mem.total_reads() - r.metrics.mem.l1d_hits;
    tol_check(
        "l1d_misses",
        misses(sampled),
        misses(exact),
        reads_floor,
        SAMPLING_MISS_TOL,
    );
    violations
}

/// The first field of [`SimMetrics`] on which the two runs disagree.
fn first_metric_diff(i: &SimMetrics, b: &SimMetrics) -> Option<(&'static str, String, String)> {
    macro_rules! diff {
        ($($field:ident),+ $(,)?) => {
            $(if i.$field != b.$field {
                return Some((
                    stringify!($field),
                    format!("{:?}", i.$field),
                    format!("{:?}", b.$field),
                ));
            })+
        };
    }
    diff!(
        cycles,
        insts,
        load_interlock,
        fixed_interlock,
        branch_penalty,
        store_stall,
        fetch_stall,
        tlb_stall,
        mem,
    );
    None
}

/// Recomputes every audited region's weights with both implementations
/// and reports any disagreement with the weights the scheduler ran on.
#[must_use]
pub fn check_weights(audit: &ScheduleAudit) -> Vec<DiffViolation> {
    let mut violations = Vec::new();
    for (ri, region) in audit.regions.iter().enumerate() {
        let dag = Dag::new(&region.insts);
        let kernel = compute_weights(&region.insts, &dag, &audit.config);
        let reference = compute_weights_reference(&region.insts, &dag, &audit.config);
        for (i, &w) in region.weights.iter().enumerate() {
            if w != kernel[i] || w != reference[i] {
                violations.push(DiffViolation::WeightsDiverged {
                    region: ri,
                    index: i,
                    scheduled: w,
                    kernel: kernel[i],
                    reference: reference[i],
                });
                break; // one per region keeps reports readable
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_core::{RegionSchedule, SchedulerKind, TieBreak, WeightConfig};
    use bsched_ir::{Inst, Op, Reg, RegClass, RegionId};
    use bsched_pipeline::Experiment;

    #[test]
    fn identical_programs_have_no_checksum_diff() {
        let session = Experiment::builder().kernel("TRFD").build().unwrap();
        let compiled = session.compile().unwrap();
        let v = check_checksum(session.source(), &compiled.program).unwrap();
        assert_eq!(v, vec![]);
    }

    #[test]
    fn engines_agree_on_a_real_cell() {
        let session = Experiment::builder().kernel("TRFD").build().unwrap();
        let compiled = session.compile().unwrap();
        let v = check_engines(&compiled.program, session.options().sim).unwrap();
        assert_eq!(v, vec![]);
    }

    #[test]
    fn sampling_within_tolerance_on_a_real_cell() {
        let session = Experiment::builder().kernel("TRFD").build().unwrap();
        let compiled = session.compile().unwrap();
        let v = check_sampling(
            &compiled.program,
            session.options().sim,
            SampleConfig::default(),
        )
        .unwrap();
        assert_eq!(v, vec![]);
    }

    #[test]
    fn out_of_tolerance_estimates_are_reported() {
        let session = Experiment::builder().kernel("TRFD").build().unwrap();
        let compiled = session.compile().unwrap();
        let exact = Simulator::for_machine(&compiled.program, &MachineSpec::custom(session.options().sim))
            .run()
            .unwrap();
        // A fabricated estimate 10 % high on cycles and bit-wrong on the
        // checksum: both must surface, with the error in per-mille.
        let mut fake = exact.clone();
        fake.metrics.cycles += exact.metrics.cycles / 10;
        fake.checksum ^= 1;
        let v = sampling_violations(&exact, &fake);
        assert!(v.iter().any(|d| matches!(
            d,
            DiffViolation::SamplingExactnessDiverged {
                field: "checksum",
                ..
            }
        )));
        let cpi = v
            .iter()
            .find_map(|d| match d {
                DiffViolation::SamplingOutOfTolerance {
                    metric: "cpi",
                    err_permille,
                    tol_permille,
                    ..
                } => Some((*err_permille, *tol_permille)),
                _ => None,
            })
            .expect("10% CPI error exceeds the 5% tolerance");
        assert!(cpi.0 > cpi.1);
        assert_eq!(cpi.1, (SAMPLING_CPI_TOL * 1000.0).ceil() as u64);

        // And the floor: a stall estimate off by 100% of a value that is
        // well under 1% of total cycles is noise, not a violation.
        let mut small = exact.clone();
        small.metrics.load_interlock = exact.metrics.cycles / 2000;
        let mut est = small.clone();
        est.metrics.load_interlock *= 2;
        assert_eq!(sampling_violations(&small, &est), vec![]);
    }

    #[test]
    fn metric_diff_names_the_first_diverging_field() {
        let a = bsched_sim::SimMetrics::default();
        let mut b = a.clone();
        b.load_interlock = 7;
        let (field, iv, bv) = first_metric_diff(&a, &b).unwrap();
        assert_eq!(field, "load_interlock");
        assert_eq!((iv.as_str(), bv.as_str()), ("0", "7"));
        assert_eq!(first_metric_diff(&a, &a.clone()), None);
    }

    #[test]
    fn audited_weights_agree_with_both_implementations() {
        let session = Experiment::builder().kernel("TRFD").build().unwrap();
        let (_, audit) = session.compile_audited().unwrap();
        assert!(!audit.regions.is_empty());
        assert_eq!(check_weights(&audit), vec![]);
    }

    #[test]
    fn corrupted_weights_are_caught() {
        let r = |n| Reg::virt(RegClass::Int, n);
        let f = |n| Reg::virt(RegClass::Float, n);
        let insts = vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::op(Op::FAdd, f(1), &[f(0), f(0)]),
            Inst::op(Op::FMul, f(2), &[f(5), f(6)]),
        ];
        let config = WeightConfig::new(SchedulerKind::Balanced);
        let dag = Dag::new(&insts);
        let mut weights = compute_weights(&insts, &dag, &config);
        weights[0] += 1; // a corrupted weight vector
        let audit = ScheduleAudit {
            config,
            tie_break: TieBreak::Standard,
            regions: vec![RegionSchedule {
                block: 0,
                insts,
                weights,
                order: vec![0, 1, 2],
            }],
            exact: Default::default(),
        };
        let v = check_weights(&audit);
        assert!(matches!(
            v.as_slice(),
            [DiffViolation::WeightsDiverged {
                region: 0,
                index: 0,
                ..
            }]
        ));
    }
}
