//! Exact-scheduler conformance over the real kernel suite.
//!
//! The property tests in `bsched-core` prove the branch-and-bound
//! search optimal on small random DAGs; this suite points the same arm
//! at every paper kernel and holds it to the pipeline's contracts: all
//! emitted schedules are legal, the weight audit still reconciles, the
//! searched cost never exceeds the balanced seed, and a zero node
//! budget degenerates to exactly the balanced compile.

use bsched_core::SchedulerKind;
use bsched_pipeline::{CompileOptions, Experiment};
use bsched_verify::{check_weights, validate_region_schedule};

/// Small deterministic node budget: debug-build friendly across all 17
/// kernels, while still exercising both the proven and the
/// budget-fallback paths on unrolled bodies.
const TEST_BUDGET: u64 = 500;

fn audited(name: &str, program: bsched_ir::Program, opts: CompileOptions) -> (bsched_pipeline::Compiled, bsched_core::ScheduleAudit) {
    Experiment::builder()
        .program(name, program)
        .compile_options(opts)
        .build()
        .expect("kernel builds")
        .compile_audited()
        .expect("kernel compiles")
}

/// Every kernel in the suite, compiled under the exact arm: zero
/// legality violations, a clean weight audit, and a searched cost that
/// never exceeds the balanced incumbent's.
#[test]
fn exact_arm_is_legal_on_every_kernel() {
    for spec in bsched_workloads::all_kernels() {
        let opts = CompileOptions::new(SchedulerKind::Exact).with_exact_budget(TEST_BUDGET);
        let (_, audit) = audited(spec.name, spec.program(), opts);
        for (ri, region) in audit.regions.iter().enumerate() {
            let violations = validate_region_schedule(region);
            assert!(
                violations.is_empty(),
                "{}: region {ri} illegal under the exact arm: {violations:?}",
                spec.name
            );
        }
        if let Some(v) = check_weights(&audit).first() {
            panic!("{}: weight audit failed under the exact arm: {v}", spec.name);
        }
        assert!(audit.exact.regions > 0, "{}: exact arm searched nothing", spec.name);
        assert_eq!(
            audit.exact.regions,
            audit.exact.proven + audit.exact.fallbacks,
            "{}: every region is either proven or a fallback",
            spec.name
        );
        assert!(
            audit.exact.exact_cost <= audit.exact.heuristic_cost,
            "{}: search emitted a schedule worse than its incumbent",
            spec.name
        );
    }
}

/// With a node budget of zero the search expands nothing and must
/// return the balanced incumbent untouched — the compiled program is
/// byte-for-byte the balanced compile, zero nodes are expanded, and
/// the searched cost equals the incumbent's exactly.
#[test]
fn zero_budget_exact_compile_is_byte_identical_to_balanced() {
    for name in ["TRFD", "ARC2D"] {
        let spec = bsched_workloads::all_kernels()
            .into_iter()
            .find(|k| k.name == name)
            .unwrap_or_else(|| panic!("unknown kernel {name}"));
        let balanced = audited(
            name,
            spec.program(),
            CompileOptions::new(SchedulerKind::Balanced),
        );
        let exact = audited(
            name,
            spec.program(),
            CompileOptions::new(SchedulerKind::Exact).with_exact_budget(0),
        );
        assert_eq!(
            format!("{:?}", balanced.0.program),
            format!("{:?}", exact.0.program),
            "{name}: zero-budget exact compile diverged from balanced"
        );
        assert_eq!(exact.1.exact.nodes, 0, "{name}: zero budget expanded nodes");
        assert_eq!(
            exact.1.exact.exact_cost, exact.1.exact.heuristic_cost,
            "{name}: zero budget cannot improve on the incumbent"
        );
    }
}
