//! Error-bound regression suite for sampled simulation.
//!
//! Runs a kernel subset of the standard experiment grid in both exact
//! and sampled mode under the *default* [`SampleConfig`] and holds the
//! estimates to the committed tolerances
//! ([`bsched_verify::SAMPLING_CPI_TOL`] and friends). The release-mode
//! sampling bench enforces the same bounds over the full 255-cell grid;
//! this suite keeps a fast, debug-friendly subset in `cargo test` so an
//! estimator regression fails in CI before anyone runs a bench.

use bsched_pipeline::{standard_grid, Experiment, SampleConfig, SimMode};
use bsched_sim::{MachineSpec, SimEngine, Simulator};
use bsched_verify::{
    check_sampling, sampling_rel_err, sampling_violations, SAMPLING_CPI_MEAN_TOL, SAMPLING_CPI_TOL,
};

/// The sweep kernels: one large, phase-rich kernel and one small one.
const KERNELS: [&str; 2] = ["ARC2D", "TRFD"];

fn kernel(name: &str) -> bsched_ir::Program {
    bsched_workloads::all_kernels()
        .iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("unknown kernel {name}"))
        .program()
}

/// Every (kernel × standard grid) cell: label, exact run, sampled run.
fn sweep() -> Vec<(String, bsched_sim::SimResult, bsched_sim::SimResult)> {
    let mut out = Vec::new();
    for name in KERNELS {
        let program = kernel(name);
        for cfg in standard_grid() {
            let session = Experiment::builder()
                .program(name, program.clone())
                .compile_options(cfg.options())
                .build()
                .expect("standard grid compiles");
            let compiled = session.compile().expect("standard grid compiles").program;
            let sim = session.options().sim;
            let run = |mode| {
                Simulator::for_machine(&compiled, &MachineSpec::custom(sim))
                    .with_engine(SimEngine::BlockCompiled)
                    .with_mode(mode)
                    .run()
                    .expect("standard grid simulates")
            };
            let exact = run(SimMode::Exact);
            let sampled = run(SimMode::Sampled(SampleConfig::default()));
            out.push((format!("{name}/{}", session.label()), exact, sampled));
        }
    }
    out
}

#[test]
fn every_cell_estimate_is_within_the_committed_tolerances() {
    for (cell, exact, sampled) in sweep() {
        let violations = sampling_violations(&exact, &sampled);
        assert!(
            violations.is_empty(),
            "first out-of-tolerance cell {cell}: {}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn sweep_mean_cpi_error_is_under_the_mean_bound() {
    let cells = sweep();
    let mut worst = (0.0f64, String::new());
    let mut sum = 0.0f64;
    for (cell, exact, sampled) in &cells {
        // Instruction counts are exact by construction (the previous
        // test pins that), so CPI relative error equals cycles relative
        // error.
        let err = sampling_rel_err(sampled.metrics.cycles, exact.metrics.cycles, 1);
        if err > worst.0 {
            worst = (err, cell.clone());
        }
        sum += err;
    }
    let mean = sum / cells.len() as f64;
    assert!(
        mean <= SAMPLING_CPI_MEAN_TOL,
        "mean CPI error {:.2}% over {} cells exceeds {:.0}% (worst: {} at {:.2}%)",
        mean * 100.0,
        cells.len(),
        SAMPLING_CPI_MEAN_TOL * 100.0,
        worst.1,
        worst.0 * 100.0
    );
    assert!(
        worst.0 <= SAMPLING_CPI_TOL,
        "max CPI error {:.2}% at {} exceeds {:.0}%",
        worst.0 * 100.0,
        worst.1,
        SAMPLING_CPI_TOL * 100.0
    );
}

#[test]
fn check_sampling_is_clean_across_the_sweep_and_reports_divergence() {
    // The one-call entry point agrees with the manual sweep above for a
    // couple of representative cells…
    let program = kernel("TRFD");
    let session = Experiment::builder()
        .program("TRFD", program.clone())
        .build()
        .expect("defaults compile");
    let compiled = session.compile().expect("defaults compile").program;
    let violations = check_sampling(&compiled, session.options().sim, SampleConfig::default())
        .expect("simulates");
    assert!(violations.is_empty(), "{violations:?}");

    // …and a fabricated off-estimate is reported with the metric, both
    // values, and the tolerance, so the failing cell is identifiable
    // from the message alone.
    let mut exact = Simulator::for_machine(&compiled, &MachineSpec::custom(session.options().sim))
        .with_engine(SimEngine::BlockCompiled)
        .run()
        .expect("simulates");
    let mut sampled = exact.clone();
    sampled.metrics.cycles += exact.metrics.cycles / 10 + 1; // ~+10% CPI
    exact.metrics.load_interlock = 0;
    sampled.metrics.load_interlock = 0;
    let violations = sampling_violations(&exact, &sampled);
    assert_eq!(violations.len(), 1, "{violations:?}");
    let message = violations[0].to_string();
    assert!(message.contains("cpi"), "{message}");
}
