//! Randomized property tests: every structural pass preserves program
//! semantics on generated canonical loops, alone and in combination.
//! Loop plans come from the workspace's seeded [`Prng`].

use bsched_ir::{Interp, Program};
use bsched_opt::{
    copy_propagate, dead_code_elim, local_cse, peel_first_iteration, predicate_function,
    trace_schedule, unroll_loop, EdgeProfile, TraceOptions, UnrollLimits,
};
use bsched_util::Prng;
use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
use bsched_workloads::lang::{ArrayInit, Kernel};

#[derive(Debug, Clone)]
struct LoopPlan {
    trip: i64,
    step: i64,
    off1: i64,
    off2: i64,
    scale: i64,
    with_if: bool,
    with_acc: bool,
}

fn gen_plan(rng: &mut Prng) -> LoopPlan {
    LoopPlan {
        trip: rng.range_i64(0, 20),
        step: rng.range_i64(1, 4),
        off1: rng.range_i64(0, 4),
        off2: rng.range_i64(0, 4),
        scale: rng.range_i64(1, 3),
        with_if: rng.coin(),
        with_acc: rng.coin(),
    }
}

fn build(plan: &LoopPlan) -> Program {
    let mut k = Kernel::new("prop");
    let a = k.array("a", 256, ArrayInit::Random(9));
    let out = k.array("out", 256, ArrayInit::Zero);
    let i = k.int_var("i");
    let s = k.float_var("s");
    k.push(k.assign(s, Expr::Float(0.5)));
    let mut body = vec![k.store(
        out,
        Index::of_plus(i, plan.off1),
        Expr::load(
            a,
            Index::Affine {
                terms: vec![(i, plan.scale)],
                offset: plan.off2,
            },
        ) * Expr::Float(1.5)
            + Expr::load(a, Index::of(i)),
    )];
    if plan.with_acc {
        body.push(k.assign(
            s,
            Expr::Var(s) + Expr::load(a, Index::of_plus(i, plan.off2)),
        ));
    }
    if plan.with_if {
        body.push(Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::load(a, Index::of(i)), Expr::Float(0.5)),
            then_: vec![k.assign(s, Expr::Var(s) * Expr::Float(1.01))],
            else_: vec![k.assign(s, Expr::Var(s) + Expr::Float(0.25))],
        });
    }
    k.push(k.for_loop_step(i, Expr::Int(0), Expr::Int(plan.trip), plan.step, body));
    k.push(k.store(out, Index::constant(128), Expr::Var(s)));
    k.lower()
}

fn checksum(p: &Program) -> u64 {
    Interp::new(p).run().expect("program executes").checksum
}

#[test]
fn cse_and_cleanup_preserve_semantics() {
    let mut rng = Prng::new(0x0B7_0001);
    for case in 0..48 {
        let plan = gen_plan(&mut rng);
        let mut p = build(&plan);
        let want = checksum(&p);
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        assert!(bsched_ir::verify_program(&p).is_ok(), "case {case}: {plan:?}");
        assert_eq!(checksum(&p), want, "case {case}: {plan:?}");
    }
}

#[test]
fn predication_preserves_semantics() {
    let mut rng = Prng::new(0x0B7_0002);
    for case in 0..48 {
        let plan = gen_plan(&mut rng);
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        assert!(bsched_ir::verify_program(&p).is_ok(), "case {case}: {plan:?}");
        assert_eq!(checksum(&p), want, "case {case}: {plan:?}");
    }
}

#[test]
fn unroll_preserves_semantics() {
    let mut rng = Prng::new(0x0B7_0003);
    for case in 0..48 {
        let plan = gen_plan(&mut rng);
        let factor = [2u32, 4, 8][rng.index(3)];
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        let _ = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(factor));
        assert!(
            bsched_ir::verify_program(&p).is_ok(),
            "case {case}: {plan:?} x{factor}"
        );
        assert_eq!(checksum(&p), want, "case {case}: {plan:?} x{factor}");
    }
}

#[test]
fn peel_preserves_semantics() {
    let mut rng = Prng::new(0x0B7_0004);
    for case in 0..48 {
        let plan = gen_plan(&mut rng);
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        let _ = peel_first_iteration(p.main_mut(), 0);
        assert!(bsched_ir::verify_program(&p).is_ok(), "case {case}: {plan:?}");
        assert_eq!(checksum(&p), want, "case {case}: {plan:?}");
    }
}

#[test]
fn trace_scheduling_preserves_semantics() {
    let mut rng = Prng::new(0x0B7_0005);
    for case in 0..48 {
        let plan = gen_plan(&mut rng);
        let mut p = build(&plan);
        let want = checksum(&p);
        let profile = EdgeProfile::collect(&p).expect("profile");
        trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        assert!(bsched_ir::verify_program(&p).is_ok(), "case {case}: {plan:?}");
        assert_eq!(checksum(&p), want, "case {case}: {plan:?}");
    }
}

#[test]
fn full_stack_composition_preserves_semantics() {
    let mut rng = Prng::new(0x0B7_0006);
    for case in 0..48 {
        let plan = gen_plan(&mut rng);
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        let _ = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4));
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        let profile = EdgeProfile::collect(&p).expect("profile");
        trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        dead_code_elim(p.main_mut());
        assert!(bsched_ir::verify_program(&p).is_ok(), "case {case}: {plan:?}");
        assert_eq!(checksum(&p), want, "case {case}: {plan:?}");
    }
}
