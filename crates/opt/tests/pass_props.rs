//! Property tests: every structural pass preserves program semantics on
//! randomly generated canonical loops, alone and in combination.

use bsched_ir::{Interp, Program};
use bsched_opt::{
    copy_propagate, dead_code_elim, local_cse, peel_first_iteration, predicate_function,
    trace_schedule, unroll_loop, EdgeProfile, TraceOptions, UnrollLimits,
};
use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
use bsched_workloads::lang::{ArrayInit, Kernel};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct LoopPlan {
    trip: i64,
    step: i64,
    off1: i64,
    off2: i64,
    scale: i64,
    with_if: bool,
    with_acc: bool,
}

fn arb_plan() -> impl Strategy<Value = LoopPlan> {
    (
        0i64..20,
        1i64..4,
        0i64..4,
        0i64..4,
        1i64..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(trip, step, off1, off2, scale, with_if, with_acc)| LoopPlan {
                trip,
                step,
                off1,
                off2,
                scale,
                with_if,
                with_acc,
            },
        )
}

fn build(plan: &LoopPlan) -> Program {
    let mut k = Kernel::new("prop");
    let a = k.array("a", 256, ArrayInit::Random(9));
    let out = k.array("out", 256, ArrayInit::Zero);
    let i = k.int_var("i");
    let s = k.float_var("s");
    k.push(k.assign(s, Expr::Float(0.5)));
    let mut body = vec![k.store(
        out,
        Index::of_plus(i, plan.off1),
        Expr::load(
            a,
            Index::Affine {
                terms: vec![(i, plan.scale)],
                offset: plan.off2,
            },
        ) * Expr::Float(1.5)
            + Expr::load(a, Index::of(i)),
    )];
    if plan.with_acc {
        body.push(k.assign(
            s,
            Expr::Var(s) + Expr::load(a, Index::of_plus(i, plan.off2)),
        ));
    }
    if plan.with_if {
        body.push(Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::load(a, Index::of(i)), Expr::Float(0.5)),
            then_: vec![k.assign(s, Expr::Var(s) * Expr::Float(1.01))],
            else_: vec![k.assign(s, Expr::Var(s) + Expr::Float(0.25))],
        });
    }
    k.push(k.for_loop_step(i, Expr::Int(0), Expr::Int(plan.trip), plan.step, body));
    k.push(k.store(out, Index::constant(128), Expr::Var(s)));
    k.lower()
}

fn checksum(p: &Program) -> u64 {
    Interp::new(p).run().expect("program executes").checksum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cse_and_cleanup_preserve_semantics(plan in arb_plan()) {
        let mut p = build(&plan);
        let want = checksum(&p);
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        prop_assert!(bsched_ir::verify_program(&p).is_ok());
        prop_assert_eq!(checksum(&p), want);
    }

    #[test]
    fn predication_preserves_semantics(plan in arb_plan()) {
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        prop_assert!(bsched_ir::verify_program(&p).is_ok());
        prop_assert_eq!(checksum(&p), want);
    }

    #[test]
    fn unroll_preserves_semantics(plan in arb_plan(), factor in prop_oneof![Just(2u32), Just(4), Just(8)]) {
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        let _ = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(factor));
        prop_assert!(bsched_ir::verify_program(&p).is_ok());
        prop_assert_eq!(checksum(&p), want);
    }

    #[test]
    fn peel_preserves_semantics(plan in arb_plan()) {
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        let _ = peel_first_iteration(p.main_mut(), 0);
        prop_assert!(bsched_ir::verify_program(&p).is_ok());
        prop_assert_eq!(checksum(&p), want);
    }

    #[test]
    fn trace_scheduling_preserves_semantics(plan in arb_plan()) {
        let mut p = build(&plan);
        let want = checksum(&p);
        let profile = EdgeProfile::collect(&p).expect("profile");
        trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        prop_assert!(bsched_ir::verify_program(&p).is_ok());
        prop_assert_eq!(checksum(&p), want);
    }

    #[test]
    fn full_stack_composition_preserves_semantics(plan in arb_plan()) {
        let mut p = build(&plan);
        let want = checksum(&p);
        predicate_function(p.main_mut());
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        let _ = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4));
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        let profile = EdgeProfile::collect(&p).expect("profile");
        trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        dead_code_elim(p.main_mut());
        prop_assert!(bsched_ir::verify_program(&p).is_ok());
        prop_assert_eq!(checksum(&p), want);
    }
}
