//! If-conversion of simple diamonds and triangles into conditional moves.
//!
//! The paper's Multiflow compiler "does predicated execution on simple
//! conditional branches" using the Alpha's `CMOV` (§4.2 footnote 2); this
//! is what makes single-conditional loop bodies straight-line and
//! therefore unrollable. We convert:
//!
//! ```text
//! A: br c -> T, F        A: ...; guard = c
//! T: t-code; jmp J   =>     t-code', f-code'   (defs renamed)
//! F: f-code; jmp J          r = select(guard, r_t, r_f)  for each def
//! J: ...                    jmp J
//! ```
//!
//! Arms must be straight-line, store-free, and small. Loads in arms become
//! unconditional (speculative); the machine model's loads are non-faulting
//! (out-of-image reads return zero), matching the "safe speculation"
//! assumption documented in DESIGN.md.

use bsched_ir::{BlockId, BrCond, Cfg, Function, Inst, Liveness, Reg, Terminator};
use std::collections::{HashMap, HashSet};

/// Maximum instructions per predicated arm ("simple" conditionals only).
pub const MAX_ARM_INSTS: usize = 12;

/// `true` if a block can serve as a predicated arm.
fn arm_ok(func: &Function, b: BlockId, join: BlockId) -> bool {
    let blk = func.block(b);
    blk.term == Terminator::Jmp(join)
        && blk.insts.len() <= MAX_ARM_INSTS
        && blk.insts.iter().all(|i| !i.op.is_store())
}

/// Renames every def in an arm to fresh registers; returns the rewritten
/// instructions and the final name of each renamed register.
fn rename_arm(func: &mut Function, insts: &[Inst]) -> (Vec<Inst>, HashMap<Reg, Reg>) {
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let mut out = Vec::with_capacity(insts.len());
    for inst in insts {
        let mut ni = inst.clone();
        for s in ni.srcs_mut() {
            if let Some(&n) = map.get(s) {
                *s = n;
            }
        }
        if let Some(d) = ni.dst {
            let nd = func.new_reg(d.class());
            map.insert(d, nd);
            ni.dst = Some(nd);
        }
        out.push(ni);
    }
    (out, map)
}

/// Tries to if-convert the branch terminating `a`. Returns `true` on
/// success.
fn try_convert(func: &mut Function, cfg: &Cfg, live: &Liveness, a: BlockId) -> bool {
    let (cond, when, taken, fall) = match func.block(a).term {
        Terminator::Br {
            cond,
            when,
            taken,
            fall,
        } => (cond, when, taken, fall),
        _ => return false,
    };
    if taken == fall {
        return false;
    }
    let protected: HashSet<BlockId> = func
        .loops
        .iter()
        .flat_map(|l| [l.header, l.latch])
        .collect();

    // Identify the shape: diamond (both arms join at J) or triangle (one
    // arm is the join itself).
    let (t_arm, f_arm, join): (Option<BlockId>, Option<BlockId>, BlockId) = {
        let single_pred = |b: BlockId| cfg.preds(b).len() == 1 && !protected.contains(&b);
        let tj = match func.block(taken).term {
            Terminator::Jmp(j) => Some(j),
            _ => None,
        };
        let fj = match func.block(fall).term {
            Terminator::Jmp(j) => Some(j),
            _ => None,
        };
        if let (Some(tj), Some(fj)) = (tj, fj) {
            if tj == fj && single_pred(taken) && single_pred(fall) && tj != a {
                (Some(taken), Some(fall), tj)
            } else if tj == fall && single_pred(taken) {
                (Some(taken), None, fall) // triangle: fall IS the join
            } else if fj == taken && single_pred(fall) {
                (None, Some(fall), taken)
            } else {
                return false;
            }
        } else if tj == Some(fall) && single_pred(taken) {
            (Some(taken), None, fall)
        } else if fj == Some(taken) && single_pred(fall) {
            (None, Some(fall), taken)
        } else {
            return false;
        }
    };
    if let Some(t) = t_arm {
        if !arm_ok(func, t, join) {
            return false;
        }
    }
    if let Some(f) = f_arm {
        if !arm_ok(func, f, join) {
            return false;
        }
    }
    // A triangle's join gains no new predecessor count issues; a diamond's
    // join keeps its other predecessors.

    // Orient the arms by the branch sense: `nz` runs when cond != 0.
    let (nz_arm, z_arm) = match when {
        BrCond::NonZero => (t_arm, f_arm),
        BrCond::Zero => (f_arm, t_arm),
    };

    // Snapshot arm code.
    let nz_insts: Vec<Inst> = nz_arm
        .map(|b| func.block(b).insts.clone())
        .unwrap_or_default();
    let z_insts: Vec<Inst> = z_arm
        .map(|b| func.block(b).insts.clone())
        .unwrap_or_default();

    // Guard copy (protects the condition from arm redefinition).
    let guard = func.new_reg(bsched_ir::RegClass::Int);
    let (nz_code, nz_map) = rename_arm(func, &nz_insts);
    let (z_code, z_map) = rename_arm(func, &z_insts);

    // Registers needing a select: defined by an arm *and* live into the
    // join (arm-local temporaries need no merge), in first-def order.
    let join_live = live.live_in(join);
    let mut defined: Vec<Reg> = Vec::new();
    for i in nz_insts.iter().chain(&z_insts) {
        if let Some(d) = i.dst {
            if join_live.contains(&d) && !defined.contains(&d) {
                defined.push(d);
            }
        }
    }

    let ab = func.block_mut(a);
    ab.insts.push(Inst::copy(guard, cond));
    ab.insts.extend(nz_code);
    ab.insts.extend(z_code);
    for r in defined {
        let tn = nz_map.get(&r).copied().unwrap_or(r);
        let fn_ = z_map.get(&r).copied().unwrap_or(r);
        ab.insts.push(Inst::select(r, guard, tn, fn_));
    }
    ab.term = Terminator::Jmp(join);

    // Dissolve consumed arm blocks into unreachable stubs.
    for arm in [nz_arm, z_arm].into_iter().flatten() {
        let blk = func.block_mut(arm);
        blk.insts.clear();
        blk.term = Terminator::Ret;
    }
    true
}

/// If-converts every simple diamond/triangle in the function, iterating so
/// that nested conditionals convert inside-out, then merges straight
/// chains and refreshes loop bodies. Returns the number of branches
/// eliminated.
pub fn predicate_function(func: &mut Function) -> usize {
    let mut converted = 0;
    loop {
        let mut changed = false;
        let cfg = Cfg::new(func);
        let live = Liveness::new(func, &cfg);
        let blocks: Vec<BlockId> = cfg.rpo().to_vec();
        for a in blocks {
            if try_convert(func, &cfg, &live, a) {
                converted += 1;
                changed = true;
                break; // CFG changed; recompute.
            }
        }
        if !changed {
            break;
        }
        // Fold the freshly linearised chains so enclosing conditionals
        // become convertible (inside-out conversion of nested ifs).
        crate::cleanup::merge_straight_chains(func);
    }
    if converted > 0 {
        // Selects were emitted for every arm-defined register; those whose
        // original register is dead after the join fold away here.
        crate::cleanup::dead_code_elim(func);
        crate::cleanup::refresh_loop_bodies(func);
    }
    converted
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Program};
    use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    /// for i in 0..n { if a[i] < 0.5 { s = s + a[i] } else { s = s - a[i] } }
    fn diamond_kernel(n: i64) -> Program {
        let mut k = Kernel::new("dia");
        let a = k.array("a", n as u64, ArrayInit::Random(7));
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        k.push(k.assign(s, Expr::Float(0.0)));
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::load(a, Index::of(i)), Expr::Float(0.5)),
            then_: vec![k.assign(s, Expr::Var(s) + Expr::load(a, Index::of(i)))],
            else_: vec![k.assign(s, Expr::Var(s) - Expr::load(a, Index::of(i)))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.push(k.store(out, Index::constant(0), Expr::Var(s)));
        k.lower()
    }

    #[test]
    fn diamond_converts_and_preserves_semantics() {
        let mut p = diamond_kernel(16);
        let want = Interp::new(&p).run().unwrap();
        let n = predicate_function(p.main_mut());
        assert_eq!(n, 1);
        assert!(bsched_ir::verify_program(&p).is_ok());
        let got = Interp::new(&p).run().unwrap();
        assert_eq!(got.checksum, want.checksum);
        assert!(
            got.branch_count < want.branch_count,
            "the if's branch is gone"
        );
        // The loop body is now a single straight-line block.
        assert_eq!(p.main().loops[0].body.len(), 1);
    }

    #[test]
    fn predication_enables_unrolling() {
        use crate::unroll::{unroll_loop, UnrollLimits};
        let mut p = diamond_kernel(13);
        let want = Interp::new(&p).run().unwrap().checksum;
        assert!(unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).is_none());
        predicate_function(p.main_mut());
        let r = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4));
        assert!(r.is_some(), "predicated body must unroll");
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    #[test]
    fn triangle_converts() {
        // if c { s = s + 1 } with no else.
        let mut k = Kernel::new("tri");
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.int_var("s");
        k.push(k.assign(s, Expr::Int(0)));
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(3)),
            then_: vec![k.assign(s, Expr::Var(s) + Expr::Int(1))],
            else_: vec![],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(10), body));
        k.push(k.store(
            out,
            Index::constant(0),
            Expr::IntToFloat(Box::new(Expr::Var(s))),
        ));
        let mut p = k.lower();
        let want = Interp::new(&p).run().unwrap().checksum;
        // The frontend lowers else-less ifs with an empty else block, which
        // is also predicable.
        let n = predicate_function(p.main_mut());
        assert!(n >= 1);
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    #[test]
    fn stores_in_arms_block_conversion() {
        let mut k = Kernel::new("st");
        let a = k.array("a", 16, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(8)),
            then_: vec![k.store(a, Index::of(i), Expr::Float(1.0))],
            else_: vec![],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(16), body));
        let mut p = k.lower();
        let want = Interp::new(&p).run().unwrap().checksum;
        let n = predicate_function(p.main_mut());
        assert_eq!(n, 0, "stores cannot be predicated");
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }

    #[test]
    fn nested_ifs_convert_inside_out() {
        let mut k = Kernel::new("nest");
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.int_var("s");
        k.push(k.assign(s, Expr::Int(0)));
        let inner = Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(3)),
            then_: vec![k.assign(s, Expr::Var(s) + Expr::Int(10))],
            else_: vec![k.assign(s, Expr::Var(s) + Expr::Int(1))],
        };
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(7)),
            then_: vec![inner],
            else_: vec![k.assign(s, Expr::Var(s) + Expr::Int(100))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(10), body));
        k.push(k.store(
            out,
            Index::constant(0),
            Expr::IntToFloat(Box::new(Expr::Var(s))),
        ));
        let mut p = k.lower();
        let want = Interp::new(&p).run().unwrap();
        let n = predicate_function(p.main_mut());
        assert!(n >= 2, "both levels convert, got {n}");
        let got = Interp::new(&p).run().unwrap();
        assert_eq!(got.checksum, want.checksum);
        assert_eq!(
            p.main().loops[0].body.len(),
            1,
            "body collapses to one block"
        );
    }

    #[test]
    fn condition_redefined_in_arm_is_safe() {
        // if (c = i < 5) { c = 0; s += 1 } else { s += 2 } — arm redefines
        // the condition register's source variable.
        let mut k = Kernel::new("redef");
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let c = k.int_var("c");
        let s = k.int_var("s");
        k.push(k.assign(s, Expr::Int(0)));
        let body = vec![
            k.assign(c, Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(5))),
            Stmt::If {
                cond: Expr::Var(c),
                then_: vec![
                    k.assign(c, Expr::Int(0)),
                    k.assign(s, Expr::Var(s) + Expr::Int(1)),
                ],
                else_: vec![k.assign(s, Expr::Var(s) + Expr::Int(2))],
            },
        ];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(10), body));
        k.push(k.store(
            out,
            Index::constant(0),
            Expr::IntToFloat(Box::new(Expr::Var(s))),
        ));
        let mut p = k.lower();
        let want = Interp::new(&p).run().unwrap().checksum;
        let n = predicate_function(p.main_mut());
        assert!(n >= 1);
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }
}
