//! Locality analysis (paper §3.3): Mowry–Lam–Gupta-style reuse
//! classification of affine array references in inner loops, plus the
//! code transformations that let the scheduler exploit it:
//!
//! * **temporal reuse** (the address is invariant in the inner loop, like
//!   `B[i][0]`): peel the first iteration; the peeled copy's load is the
//!   compile-time *miss*, every in-loop instance becomes a *hit*
//!   (Figure 5);
//! * **spatial reuse** (the address advances by a small stride, like
//!   `A[i][j]`): unroll by `line / stride` (postconditioned so alignment
//!   holds, Figure 4), mark the first copy of each cache-line group as the
//!   *miss* and the rest as *hits*, and give each group a
//!   [`bsched_ir::MemAccess::line_group`] so the hits cannot float above
//!   their miss in the code DAG (§4.2);
//! * references whose alignment cannot be proven (unknown row pitch,
//!   dynamic indices) are left unmarked — the paper's four limitations
//!   (§5.3) fall out of the same checks.

use crate::linform::{defined_regs, LinEnv};
use crate::peel::peel_first_iteration;
use crate::unroll::{unroll_loop, UnrollLimits};
use bsched_ir::{Function, Inst, LocalityHint, MemAccess, Op, Reg};
use std::collections::HashMap;

/// Cache-line size locality analysis assumes (Alpha 21164 L1: 32 bytes).
pub const LINE_BYTES: i64 = 32;

/// The reuse class of one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseKind {
    /// Same address every iteration.
    Temporal,
    /// Address advances by `stride_bytes` (< line size) per iteration.
    Spatial {
        /// Byte stride per original loop iteration.
        stride_bytes: i64,
    },
}

/// One classified reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseRef {
    /// Index of the loop in `func.loops`.
    pub loop_idx: usize,
    /// Instruction index of the load within the (single) body block.
    pub inst_idx: usize,
    /// Reuse class.
    pub kind: ReuseKind,
    /// Whether the reference's line alignment at loop entry is provable
    /// (required for spatial hit/miss marking).
    pub aligned: bool,
}

/// Options controlling the transformation.
#[derive(Debug, Clone, Copy)]
pub struct LocalityOptions {
    /// Unroll factor for loops with spatial reuse. `None` derives the
    /// minimum factor from the line/stride ratio (4 for stride-8 doubles,
    /// footnote 4 of the paper); `Some(f)` uses the experiment's factor.
    pub factor: Option<u32>,
    /// Weight-cap-style limit on the unrolled body.
    pub max_body_insts: usize,
}

impl Default for LocalityOptions {
    fn default() -> Self {
        LocalityOptions {
            factor: None,
            max_body_insts: 128,
        }
    }
}

/// Transformation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalityStats {
    /// Indices of loops this pass transformed (the pipeline's later
    /// unrolling must skip them).
    pub loops_processed: Vec<usize>,
    /// Loops peeled for temporal reuse.
    pub peeled: u64,
    /// Loops unrolled for spatial reuse.
    pub unrolled: u64,
    /// Loads marked as compile-time hits.
    pub hits_marked: u64,
    /// Loads marked as compile-time misses.
    pub misses_marked: u64,
}

/// Classifies the loads of every innermost, single-block counted loop.
#[must_use]
pub fn analyze_locality(func: &Function) -> Vec<ReuseRef> {
    let mut refs = Vec::new();
    for loop_idx in func.innermost_loops() {
        let l = &func.loops[loop_idx];
        if l.body.len() != 1 || l.step <= 0 {
            continue;
        }
        let body = &func.block(l.body[0]).insts;
        let defined = defined_regs([
            body.as_slice(),
            func.block(l.latch).insts.as_slice(),
            func.block(l.header).insts.as_slice(),
        ]);
        let mut env = LinEnv::new(l.counter, defined);
        for (i, inst) in body.iter().enumerate() {
            if inst.op.is_load() {
                if let Some(form) = env.lookup(inst.mem_base()) {
                    let stride = form.a * l.step;
                    let kind = if stride == 0 {
                        Some(ReuseKind::Temporal)
                    } else if stride > 0 && stride < LINE_BYTES && LINE_BYTES % stride == 0 {
                        Some(ReuseKind::Spatial {
                            stride_bytes: stride,
                        })
                    } else {
                        None
                    };
                    if let Some(kind) = kind {
                        let aligned = match kind {
                            ReuseKind::Temporal => true,
                            ReuseKind::Spatial { .. } => {
                                entry_alignment(func, loop_idx, inst) == Some(0)
                            }
                        };
                        refs.push(ReuseRef {
                            loop_idx,
                            inst_idx: i,
                            kind,
                            aligned,
                        });
                    }
                }
            }
            env.step(inst);
        }
    }
    refs
}

/// Computes `(address + disp) mod LINE_BYTES` at loop entry, when
/// provable: region bases are line-aligned, the inner counter is
/// substituted by its initial value, and scaled outer-counter terms vanish
/// when the scale is a line multiple.
fn entry_alignment(func: &Function, loop_idx: usize, load: &Inst) -> Option<i64> {
    let l = &func.loops[loop_idx];
    // The counter's initial value: the last preheader def must be `li`.
    let init = func
        .block(l.preheader)
        .insts
        .iter()
        .rev()
        .find(|i| i.dst == Some(l.counter))
        .and_then(|i| if i.op == Op::Li { i.imm } else { None })?;
    let mut subst = HashMap::new();
    subst.insert(l.counter, init);
    let base_mod = mod_line(func, load.mem_base(), &subst, 0)?;
    Some((base_mod + load.mem_disp()).rem_euclid(LINE_BYTES))
}

/// Resolves `reg mod LINE_BYTES` by chasing unique defs.
fn mod_line(func: &Function, reg: Reg, subst: &HashMap<Reg, i64>, depth: usize) -> Option<i64> {
    if depth > 32 {
        return None;
    }
    if let Some(&v) = subst.get(&reg) {
        return Some(v.rem_euclid(LINE_BYTES));
    }
    // Find the unique def across the whole function.
    let mut def: Option<&Inst> = None;
    for (_, block) in func.iter_blocks() {
        for inst in &block.insts {
            if inst.dst == Some(reg) {
                if def.is_some() {
                    return None; // multiple defs
                }
                def = Some(inst);
            }
        }
    }
    let inst = def?;
    let rec = |r: Reg| mod_line(func, r, subst, depth + 1);
    let rhs = |k: usize| -> Option<i64> {
        match inst.imm {
            Some(v) => Some(v.rem_euclid(LINE_BYTES)),
            None => rec(inst.srcs()[k]),
        }
    };
    let m = match inst.op {
        Op::LdAddr => 0, // regions are line-aligned by layout
        Op::Li => inst.imm?.rem_euclid(LINE_BYTES),
        Op::Mov => rec(inst.srcs()[0])?,
        Op::Add => (rec(inst.srcs()[0])? + rhs(1)?).rem_euclid(LINE_BYTES),
        Op::Sub => (rec(inst.srcs()[0])? - rhs(1)?).rem_euclid(LINE_BYTES),
        Op::Shl => {
            let k = inst.imm?;
            if !(0..63).contains(&k) {
                return None;
            }
            if (1i64 << k).rem_euclid(LINE_BYTES) == 0 {
                0 // any operand value lands on a line multiple
            } else {
                (rec(inst.srcs()[0])? << k).rem_euclid(LINE_BYTES)
            }
        }
        Op::Mul => {
            let m = inst.imm?;
            if m.rem_euclid(LINE_BYTES) == 0 {
                0
            } else {
                (rec(inst.srcs()[0])?.wrapping_mul(m)).rem_euclid(LINE_BYTES)
            }
        }
        _ => return None,
    };
    Some(m)
}

/// Applies the locality transformations to every innermost single-block
/// counted loop that exhibits reuse. Returns the statistics (including
/// which loops were consumed, so the caller's generic unrolling can skip
/// them).
pub fn apply_locality(func: &mut Function, options: &LocalityOptions) -> LocalityStats {
    let mut stats = LocalityStats::default();
    let refs = analyze_locality(func);
    let mut by_loop: HashMap<usize, Vec<ReuseRef>> = HashMap::new();
    for r in refs {
        by_loop.entry(r.loop_idx).or_default().push(r);
    }
    let mut loops: Vec<usize> = by_loop.keys().copied().collect();
    loops.sort_unstable();

    let mut next_group: u32 = 0;
    for loop_idx in loops {
        let refs = &by_loop[&loop_idx];
        let temporal: Vec<ReuseRef> = refs
            .iter()
            .copied()
            .filter(|r| r.kind == ReuseKind::Temporal)
            .collect();
        let spatial: Vec<ReuseRef> = refs
            .iter()
            .copied()
            .filter(|r| matches!(r.kind, ReuseKind::Spatial { .. }) && r.aligned)
            .collect();
        if temporal.is_empty() && spatial.is_empty() {
            continue;
        }
        let body_id = func.loops[loop_idx].body[0];
        let mut processed = false;

        // --- Temporal: peel, mark the peeled copy a miss and the in-loop
        // instances hits (Figure 5). When the loop *also* has spatial
        // refs, peeling would advance the counter by one and break the
        // line alignment the spatial marking depends on, so we keep the
        // loop intact and simply mark the in-loop loads as hits — they
        // mispredict exactly the first iteration (see DESIGN.md).
        if !temporal.is_empty() {
            if spatial.is_empty() {
                if let Some(peel) = peel_first_iteration(func, loop_idx) {
                    stats.peeled += 1;
                    processed = true;
                    for r in &temporal {
                        let pi = peel.inst_map[r.inst_idx];
                        func.block_mut(peel.peeled_body).insts[pi].hint = LocalityHint::Miss;
                        func.block_mut(body_id).insts[r.inst_idx].hint = LocalityHint::Hit;
                        stats.misses_marked += 1;
                        stats.hits_marked += 1;
                    }
                }
            } else {
                for r in &temporal {
                    func.block_mut(body_id).insts[r.inst_idx].hint = LocalityHint::Hit;
                    stats.hits_marked += 1;
                }
                processed = true;
            }
        }

        // --- Spatial: unroll and mark line groups (Figure 4).
        if !spatial.is_empty() {
            let derived: u32 = spatial
                .iter()
                .map(|r| match r.kind {
                    ReuseKind::Spatial { stride_bytes } => (LINE_BYTES / stride_bytes) as u32,
                    ReuseKind::Temporal => 1,
                })
                .max()
                .unwrap_or(4);
            // Try the experiment's factor first, then the line-derived
            // minimum, then a plain factor-2 partial unroll (which cannot
            // mark whole-line groups but still shrinks overhead).
            let requested = options.factor.unwrap_or(derived).max(2);
            let mut tried = vec![requested];
            if !tried.contains(&derived) {
                tried.push(derived.max(2));
            }
            if !tried.contains(&2) {
                tried.push(2);
            }
            let mut outcome = None;
            let mut factor = requested;
            for f in tried {
                let limits = UnrollLimits {
                    factor: f,
                    max_body_insts: options.max_body_insts,
                };
                if let Some(u) = unroll_loop(func, loop_idx, &limits) {
                    outcome = Some(u);
                    factor = f;
                    break;
                }
            }
            if let Some(unrolled) = outcome {
                stats.unrolled += 1;
                processed = true;
                for r in &spatial {
                    let ReuseKind::Spatial { stride_bytes } = r.kind else {
                        continue;
                    };
                    let group_len = (LINE_BYTES / stride_bytes) as u32;
                    if !factor.is_multiple_of(group_len) {
                        continue; // cannot isolate whole-line groups
                    }
                    // Main copies: one miss per cache-line group, the rest
                    // hits, tied together by a line group so the hits
                    // cannot float above their miss.
                    for c in 0..factor {
                        let idx = unrolled.main_copy_map[c as usize][r.inst_idx];
                        let inst = &mut func.block_mut(unrolled.body).insts[idx];
                        debug_assert!(inst.op.is_load());
                        if c % group_len == 0 {
                            inst.hint = LocalityHint::Miss;
                            next_group += 1;
                            stats.misses_marked += 1;
                        } else {
                            inst.hint = LocalityHint::Hit;
                            stats.hits_marked += 1;
                        }
                        let mem = inst.mem.get_or_insert_with(MemAccess::default);
                        mem.line_group = Some(next_group);
                    }
                    // Postcondition copies continue the pattern: the main
                    // loop always leaves the counter group-aligned, so
                    // post copy k has in-group position k % group_len.
                    // Hints only — line groups do not span blocks.
                    for (k, (pb, idxs)) in unrolled.post_copies.iter().enumerate() {
                        let inst = &mut func.block_mut(*pb).insts[idxs[r.inst_idx]];
                        if (k as u32).is_multiple_of(group_len) {
                            inst.hint = LocalityHint::Miss;
                            stats.misses_marked += 1;
                        } else {
                            inst.hint = LocalityHint::Hit;
                            stats.hits_marked += 1;
                        }
                    }
                }
                // Temporal refs inside the unrolled body: every copy is a
                // hit (unrolling preserved the hint for main copies, but
                // postcondition copies were stripped).
                for r in &temporal {
                    for (pb, idxs) in &unrolled.post_copies {
                        func.block_mut(*pb).insts[idxs[r.inst_idx]].hint = LocalityHint::Hit;
                    }
                }
            }
        }

        if processed {
            stats.loops_processed.push(loop_idx);
        }
    }
    stats
}

/// Removes the line-group ordering arcs and hint marks from a function
/// (used by experiments that want plain balanced scheduling on
/// locality-transformed code).
pub fn strip_hints(func: &mut Function) {
    let n = func.blocks().len();
    for bi in 0..n {
        let id = bsched_ir::BlockId::new(bi);
        for inst in &mut func.block_mut(id).insts {
            inst.hint = LocalityHint::Unknown;
            if let Some(m) = &mut inst.mem {
                m.line_group = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Program};
    use bsched_workloads::lang::ast::{Expr, Index};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    /// Figure 3: for i in 0..n { for j in 0..n { C[i][j] = A[i][j] + B[i*n] } }
    /// (B[i][0] modeled as a 1-D access invariant in j.)
    fn figure3(n: i64) -> Program {
        let mut k = Kernel::new("fig3");
        let a = k.array("A", (n * n) as u64, ArrayInit::Random(1));
        let b = k.array("B", (n * n) as u64, ArrayInit::Random(2));
        let c = k.array("C", (n * n) as u64, ArrayInit::Zero);
        let i = k.int_var("i");
        let j = k.int_var("j");
        let inner = vec![k.store(
            c,
            Index::two(i, n, j, 1, 0),
            Expr::load(a, Index::two(i, n, j, 1, 0)) + Expr::load(b, Index::two(i, n, i, 0, 0)),
        )];
        let outer = vec![k.for_loop(j, Expr::Int(0), Expr::Int(n), inner)];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), outer));
        k.lower()
    }

    #[test]
    fn classifies_spatial_and_temporal() {
        let p = figure3(8); // n=8: row pitch 64 bytes = 2 lines, aligned
        let refs = analyze_locality(p.main());
        assert_eq!(refs.len(), 2);
        let spatial: Vec<_> = refs
            .iter()
            .filter(|r| matches!(r.kind, ReuseKind::Spatial { stride_bytes: 8 }))
            .collect();
        let temporal: Vec<_> = refs
            .iter()
            .filter(|r| r.kind == ReuseKind::Temporal)
            .collect();
        assert_eq!(spatial.len(), 1, "A[i][j] is spatial: {refs:?}");
        assert_eq!(temporal.len(), 1, "B[i*n] is temporal: {refs:?}");
        assert!(spatial[0].aligned, "row pitch 64B keeps rows line-aligned");
    }

    #[test]
    fn misaligned_rows_fail_the_alignment_proof() {
        let p = figure3(6); // row pitch 48 bytes: rows not line-aligned
        let refs = analyze_locality(p.main());
        let spatial: Vec<_> = refs
            .iter()
            .filter(|r| matches!(r.kind, ReuseKind::Spatial { .. }))
            .collect();
        assert_eq!(spatial.len(), 1);
        assert!(
            !spatial[0].aligned,
            "48-byte pitch must not be provably aligned"
        );
    }

    #[test]
    fn apply_marks_hits_and_misses_and_preserves_semantics() {
        let mut p = figure3(8);
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = apply_locality(p.main_mut(), &LocalityOptions::default());
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
        // Spatial refs in the same loop suppress the peel (alignment);
        // the temporal load is marked hit in place instead.
        assert_eq!(stats.peeled, 0);
        assert_eq!(stats.unrolled, 1);
        assert!(stats.hits_marked >= 3, "{stats:?}");
        assert!(stats.misses_marked >= 1);
        assert_eq!(stats.loops_processed.len(), 1);

        // In the unrolled body: 4 A-loads, one Miss + three Hits, in one
        // line group, with the miss preceding the hits.
        let body_id = p.main().loops[stats.loops_processed[0]].body[0];
        let body = &p.main().block(body_id).insts;
        let a_loads: Vec<&Inst> = body
            .iter()
            .filter(|i| {
                i.op.is_load() && i.mem.and_then(|m| m.region) == Some(bsched_ir::RegionId::new(0))
            })
            .collect();
        assert_eq!(a_loads.len(), 4);
        let misses = a_loads
            .iter()
            .filter(|i| i.hint == LocalityHint::Miss)
            .count();
        let hits = a_loads
            .iter()
            .filter(|i| i.hint == LocalityHint::Hit)
            .count();
        assert_eq!((misses, hits), (1, 3));
        let groups: std::collections::HashSet<_> = a_loads
            .iter()
            .filter_map(|i| i.mem.and_then(|m| m.line_group))
            .collect();
        assert_eq!(groups.len(), 1, "all four copies share one line group");
        // B-load: hit in the loop (temporal, after peeling).
        let b_loads: Vec<&Inst> = body
            .iter()
            .filter(|i| {
                i.op.is_load() && i.mem.and_then(|m| m.region) == Some(bsched_ir::RegionId::new(1))
            })
            .collect();
        assert!(b_loads.iter().all(|i| i.hint == LocalityHint::Hit));
    }

    #[test]
    fn factor8_marks_two_groups() {
        let mut p = figure3(16);
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = apply_locality(
            p.main_mut(),
            &LocalityOptions {
                factor: Some(8),
                max_body_insts: 256,
            },
        );
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
        let body_id = p.main().loops[stats.loops_processed[0]].body[0];
        let body = &p.main().block(body_id).insts;
        let a_loads: Vec<&Inst> = body
            .iter()
            .filter(|i| {
                i.op.is_load() && i.mem.and_then(|m| m.region) == Some(bsched_ir::RegionId::new(0))
            })
            .collect();
        assert_eq!(a_loads.len(), 8);
        let misses = a_loads
            .iter()
            .filter(|i| i.hint == LocalityHint::Miss)
            .count();
        assert_eq!(misses, 2, "two cache lines per unrolled iteration");
        let groups: std::collections::HashSet<_> = a_loads
            .iter()
            .filter_map(|i| i.mem.and_then(|m| m.line_group))
            .collect();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn dynamic_indices_are_not_classified() {
        let mut k = Kernel::new("dyn");
        let data = k.array("d", 32, ArrayInit::Random(3));
        let idx = k.array("ix", 32, ArrayInit::Zero);
        let out = k.array("o", 32, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![k.store(
            out,
            Index::of(i),
            Expr::load(
                data,
                Index::Dyn(Box::new(Expr::FloatToInt(Box::new(Expr::load(
                    idx,
                    Index::of(i),
                ))))),
            ),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(32), body));
        let p = k.lower();
        let refs = analyze_locality(p.main());
        // The idx[i] and out-load... only loads with affine addrs appear;
        // the gathered data load must NOT be classified.
        assert!(refs
            .iter()
            .all(|r| { matches!(r.kind, ReuseKind::Spatial { .. }) }));
    }

    #[test]
    fn strip_hints_removes_everything() {
        let mut p = figure3(8);
        apply_locality(p.main_mut(), &LocalityOptions::default());
        strip_hints(p.main_mut());
        for (_, b) in p.main().iter_blocks() {
            for i in &b.insts {
                assert_eq!(i.hint, LocalityHint::Unknown);
                assert_eq!(i.mem.and_then(|m| m.line_group), None);
            }
        }
    }

    #[test]
    fn pure_temporal_loop_is_peeled_only() {
        // s += B[0] each iteration.
        let mut k = Kernel::new("tmp");
        let b = k.array("B", 8, ArrayInit::Ramp(5.0, 0.0));
        let out = k.array("o", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        k.push(k.assign(s, Expr::Float(0.0)));
        let body = vec![k.assign(s, Expr::Var(s) + Expr::load(b, Index::constant(0)))];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(10), body));
        k.push(k.store(out, Index::constant(0), Expr::Var(s)));
        let mut p = k.lower();
        let want = Interp::new(&p).run().unwrap().checksum;
        let stats = apply_locality(p.main_mut(), &LocalityOptions::default());
        assert_eq!(stats.peeled, 1);
        assert_eq!(stats.unrolled, 0);
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
    }
}
