//! Cleanup passes run between the structural optimizations: local copy
//! propagation, global dead-code elimination, straight-chain block
//! merging, and counted-loop metadata refresh.

use bsched_ir::{Cfg, Dominators, Function, LoopForest, Op, Reg};
use std::collections::{HashMap, HashSet};

/// Local (per-block) copy propagation: uses of `mov dst, src` results are
/// rewritten to `src` until either register is redefined. Run
/// [`dead_code_elim`] afterwards to drop the dead moves.
pub fn copy_propagate(func: &mut Function) {
    let nblocks = func.blocks().len();
    for bi in 0..nblocks {
        let id = bsched_ir::BlockId::new(bi);
        let mut map: HashMap<Reg, Reg> = HashMap::new();
        let block = func.block_mut(id);
        for inst in &mut block.insts {
            for s in inst.srcs_mut() {
                if let Some(&to) = map.get(s) {
                    *s = to;
                }
            }
            if let Some(d) = inst.dst {
                // Any mapping through the redefined register dies.
                map.retain(|_, v| *v != d);
                map.remove(&d);
                if matches!(inst.op, Op::Mov | Op::FMov) {
                    map.insert(d, inst.srcs()[0]);
                }
            }
        }
        // The terminator condition can also be rewritten.
        if let bsched_ir::Terminator::Br { cond, .. } = &mut block.term {
            if let Some(&to) = map.get(cond) {
                *cond = to;
            }
        }
    }
}

/// Global dead-code elimination: removes instructions whose destination is
/// never used anywhere in the function (sources, store values, branch
/// conditions). Stores are never removed; dead loads are (they have no
/// architectural side effect). Iterates to a fixpoint.
///
/// Returns the number of instructions removed.
pub fn dead_code_elim(func: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: HashSet<Reg> = HashSet::new();
        for (_, block) in func.iter_blocks() {
            for inst in &block.insts {
                used.extend(inst.srcs().iter().copied());
            }
            if let Some(c) = block.term.cond_reg() {
                used.insert(c);
            }
        }
        let mut removed_this_round = 0;
        let nblocks = func.blocks().len();
        for bi in 0..nblocks {
            let id = bsched_ir::BlockId::new(bi);
            let block = func.block_mut(id);
            let before = block.insts.len();
            block.insts.retain(|inst| match inst.dst {
                Some(d) => inst.op.is_store() || used.contains(&d),
                None => true,
            });
            removed_this_round += before - block.insts.len();
        }
        removed += removed_this_round;
        if removed_this_round == 0 {
            return removed;
        }
    }
}

/// Merges straight chains: when `X` ends in an unconditional jump to `Y`,
/// `Y` has no other predecessors, and `Y` is not a loop header/latch or
/// the entry, `Y`'s contents are folded into `X`. Emptied blocks become
/// unreachable `ret` stubs (block ids stay stable).
///
/// Returns the number of merges performed.
pub fn merge_straight_chains(func: &mut Function) -> usize {
    let mut merges = 0;
    loop {
        let cfg = Cfg::new(func);
        let protected: HashSet<bsched_ir::BlockId> = func
            .loops
            .iter()
            .flat_map(|l| [l.header, l.latch])
            .chain([func.entry()])
            .collect();
        let mut did = false;
        for &x in cfg.rpo() {
            let y = match func.block(x).term {
                bsched_ir::Terminator::Jmp(y) => y,
                _ => continue,
            };
            if y == x || protected.contains(&y) || cfg.preds(y).len() != 1 {
                continue;
            }
            // Fold Y into X.
            let y_block = func.block_mut(y);
            let insts = std::mem::take(&mut y_block.insts);
            let term = std::mem::replace(&mut y_block.term, bsched_ir::Terminator::Ret);
            let x_block = func.block_mut(x);
            x_block.insts.extend(insts);
            x_block.term = term;
            // Loop metadata naming the dissolved block now means X: a
            // loop whose preheader (or exit) was folded away would
            // otherwise send later passes — e.g. the unroller's bound
            // materialization — into an unreachable stub.
            for l in &mut func.loops {
                if l.preheader == y {
                    l.preheader = x;
                }
                if l.exit == y {
                    l.exit = x;
                }
            }
            merges += 1;
            did = true;
            break; // CFG changed; recompute.
        }
        if !did {
            return merges;
        }
    }
}

/// Recomputes each [`bsched_ir::CountedLoop`]'s `body` list from the
/// natural-loop structure (header/latch anchored), dropping blocks that
/// structural passes dissolved. Loops whose header no longer anchors a
/// natural loop are left untouched.
pub fn refresh_loop_bodies(func: &mut Function) {
    let cfg = Cfg::new(func);
    let dom = Dominators::new(func, &cfg);
    let forest = LoopForest::new(&cfg, &dom);
    let updates: Vec<(usize, Vec<bsched_ir::BlockId>)> = func
        .loops
        .iter()
        .enumerate()
        .filter_map(|(i, meta)| {
            let nat = forest
                .loops()
                .iter()
                .find(|l| l.header == meta.header && l.contains(meta.latch))?;
            let mut body: Vec<_> = nat
                .blocks
                .iter()
                .copied()
                .filter(|&b| b != meta.header && b != meta.latch)
                .collect();
            body.sort_by_key(|b| b.index());
            Some((i, body))
        })
        .collect();
    for (i, body) in updates {
        func.loops[i].body = body;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{BrCond, FuncBuilder, Inst, Op, Program};

    #[test]
    fn dce_removes_dead_chain_keeps_stores() {
        let mut p = Program::new("t");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.iconst(1);
        let dead1 = b.binop_imm(Op::Add, x, 2);
        let _dead2 = b.binop_imm(Op::Mul, dead1, 3);
        let live = b.binop_imm(Op::Add, x, 5);
        b.store(live, base, 0).with_region(r).emit(&mut b);
        let _dead_load = b.load_f(base, 8).with_region(r).emit(&mut b);
        b.ret();
        let mut f = b.finish();
        let removed = dead_code_elim(&mut f);
        assert_eq!(removed, 3);
        let ops: Vec<Op> = f.block(f.entry()).insts.iter().map(|i| i.op).collect();
        assert_eq!(ops, vec![Op::LdAddr, Op::Li, Op::Add, Op::St]);
    }

    #[test]
    fn copy_prop_then_dce_removes_moves() {
        let mut p = Program::new("t");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.iconst(7);
        let y = b.unop(Op::Mov, x);
        let z = b.binop_imm(Op::Add, y, 1);
        b.store(z, base, 0).with_region(r).emit(&mut b);
        b.ret();
        let mut f = b.finish();
        copy_propagate(&mut f);
        let removed = dead_code_elim(&mut f);
        assert_eq!(removed, 1, "the mov is dead after propagation");
        // The add now reads x directly.
        let add = f
            .block(f.entry())
            .insts
            .iter()
            .find(|i| i.op == Op::Add)
            .unwrap();
        assert_eq!(add.srcs()[0], x);
    }

    #[test]
    fn copy_prop_respects_redefinition() {
        let mut b = FuncBuilder::new("m");
        let x = b.iconst(1);
        let y = b.unop(Op::Mov, x);
        // redefine x, then use y: must NOT be rewritten to (new) x.
        b.push(Inst::li(x, 99));
        let z = b.binop_imm(Op::Add, y, 0);
        let _keep = b.binop(Op::Add, z, x);
        b.ret();
        let mut f = b.finish();
        copy_propagate(&mut f);
        let add = f
            .block(f.entry())
            .insts
            .iter()
            .find(|i| i.op == Op::Add)
            .unwrap();
        assert_eq!(
            add.srcs()[0],
            y,
            "mapping must die when the source is redefined"
        );
    }

    #[test]
    fn chain_merge_folds_diamond_tail() {
        let mut b = FuncBuilder::new("m");
        let mid = b.add_block();
        let tail = b.add_block();
        let c = b.iconst(0);
        let _u = c;
        b.jmp(mid);
        b.switch_to(mid);
        let v = b.iconst(5);
        b.jmp(tail);
        b.switch_to(tail);
        let _w = b.binop_imm(Op::Add, v, 1);
        b.ret();
        let mut f = b.finish();
        let merges = merge_straight_chains(&mut f);
        assert_eq!(merges, 2, "entry<-mid<-tail all fold");
        assert_eq!(f.block(f.entry()).insts.len(), 3);
        assert!(matches!(
            f.block(f.entry()).term,
            bsched_ir::Terminator::Ret
        ));
    }

    #[test]
    fn chain_merge_keeps_loop_headers_and_latches() {
        // entry -> header; header -> body|exit; body -> latch; latch -> header.
        let mut b = FuncBuilder::new("m");
        let header = b.add_block();
        let body = b.add_block();
        let latch = b.add_block();
        let exit = b.add_block();
        let j = b.iconst(0);
        let n = b.iconst(4);
        b.jmp(header);
        b.switch_to(header);
        let c = b.binop(Op::CmpLt, j, n);
        b.br(c, BrCond::Zero, exit, body);
        b.switch_to(body);
        let _w = b.iconst(9);
        b.jmp(latch);
        b.switch_to(latch);
        b.push(Inst::op_imm(Op::Add, j, j, 1));
        b.jmp(header);
        b.switch_to(exit);
        b.ret();
        let mut f = b.finish();
        f.loops.push(bsched_ir::CountedLoop {
            header,
            body: vec![body],
            latch,
            exit,
            preheader: f.entry(),
            counter: j,
            step: 1,
            bound: bsched_ir::Bound::Reg(n),
            parent: None,
        });
        let merges = merge_straight_chains(&mut f);
        // body -> latch must NOT merge (latch protected); entry -> header
        // must NOT merge (header protected).
        assert_eq!(merges, 0);
        assert!(bsched_ir::verify_function(&f).is_ok());
    }

    #[test]
    fn refresh_bodies_after_block_dissolves() {
        let mut b = FuncBuilder::new("m");
        let header = b.add_block();
        let body1 = b.add_block();
        let body2 = b.add_block();
        let latch = b.add_block();
        let exit = b.add_block();
        let j = b.iconst(0);
        let n = b.iconst(4);
        b.jmp(header);
        b.switch_to(header);
        let c = b.binop(Op::CmpLt, j, n);
        b.br(c, BrCond::Zero, exit, body1);
        b.switch_to(body1);
        let _w = b.iconst(9);
        b.jmp(body2);
        b.switch_to(body2);
        let _w2 = b.iconst(10);
        b.jmp(latch);
        b.switch_to(latch);
        b.push(Inst::op_imm(Op::Add, j, j, 1));
        b.jmp(header);
        b.switch_to(exit);
        b.ret();
        let mut f = b.finish();
        f.loops.push(bsched_ir::CountedLoop {
            header,
            body: vec![body1, body2],
            latch,
            exit,
            preheader: f.entry(),
            counter: j,
            step: 1,
            bound: bsched_ir::Bound::Reg(n),
            parent: None,
        });
        let merges = merge_straight_chains(&mut f);
        assert_eq!(merges, 1, "body1 <- body2 folds");
        refresh_loop_bodies(&mut f);
        assert_eq!(f.loops[0].body, vec![body1]);
    }
}

/// Block-local common-subexpression elimination by value numbering.
///
/// Pure operations (and loads, until a potentially aliasing store) whose
/// operands carry the same value numbers are replaced by copies of the
/// first computation; run [`copy_propagate`] + [`dead_code_elim`]
/// afterwards. This models the Multiflow compiler's local optimization
/// level — without it the frontend's repeated address chains double every
/// loop body.
///
/// Returns the number of instructions replaced by copies.
pub fn local_cse(func: &mut Function) -> usize {
    use bsched_ir::{Inst, RegionId};
    #[derive(PartialEq, Eq, Hash)]
    struct Key {
        op: Op,
        srcs: Vec<(Reg, u32)>,
        imm: Option<i64>,
        fimm_bits: u64,
        region: Option<RegionId>,
    }
    let mut replaced = 0;
    let nblocks = func.blocks().len();
    for bi in 0..nblocks {
        let id = bsched_ir::BlockId::new(bi);
        let mut version: HashMap<Reg, u32> = HashMap::new();
        // key -> (result reg, result version at definition time)
        let mut table: HashMap<Key, (Reg, u32)> = HashMap::new();
        // Copy forwarding so CSE-inserted copies share value numbers.
        let mut copies: HashMap<Reg, Reg> = HashMap::new();
        let block = func.block_mut(id);
        let mut load_epoch: u32 = 0;
        for inst in &mut block.insts {
            let ver = |version: &HashMap<Reg, u32>, r: Reg| version.get(&r).copied().unwrap_or(0);
            let canon = |copies: &HashMap<Reg, Reg>, r: Reg| copies.get(&r).copied().unwrap_or(r);
            let cse_able = match inst.op {
                Op::St | Op::LdAddr => false,
                Op::Ld => true,
                _ => true,
            };
            if cse_able && inst.dst.is_some() {
                let mut srcs: Vec<(Reg, u32)> = inst
                    .srcs()
                    .iter()
                    .map(|&s| {
                        let c = canon(&copies, s);
                        (c, ver(&version, c))
                    })
                    .collect();
                if inst.op.is_load() {
                    // Fold the store epoch into the key so loads never
                    // match across a potentially aliasing store.
                    srcs.push((Reg::phys(bsched_ir::RegClass::Int, 0), load_epoch));
                }
                let key = Key {
                    op: inst.op,
                    srcs,
                    imm: inst.imm,
                    fimm_bits: inst.fimm.to_bits(),
                    region: inst.mem.and_then(|m| m.region),
                };
                match table.get(&key) {
                    Some(&(prev, prev_ver)) if ver(&version, prev) == prev_ver => {
                        let dst = inst.dst.expect("cse-able op defines");
                        *inst = Inst::copy(dst, prev);
                        replaced += 1;
                    }
                    _ => {
                        let dst = inst.dst.expect("cse-able op defines");
                        let new_ver = ver(&version, dst) + 1;
                        table.insert(key, (dst, new_ver));
                    }
                }
            }
            if inst.op.is_store() {
                load_epoch += 1;
            }
            if let Some(d) = inst.dst {
                *version.entry(d).or_insert(0) += 1;
                copies.retain(|_, v| *v != d);
                copies.remove(&d);
                if matches!(inst.op, Op::Mov | Op::FMov) {
                    let src = inst.srcs()[0];
                    let resolved = copies.get(&src).copied().unwrap_or(src);
                    copies.insert(d, resolved);
                }
            }
        }
    }
    replaced
}

#[cfg(test)]
mod cse_tests {
    use super::*;
    use bsched_ir::{FuncBuilder, Inst, Interp, Op, Program, RegClass};

    #[test]
    fn duplicate_address_chains_collapse() {
        let mut p = Program::new("t");
        let r = p.add_region("a", 128);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let i = b.iconst(3);
        // Two identical chains: shl/add/load.
        let t1 = b.binop_imm(Op::Shl, i, 3);
        let a1 = b.binop(Op::Add, base, t1);
        let x1 = b.load_f(a1, 0).with_region(r).emit(&mut b);
        let t2 = b.binop_imm(Op::Shl, i, 3);
        let a2 = b.binop(Op::Add, base, t2);
        let x2 = b.load_f(a2, 0).with_region(r).emit(&mut b);
        let s = b.binop(Op::FAdd, x1, x2);
        b.store(s, base, 8).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        let want = Interp::new(&p).run().unwrap().checksum;
        let n = local_cse(p.main_mut());
        assert!(n >= 3, "shl, add and load all dedup, got {n}");
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
        let loads = p
            .main()
            .block(p.main().entry())
            .insts
            .iter()
            .filter(|x| x.op.is_load())
            .count();
        assert_eq!(loads, 1, "redundant load eliminated");
    }

    #[test]
    fn stores_invalidate_load_cse() {
        let mut p = Program::new("t");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let one = b.fconst(1.0);
        let x1 = b.load_f(base, 0).with_region(r).emit(&mut b);
        b.store(one, base, 0).with_region(r).emit(&mut b);
        let x2 = b.load_f(base, 0).with_region(r).emit(&mut b); // must reload
        let s = b.binop(Op::FAdd, x1, x2);
        b.store(s, base, 8).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        let want = Interp::new(&p).run().unwrap().checksum;
        local_cse(p.main_mut());
        copy_propagate(p.main_mut());
        dead_code_elim(p.main_mut());
        assert_eq!(Interp::new(&p).run().unwrap().checksum, want);
        let loads = p
            .main()
            .block(p.main().entry())
            .insts
            .iter()
            .filter(|x| x.op.is_load())
            .count();
        assert_eq!(loads, 2, "the store kills the first load's value");
    }

    #[test]
    fn redefinition_blocks_cse() {
        let mut b = FuncBuilder::new("m");
        let x = b.iconst(5);
        let y1 = b.binop_imm(Op::Add, x, 1);
        b.push(Inst::li(x, 9)); // redefine x
        let y2 = b.binop_imm(Op::Add, x, 1); // NOT the same value
        let _z = b.binop(Op::Add, y1, y2);
        b.ret();
        let mut f = b.finish();
        let n = local_cse(&mut f);
        assert_eq!(n, 0);
    }

    #[test]
    fn reuse_of_stale_result_register_blocked() {
        let mut b = FuncBuilder::new("m");
        let x = b.iconst(5);
        let y = b.new_reg(RegClass::Int);
        b.push(Inst::op_imm(Op::Add, y, x, 1)); // y = x+1
        b.push(Inst::li(y, 0)); // y redefined!
        let y2 = b.binop_imm(Op::Add, x, 1); // same expression, y stale
        let _z = b.binop(Op::Add, y2, y);
        b.ret();
        let mut f = b.finish();
        let n = local_cse(&mut f);
        assert_eq!(n, 0, "stale result register must not be reused");
    }
}
