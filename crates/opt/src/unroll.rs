//! Counted-loop unrolling (paper §3.1) with postconditioned remainder
//! iterations (§3.3, Figure 4).
//!
//! The transformation, for an unrolling factor *f*:
//!
//! 1. The main loop's bound becomes `bound - (f-1)*step` and its latch
//!    step becomes `f*step`, so a main iteration always runs *f* original
//!    iterations.
//! 2. The body block receives *f* concatenated copies. Registers with a
//!    single def in the body are renamed per copy (loop-carried uses see
//!    the previous copy's name), so the copies are free of false
//!    dependences; conditionally-shaped (multi-def) registers keep their
//!    names, which is sequentially correct but serialising.
//! 3. Memory accesses whose address is affine in the counter
//!    (`addr = base + a·j + b`, via [`crate::linform`]) are *folded*: copy
//!    `c` reuses copy 0's address register with displacement `+a·c·step`.
//!    Together with dead-code elimination this removes the per-iteration
//!    indexing overhead — the paper's "branch and loop indexing overhead"
//!    reduction — and exposes the copies' loads as independent to the
//!    memory disambiguator (same base register, disjoint displacements).
//! 4. The remainder runs through a *postconditioned* chain of `f-1`
//!    guarded single iterations placed after the loop (the nested-`if`
//!    shape of Figure 4), so the first main-loop copy keeps its
//!    cache-line alignment for locality analysis.

use crate::linform::{defined_regs, LinEnv};
use bsched_ir::{Block, BlockId, Bound, BrCond, Function, Inst, Op, Reg, Terminator};
use std::collections::HashMap;

/// Unrolling limits (paper §4.2: "We disabled loop unrolling when the
/// unrolled block reached 64 instructions (4) or 128 (8)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrollLimits {
    /// The unrolling factor (≥ 2).
    pub factor: u32,
    /// Maximum size of the unrolled body block, in instructions.
    pub max_body_insts: usize,
}

impl UnrollLimits {
    /// The paper's limits for a given factor: 64 instructions at factor 4,
    /// 128 at factor 8, `16·f` otherwise.
    #[must_use]
    pub fn for_factor(factor: u32) -> Self {
        let max_body_insts = match factor {
            4 => 64,
            8 => 128,
            f => 16 * f as usize,
        };
        UnrollLimits {
            factor,
            max_body_insts,
        }
    }
}

/// Where the copies of each original body instruction landed.
#[derive(Debug, Clone)]
pub struct UnrollResult {
    /// The unrolled body block.
    pub body: BlockId,
    /// `main_copy_map[c][i]` = index in the body block of copy `c` of
    /// original body instruction `i`.
    pub main_copy_map: Vec<Vec<usize>>,
    /// For each postcondition iteration `k` (0-based), its body block and
    /// the per-original-instruction indices inside it.
    pub post_copies: Vec<(BlockId, Vec<usize>)>,
}

fn fits_disp(d: i64) -> bool {
    (-32000..=32000).contains(&d)
}

/// True when every path from the function entry to `header` passes
/// through `preheader` — i.e. code placed in the preheader is guaranteed
/// to execute before the loop is entered. Checked by deleting the
/// preheader from the graph: if the header is still reachable, some
/// path bypasses it.
fn preheader_dominates_header(func: &Function, preheader: BlockId, header: BlockId) -> bool {
    if preheader == header {
        return false;
    }
    let mut seen = vec![false; func.blocks().len()];
    let mut stack = vec![func.entry()];
    while let Some(b) = stack.pop() {
        if b == preheader || std::mem::replace(&mut seen[b.index()], true) {
            continue;
        }
        if b == header {
            return false;
        }
        stack.extend(func.block(b).term.successors());
    }
    true
}

/// Checks a loop against the canonical shape and the limits; returns the
/// body block if unrollable.
fn unrollable_body(func: &Function, loop_idx: usize, limits: &UnrollLimits) -> Option<BlockId> {
    let l = &func.loops[loop_idx];
    if limits.factor < 2 || l.step <= 0 {
        return None;
    }
    // Innermost only.
    if func.loops.iter().any(|o| o.parent == Some(loop_idx)) {
        return None;
    }
    // Single-block body jumping to the latch (loops with internal
    // conditionals that predication could not remove are skipped, like the
    // paper's multi-conditional loops).
    if l.body.len() != 1 {
        return None;
    }
    let body = l.body[0];
    if func.block(body).term != Terminator::Jmp(l.latch) {
        return None;
    }
    // The unroller materializes the adjusted bound in the preheader, so
    // the preheader must gate every entry into the loop. A stale
    // preheader (one a structural pass dissolved without updating loop
    // metadata) is dead or bypassed and must be refused, not written
    // into. Peeling is still fine: its guard chain hangs off the real
    // preheader.
    if !preheader_dominates_header(func, l.preheader, l.header) {
        return None;
    }
    // Canonical latch: exactly the counter increment.
    let latch = func.block(l.latch);
    if latch.insts.len() != 1 {
        return None;
    }
    let inc = &latch.insts[0];
    if inc.op != Op::Add
        || inc.dst != Some(l.counter)
        || inc.srcs() != [l.counter]
        || inc.imm != Some(l.step)
    {
        return None;
    }
    // Canonical header: one compare, branch-on-zero to the exit.
    let header = func.block(l.header);
    if header.insts.len() != 1 || header.insts[0].op != Op::CmpLt {
        return None;
    }
    match header.term {
        Terminator::Br {
            when: BrCond::Zero,
            fall,
            ..
        } if fall == body => {}
        _ => return None,
    }
    // Counter must not be redefined in the body.
    if func
        .block(body)
        .insts
        .iter()
        .any(|i| i.dst == Some(l.counter))
    {
        return None;
    }
    // Size limit.
    if func.block(body).len() * limits.factor as usize > limits.max_body_insts {
        return None;
    }
    Some(body)
}

/// Unrolls one counted loop in place. Returns `None` (leaving the function
/// untouched) when the loop is not unrollable under the canonical-shape
/// rules or the size limit.
pub fn unroll_loop(
    func: &mut Function,
    loop_idx: usize,
    limits: &UnrollLimits,
) -> Option<UnrollResult> {
    let body_id = unrollable_body(func, loop_idx, limits)?;
    let l = func.loops[loop_idx].clone();
    let fac = limits.factor as usize;
    let s = l.step;

    // --- 1. Main-loop bound: bound - (f-1)*step, materialised in the
    // preheader (before its terminator).
    let bm = func.new_reg(bsched_ir::RegClass::Int);
    let bm_inst = match l.bound {
        Bound::Imm(v) => Inst::li(bm, v - (fac as i64 - 1) * s),
        Bound::Reg(r) => Inst::op_imm(Op::Sub, bm, r, (fac as i64 - 1) * s),
    };
    func.block_mut(l.preheader).insts.push(bm_inst);
    let cmp_dst = func.block(l.header).insts[0]
        .dst
        .expect("compare defines its flag");
    func.block_mut(l.header).insts[0] = Inst::op(Op::CmpLt, cmp_dst, &[l.counter, bm]);

    // --- 2. Linear forms and renamability over the original body.
    let orig_body: Vec<Inst> = func.block(body_id).insts.clone();
    let defined = defined_regs([
        orig_body.as_slice(),
        func.block(l.latch).insts.as_slice(),
        func.block(l.header).insts.as_slice(),
    ]);
    // Address forms *at each use site*: scan and capture before stepping.
    let mut env = LinEnv::new(l.counter, defined.clone());
    let mut addr_form = vec![None; orig_body.len()];
    for (i, inst) in orig_body.iter().enumerate() {
        if inst.op.is_memory() {
            addr_form[i] = env.lookup(inst.mem_base());
        }
        env.step(inst);
    }
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    for inst in &orig_body {
        if let Some(d) = inst.dst {
            *def_count.entry(d).or_insert(0) += 1;
        }
    }
    let renameable = |r: Reg| def_count.get(&r).copied() == Some(1);
    // An address register is reusable across copies if copy 0's name is
    // stable: invariant, the counter itself, or a single-def body reg.
    let addr_reusable = |r: Reg| r == l.counter || !defined.contains(&r) || renameable(r);
    // Loop-carried (or used-after-loop) registers must hold their value in
    // the *original* name whenever control reaches the header, so the
    // final copy writes them back under their original names.
    let live = {
        let cfg = bsched_ir::Cfg::new(func);
        bsched_ir::Liveness::new(func, &cfg)
    };
    let writeback: std::collections::HashSet<Reg> = live
        .live_in(l.header)
        .iter()
        .copied()
        .filter(|&r| renameable(r))
        .collect();

    // --- 3. Emit the f copies.
    let mut new_insts: Vec<Inst> = Vec::with_capacity(orig_body.len() * fac + fac);
    let mut main_copy_map: Vec<Vec<usize>> = Vec::with_capacity(fac);
    // copy 0: identity.
    main_copy_map.push((0..orig_body.len()).collect());
    for inst in &orig_body {
        let mut ni = inst.clone();
        if let Some(m) = &mut ni.mem {
            m.line_group = None;
        }
        new_insts.push(ni);
    }

    let mut carried: HashMap<Reg, Reg> = HashMap::new();
    for c in 1..fac {
        let mut jc: Option<Reg> = None;
        let mut map = Vec::with_capacity(orig_body.len());
        for (i, inst) in orig_body.iter().enumerate() {
            let mut ni = inst.clone();
            if let Some(m) = &mut ni.mem {
                m.line_group = None;
            }
            // Address folding.
            let mut folded_src: Option<usize> = None;
            if ni.op.is_memory() {
                let a_idx = if ni.op.is_load() { 0 } else { 1 };
                let a = inst.srcs()[a_idx];
                if let Some(form) = addr_form[i] {
                    let delta = form.a * c as i64 * s;
                    let new_disp = inst.mem_disp() + delta;
                    if addr_reusable(a) && fits_disp(new_disp) {
                        ni.srcs_mut()[a_idx] = a; // copy 0's name
                        ni.imm = Some(new_disp);
                        folded_src = Some(a_idx);
                    }
                }
            }
            // Rename remaining sources.
            for (k, src) in ni.srcs_mut().iter_mut().enumerate() {
                if folded_src == Some(k) {
                    continue;
                }
                if *src == l.counter {
                    let j = *jc.get_or_insert_with(|| {
                        let j = func.new_reg(bsched_ir::RegClass::Int);
                        new_insts.push(Inst::op_imm(Op::Add, j, l.counter, c as i64 * s));
                        j
                    });
                    *src = j;
                } else if let Some(&nn) = carried.get(src) {
                    *src = nn;
                }
            }
            // Rename the destination; the final copy writes loop-carried
            // registers back under their original names.
            if let Some(d) = ni.dst {
                if renameable(d) {
                    if c == fac - 1 && writeback.contains(&d) {
                        carried.insert(d, d);
                    } else {
                        let nd = func.new_reg(d.class());
                        carried.insert(d, nd);
                        ni.dst = Some(nd);
                    }
                }
            }
            map.push(new_insts.len());
            new_insts.push(ni);
        }
        main_copy_map.push(map);
    }
    func.block_mut(body_id).insts = new_insts;

    // --- 4. Latch step becomes f*s.
    func.block_mut(l.latch).insts[0] = Inst::op_imm(Op::Add, l.counter, l.counter, fac as i64 * s);

    // --- 5. Postcondition chain of f-1 guarded iterations.
    let final_exit = l.exit;
    let mut post_heads: Vec<BlockId> = Vec::new();
    let mut post_copies: Vec<(BlockId, Vec<usize>)> = Vec::new();
    for _ in 0..fac - 1 {
        let test = func.add_block(Block::new(Terminator::Ret));
        let pb = func.add_block(Block::new(Terminator::Ret));
        post_heads.push(test);
        post_copies.push((pb, Vec::new()));
    }
    for k in 0..fac - 1 {
        let test = post_heads[k];
        let (pb, _) = post_copies[k];
        let next = if k + 1 < fac - 1 {
            post_heads[k + 1]
        } else {
            final_exit
        };
        // Test block: `t = cmplt counter, bound; br.z -> exit`.
        let t = func.new_reg(bsched_ir::RegClass::Int);
        let cmp = match l.bound {
            Bound::Imm(v) => Inst::op_imm(Op::CmpLt, t, l.counter, v),
            Bound::Reg(r) => Inst::op(Op::CmpLt, t, &[l.counter, r]),
        };
        func.block_mut(test).insts.push(cmp);
        func.block_mut(test).term = Terminator::Br {
            cond: t,
            when: BrCond::Zero,
            taken: final_exit,
            fall: pb,
        };
        // Body copy: identity names, hints and groups stripped, plus the
        // counter increment.
        let mut idxs = Vec::with_capacity(orig_body.len());
        {
            let pb_block = func.block_mut(pb);
            for inst in &orig_body {
                let mut ni = inst.clone();
                ni.hint = bsched_ir::LocalityHint::Unknown;
                if let Some(m) = &mut ni.mem {
                    m.line_group = None;
                }
                idxs.push(pb_block.insts.len());
                pb_block.insts.push(ni);
            }
            pb_block
                .insts
                .push(Inst::op_imm(Op::Add, l.counter, l.counter, s));
            pb_block.term = Terminator::Jmp(next);
        }
        post_copies[k].1 = idxs;
    }
    // Retarget the header's exit edge into the chain.
    if let Terminator::Br { taken, .. } = &mut func.block_mut(l.header).term {
        *taken = post_heads[0];
    }

    // --- 6. Update the loop metadata to the transformed loop.
    let meta = &mut func.loops[loop_idx];
    meta.step = fac as i64 * s;
    meta.bound = Bound::Reg(bm);
    meta.exit = post_heads[0];

    Some(UnrollResult {
        body: body_id,
        main_copy_map,
        post_copies,
    })
}

/// Unrolls every innermost counted loop of the function. Returns the
/// results of the loops that were actually unrolled, keyed by loop index.
pub fn unroll_function(func: &mut Function, limits: &UnrollLimits) -> Vec<(usize, UnrollResult)> {
    let mut out = Vec::new();
    for idx in func.innermost_loops() {
        if let Some(r) = unroll_loop(func, idx, limits) {
            out.push((idx, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Program};
    use bsched_workloads::lang::ast::{Expr, Index, Stmt};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    fn axpy(n: i64) -> Program {
        let mut k = Kernel::new("axpy");
        let x = k.array("x", n.max(1) as u64, ArrayInit::Ramp(0.0, 1.0));
        let y = k.array("y", n.max(1) as u64, ArrayInit::Ramp(1.0, 0.5));
        let i = k.int_var("i");
        let body = vec![k.store(
            y,
            Index::of(i),
            Expr::load(x, Index::of(i)) * Expr::Float(2.0) + Expr::load(y, Index::of(i)),
        )];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.lower()
    }

    fn checksum(p: &Program) -> u64 {
        Interp::new(p).run().unwrap().checksum
    }

    #[test]
    fn unroll_preserves_semantics_all_trip_counts() {
        for n in [0, 1, 3, 4, 5, 7, 8, 16, 17] {
            for factor in [2u32, 4, 8] {
                let mut p = axpy(n);
                let want = checksum(&p);
                let r = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(factor));
                assert!(r.is_some(), "axpy should be unrollable (n={n}, f={factor})");
                assert!(bsched_ir::verify_program(&p).is_ok());
                assert_eq!(checksum(&p), want, "n={n}, factor={factor}");
            }
        }
    }

    #[test]
    fn unroll_reduces_dynamic_instruction_count() {
        let mut p = axpy(64);
        let before = Interp::new(&p).run().unwrap();
        unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).unwrap();
        crate::cleanup::copy_propagate(p.main_mut());
        crate::cleanup::dead_code_elim(p.main_mut());
        let after = Interp::new(&p).run().unwrap();
        assert_eq!(checksum(&p), checksum(&axpy(64)));
        assert!(
            after.inst_count < before.inst_count,
            "unrolling + cleanup must remove overhead: {} -> {}",
            before.inst_count,
            after.inst_count
        );
        assert!(after.branch_count < before.branch_count);
    }

    #[test]
    fn addresses_fold_into_displacements() {
        let mut p = axpy(64);
        let r = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).unwrap();
        let body = &p.main().block(r.body).insts;
        // The four copies of the x-load must reuse one address register
        // with displacements 0, 8, 16, 24.
        let x_loads: Vec<&bsched_ir::Inst> = body
            .iter()
            .filter(|i| {
                i.op.is_load() && i.mem.and_then(|m| m.region) == Some(bsched_ir::RegionId::new(0))
            })
            .collect();
        assert_eq!(x_loads.len(), 4);
        let base = x_loads[0].mem_base();
        let mut disps: Vec<i64> = x_loads.iter().map(|l| l.mem_disp()).collect();
        disps.sort_unstable();
        assert_eq!(disps, vec![0, 8, 16, 24]);
        assert!(
            x_loads.iter().all(|l| l.mem_base() == base),
            "all copies reuse one address register"
        );
    }

    #[test]
    fn accumulator_renaming_is_correct() {
        // s = 0; for i in 0..n { s = s + a[i] }; out[0] = s
        let n = 13;
        let mut k = Kernel::new("sum");
        let a = k.array("a", n as u64, ArrayInit::Ramp(1.0, 1.0));
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        k.push(k.assign(s, Expr::Float(0.0)));
        let body = vec![k.assign(s, Expr::Var(s) + Expr::load(a, Index::of(i)))];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.push(k.store(out, Index::constant(0), Expr::Var(s)));
        let mut p = k.lower();
        let want = checksum(&p);
        unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).unwrap();
        assert_eq!(checksum(&p), want);
        // The four adds must form a renamed chain, not four writes to one
        // register.
        let body_id = p.main().loops[0].body[0];
        let adds: Vec<_> = p
            .main()
            .block(body_id)
            .insts
            .iter()
            .filter(|x| x.op == bsched_ir::Op::FAdd)
            .collect();
        assert_eq!(adds.len(), 4);
        // Copies 1..3 are renamed; the final copy writes the accumulator
        // back under its original (loop-carried) name, which copy 0 also
        // wrote — so three distinct destinations.
        let dsts: std::collections::HashSet<_> = adds.iter().map(|x| x.dst.unwrap()).collect();
        assert_eq!(
            dsts.len(),
            3,
            "interior copies are renamed, tail writes back"
        );
        // The adds chain: each reads the previous add's destination.
        for w in adds.windows(2) {
            assert_eq!(w[1].srcs()[0], w[0].dst.unwrap(), "carried chain broken");
        }
    }

    #[test]
    fn refuses_non_innermost_and_oversized() {
        // Nest: outer loop is not innermost.
        let mut k = Kernel::new("nest");
        let a = k.array("a", 64, ArrayInit::Zero);
        let i = k.int_var("i");
        let j = k.int_var("j");
        let inner = vec![k.store(a, Index::two(i, 8, j, 1, 0), Expr::Float(1.0))];
        let outer = vec![k.for_loop(j, Expr::Int(0), Expr::Int(8), inner)];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(8), outer));
        let mut p = k.lower();
        assert!(unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).is_none());
        assert!(unroll_loop(p.main_mut(), 1, &UnrollLimits::for_factor(4)).is_some());

        // Oversized body.
        let mut k2 = Kernel::new("big");
        let a2 = k2.array("a", 64, ArrayInit::Zero);
        let i2 = k2.int_var("i");
        let body: Vec<Stmt> = (0..20)
            .map(|off| k2.store(a2, Index::of_plus(i2, off % 4), Expr::Float(off as f64)))
            .collect();
        k2.push(k2.for_loop(i2, Expr::Int(0), Expr::Int(4), body));
        let mut p2 = k2.lower();
        // body has ~20 stores + address code > 16 insts; factor 4 limit 64.
        let body_len = p2.main().block(p2.main().loops[0].body[0]).len();
        assert!(body_len * 4 > 64);
        assert!(unroll_loop(p2.main_mut(), 0, &UnrollLimits::for_factor(4)).is_none());
    }

    #[test]
    fn refuses_multi_block_bodies() {
        use bsched_workloads::lang::ast::CmpOp;
        let mut k = Kernel::new("branchy");
        let a = k.array("a", 16, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(8)),
            then_: vec![k.store(a, Index::of(i), Expr::Float(1.0))],
            else_: vec![k.store(a, Index::of(i), Expr::Float(2.0))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(16), body));
        let mut p = k.lower();
        assert!(unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).is_none());
    }

    #[test]
    fn unroll_function_unrolls_inner_of_nest() {
        let mut k = Kernel::new("nest");
        let a = k.array("a", 64, ArrayInit::Zero);
        let i = k.int_var("i");
        let j = k.int_var("j");
        let inner = vec![k.store(a, Index::two(i, 8, j, 1, 0), Expr::Float(3.0))];
        let outer = vec![k.for_loop(j, Expr::Int(0), Expr::Int(8), inner)];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(8), outer));
        let mut p = k.lower();
        let want = checksum(&p);
        let done = unroll_function(p.main_mut(), &UnrollLimits::for_factor(4));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 1, "only the inner loop unrolls");
        assert_eq!(checksum(&p), want);
    }

    #[test]
    fn stale_preheader_metadata_is_refused_not_miscompiled() {
        // An `if` before a nested loop: predication dissolves the if's
        // join block — which is the inner loop's preheader — into the
        // outer body. Found by the bsched-verify fuzzer: unrolling then
        // materialized the adjusted bound into the dead stub, so the
        // main loop never ran. The merge pass now retargets the loop
        // metadata, and this shape must unroll *and* stay correct.
        use bsched_workloads::lang::ast::CmpOp;
        let mut k = Kernel::new("join_preheader");
        let a = k.array("a", 20, ArrayInit::Ramp(0.5, 0.25));
        let s0 = k.float_var("s0");
        let s1 = k.float_var("s1");
        let i = k.int_var("i");
        let j = k.int_var("j");
        k.push(k.assign(s0, Expr::Float(0.5)));
        k.push(k.assign(s1, Expr::Float(0.25)));
        let inner = vec![k.store(
            a,
            Index::of_plus(j, 1),
            Expr::IntToFloat(Box::new(Expr::Var(j))) * Expr::Float(2.0),
        )];
        let body = vec![
            Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(1)),
                then_: vec![k.assign(s1, Expr::div(Expr::Var(s0), Expr::Float(1.5)))],
                else_: vec![],
            },
            k.for_loop(j, Expr::Int(0), Expr::Int(10), inner),
        ];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(3), body));
        k.push(k.store(a, Index::constant(0), Expr::Var(s1)));
        let mut p = k.lower();
        let want = checksum(&p);
        crate::predicate::predicate_function(p.main_mut());
        assert_eq!(checksum(&p), want);
        let inner_idx = p
            .main()
            .loops
            .iter()
            .position(|l| l.parent.is_some())
            .expect("nest survives predication");
        let r = unroll_loop(p.main_mut(), inner_idx, &UnrollLimits::for_factor(8));
        assert!(r.is_some(), "retargeted preheader metadata must unroll");
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert_eq!(checksum(&p), want, "unrolled nest diverged");
    }

    #[test]
    fn copy_map_points_at_real_copies() {
        let mut p = axpy(32);
        let r = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4)).unwrap();
        let body = &p.main().block(r.body).insts;
        let orig_len = r.main_copy_map[0].len();
        for c in 0..4 {
            assert_eq!(r.main_copy_map[c].len(), orig_len);
            for i in 0..orig_len {
                let inst = &body[r.main_copy_map[c][i]];
                // Same opcode as the original instruction.
                assert_eq!(
                    inst.op, body[r.main_copy_map[0][i]].op,
                    "copy {c} inst {i} changed opcode"
                );
            }
        }
        assert_eq!(r.post_copies.len(), 3);
        for (pb, idxs) in &r.post_copies {
            assert_eq!(idxs.len(), orig_len);
            // Post block ends with increment + jump.
            assert_eq!(p.main().block(*pb).insts.len(), orig_len + 1);
        }
    }
}
