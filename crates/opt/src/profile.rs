//! Edge-frequency profiles for trace selection.
//!
//! The paper's methodology (§4.2): "we first profiled the programs to
//! determine basic block execution frequencies. This information guided
//! the Multiflow compiler in picking traces." Here the profile comes from
//! a run of the reference interpreter on the same program.

use bsched_ir::{BlockId, Interp, Profile, Program};

/// Block and edge frequencies used by the trace picker.
#[derive(Debug, Clone, Default)]
pub struct EdgeProfile {
    profile: Profile,
}

impl EdgeProfile {
    /// Wraps an interpreter profile.
    #[must_use]
    pub fn new(profile: Profile) -> Self {
        EdgeProfile { profile }
    }

    /// Profiles `program` by running it on the reference interpreter.
    ///
    /// # Errors
    ///
    /// Propagates interpreter failures (fuel exhaustion, wild stores).
    pub fn collect(program: &Program) -> Result<Self, bsched_ir::ExecError> {
        Ok(EdgeProfile::new(Interp::new(program).run()?.profile))
    }

    /// Execution count of a block.
    #[must_use]
    pub fn block(&self, b: BlockId) -> u64 {
        self.profile.block(b)
    }

    /// Execution count of an edge.
    #[must_use]
    pub fn edge(&self, from: BlockId, to: BlockId) -> u64 {
        self.profile.edge(from, to)
    }

    /// The most frequent successor of `b` among `succs`, if any was ever
    /// taken.
    #[must_use]
    pub fn hottest_succ(&self, b: BlockId, succs: &[BlockId]) -> Option<BlockId> {
        succs
            .iter()
            .copied()
            .map(|s| (self.edge(b, s), s))
            .filter(|&(n, _)| n > 0)
            .max_by_key(|&(n, s)| (n, std::cmp::Reverse(s.index())))
            .map(|(_, s)| s)
    }

    /// The most frequent predecessor of `b` among `preds`, if any.
    #[must_use]
    pub fn hottest_pred(&self, b: BlockId, preds: &[BlockId]) -> Option<BlockId> {
        preds
            .iter()
            .copied()
            .map(|p| (self.edge(p, b), p))
            .filter(|&(n, _)| n > 0)
            .max_by_key(|&(n, p)| (n, std::cmp::Reverse(p.index())))
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    #[test]
    fn profile_identifies_hot_arm() {
        let mut k = Kernel::new("hot");
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.int_var("s");
        k.push(k.assign(s, Expr::Int(0)));
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::Var(i), Expr::Int(90)),
            then_: vec![k.assign(s, Expr::Var(s) + Expr::Int(1))],
            else_: vec![k.assign(s, Expr::Var(s) + Expr::Int(1000))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(100), body));
        k.push(k.store(
            out,
            Index::constant(0),
            Expr::IntToFloat(Box::new(Expr::Var(s))),
        ));
        let p = k.lower();
        let prof = EdgeProfile::collect(&p).unwrap();
        // Find the if's branch block: the body's first block.
        let body0 = p.main().loops[0].body[0];
        let succs = match &p.main().block(body0).term {
            bsched_ir::Terminator::Br { taken, fall, .. } => vec![*taken, *fall],
            t => panic!("expected branch, found {t:?}"),
        };
        let hot = prof.hottest_succ(body0, &succs).unwrap();
        assert_eq!(hot, succs[0], "then-arm runs 90 of 100 iterations");
        assert_eq!(prof.edge(body0, succs[0]), 90);
        assert_eq!(prof.edge(body0, succs[1]), 10);
        assert_eq!(prof.block(body0), 100);
    }
}
