//! Linear-form analysis: expressing integer register values as affine
//! functions of a loop counter.
//!
//! `value = opaque + a * counter + b`, where `opaque` stands for an
//! arbitrary *loop-invariant* quantity (a region base, an outer-loop row
//! offset, any combination of invariants). Unrolling uses the form to fold
//! per-copy address recomputations into load/store displacements — only
//! the coefficient `a` matters, because copy `c` reuses copy 0's address
//! register and adds `a·c·step` to the displacement. Locality analysis
//! uses it to classify array references as spatial (`a` equals a small
//! element stride) or temporal (`a == 0`).

use bsched_ir::{Inst, Op, Reg};
use std::collections::{HashMap, HashSet};

/// An affine value: `(opaque invariant part) + a * counter + b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinForm {
    /// Coefficient of the loop counter.
    pub a: i64,
    /// Constant term.
    pub b: i64,
    /// `true` when the value additionally contains an unresolved
    /// loop-invariant part.
    pub opaque: bool,
}

impl LinForm {
    /// A pure constant.
    #[must_use]
    pub fn constant(b: i64) -> Self {
        LinForm {
            a: 0,
            b,
            opaque: false,
        }
    }

    /// The counter itself.
    #[must_use]
    pub fn counter() -> Self {
        LinForm {
            a: 1,
            b: 0,
            opaque: false,
        }
    }

    /// An opaque loop-invariant value.
    #[must_use]
    pub fn invariant() -> Self {
        LinForm {
            a: 0,
            b: 0,
            opaque: true,
        }
    }

    /// `true` when the value does not vary with the counter.
    #[must_use]
    pub fn is_invariant(&self) -> bool {
        self.a == 0
    }

    fn add(self, o: LinForm) -> Option<LinForm> {
        Some(LinForm {
            a: self.a.checked_add(o.a)?,
            b: self.b.checked_add(o.b)?,
            opaque: self.opaque || o.opaque,
        })
    }

    fn sub(self, o: LinForm) -> Option<LinForm> {
        Some(LinForm {
            a: self.a.checked_sub(o.a)?,
            b: self.b.checked_sub(o.b)?,
            // The difference of invariants is still invariant.
            opaque: self.opaque || o.opaque,
        })
    }

    fn shl(self, k: i64) -> Option<LinForm> {
        if !(0..63).contains(&k) {
            return None;
        }
        if self.opaque {
            // (inv + a·j + b) << k distributes only when a == 0:
            // the result is again invariant.
            return self.is_invariant().then(LinForm::invariant);
        }
        Some(LinForm {
            a: self.a.checked_shl(k as u32)?,
            b: self.b.checked_shl(k as u32)?,
            opaque: false,
        })
    }

    fn mul(self, m: i64) -> Option<LinForm> {
        if self.opaque {
            return self.is_invariant().then(LinForm::invariant);
        }
        Some(LinForm {
            a: self.a.checked_mul(m)?,
            b: self.b.checked_mul(m)?,
            opaque: false,
        })
    }
}

/// Forward linear-form environment over a straight-line region.
#[derive(Debug)]
pub struct LinEnv {
    counter: Reg,
    /// Registers defined inside the region (everything else is invariant).
    defined_in_region: HashSet<Reg>,
    map: HashMap<Reg, Option<LinForm>>,
}

impl LinEnv {
    /// Creates an environment for a region whose loop counter is
    /// `counter`. `defined_in_region` must contain every register the
    /// region defines, so outside registers are treated as loop-invariant.
    #[must_use]
    pub fn new(counter: Reg, defined_in_region: HashSet<Reg>) -> Self {
        LinEnv {
            counter,
            defined_in_region,
            map: HashMap::new(),
        }
    }

    /// The linear form of `r` at the current scan point, if known.
    #[must_use]
    pub fn lookup(&self, r: Reg) -> Option<LinForm> {
        if r == self.counter {
            return Some(LinForm::counter());
        }
        if !self.defined_in_region.contains(&r) {
            return Some(LinForm::invariant());
        }
        self.map.get(&r).copied().flatten()
    }

    /// Advances the scan over one instruction, recording the destination's
    /// linear form (or poisoning it when the operation is not affine).
    pub fn step(&mut self, inst: &Inst) {
        let Some(dst) = inst.dst else { return };
        if dst.class() != bsched_ir::RegClass::Int {
            self.map.insert(dst, None);
            return;
        }
        let mut form = self.eval(inst);
        if form.is_none() && !inst.op.is_memory() {
            // Fallback: a pure op over loop-invariant inputs is invariant.
            // Registers defined in the region are invariant only when
            // their tracked (integer) form says so; region-defined floats
            // are never invariant.
            let all_invariant = inst.srcs().iter().all(|&s| {
                if s.class() == bsched_ir::RegClass::Int {
                    // lookup() handles the counter and out-of-region regs.
                    self.lookup(s).is_some_and(|f| f.is_invariant())
                } else {
                    !self.defined_in_region.contains(&s)
                }
            });
            if all_invariant {
                form = Some(LinForm::invariant());
            }
        }
        self.map.insert(dst, form);
    }

    fn eval(&self, inst: &Inst) -> Option<LinForm> {
        let src = |k: usize| self.lookup(inst.srcs()[k]);
        let rhs = || -> Option<LinForm> {
            match inst.imm {
                Some(v) => Some(LinForm::constant(v)),
                None => src(1),
            }
        };
        match inst.op {
            Op::Li => Some(LinForm::constant(inst.imm?)),
            Op::Mov => src(0),
            Op::Add => src(0)?.add(rhs()?),
            Op::Sub => src(0)?.sub(rhs()?),
            Op::Shl => {
                let sh = rhs()?;
                if sh.opaque || sh.a != 0 {
                    return None;
                }
                src(0)?.shl(sh.b)
            }
            Op::Mul => {
                let m = rhs()?;
                if !m.opaque && m.a == 0 {
                    return src(0)?.mul(m.b);
                }
                let l = src(0)?;
                if !l.opaque && l.a == 0 {
                    return rhs()?.mul(l.b);
                }
                None
            }
            _ => None,
        }
    }
}

/// Computes the linear form of every instruction's destination over a
/// straight-line instruction sequence; entry `i` corresponds to
/// instruction `i`'s destination (None for stores / non-affine results).
#[must_use]
pub fn scan_block(
    insts: &[Inst],
    counter: Reg,
    defined_in_region: HashSet<Reg>,
) -> Vec<Option<LinForm>> {
    let mut env = LinEnv::new(counter, defined_in_region);
    let mut out = Vec::with_capacity(insts.len());
    for inst in insts {
        env.step(inst);
        out.push(inst.dst.and_then(|d| env.lookup(d)));
    }
    out
}

/// Collects every register defined by the given instruction slices.
#[must_use]
pub fn defined_regs<'a>(regions: impl IntoIterator<Item = &'a [Inst]>) -> HashSet<Reg> {
    let mut set = HashSet::new();
    for insts in regions {
        for i in insts {
            if let Some(d) = i.dst {
                set.insert(d);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{RegClass, RegionId};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }

    #[test]
    fn address_chain_is_affine_in_counter() {
        // j = counter; t = j << 3; addr = base + t; (base invariant)
        let j = r(0);
        let t = r(1);
        let base = r(2);
        let addr = r(3);
        let insts = vec![
            Inst::op_imm(Op::Shl, t, j, 3),
            Inst::op(Op::Add, addr, &[base, t]),
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(
            forms[0],
            Some(LinForm {
                a: 8,
                b: 0,
                opaque: false
            })
        );
        assert_eq!(
            forms[1],
            Some(LinForm {
                a: 8,
                b: 0,
                opaque: true
            })
        );
    }

    #[test]
    fn two_dimensional_row_major_chain() {
        // Inner loop over j, outer counter i invariant:
        // ti = i << 6; acc = add ti, tj; tj = j << 3; addr = base + acc.
        let j = r(0);
        let i = r(9); // invariant here
        let ti = r(1);
        let tj = r(2);
        let acc = r(3);
        let base = r(8);
        let addr = r(4);
        let insts = vec![
            Inst::op_imm(Op::Shl, ti, i, 6),
            Inst::op_imm(Op::Shl, tj, j, 3),
            Inst::op(Op::Add, acc, &[ti, tj]),
            Inst::op(Op::Add, addr, &[base, acc]),
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(
            forms[0],
            Some(LinForm::invariant()),
            "i<<6 is invariant in j"
        );
        assert_eq!(
            forms[2],
            Some(LinForm {
                a: 8,
                b: 0,
                opaque: true
            })
        );
        assert_eq!(
            forms[3],
            Some(LinForm {
                a: 8,
                b: 0,
                opaque: true
            })
        );
    }

    #[test]
    fn constants_and_offsets() {
        let j = r(0);
        let x = r(1);
        let y = r(2);
        let insts = vec![
            Inst::op_imm(Op::Add, x, j, 5), // j + 5
            Inst::op_imm(Op::Mul, y, x, 3), // 3j + 15
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(
            forms[0],
            Some(LinForm {
                a: 1,
                b: 5,
                opaque: false
            })
        );
        assert_eq!(
            forms[1],
            Some(LinForm {
                a: 3,
                b: 15,
                opaque: false
            })
        );
    }

    #[test]
    fn invariant_combinations_stay_invariant() {
        let j = r(0);
        let a = r(8);
        let b = r(9);
        let s = r(1);
        let m = r(2);
        let insts = vec![
            Inst::op(Op::Add, s, &[a, b]),  // inv + inv
            Inst::op_imm(Op::Shl, m, s, 4), // inv << 4
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert!(forms[0].unwrap().is_invariant());
        assert!(forms[1].unwrap().is_invariant());
    }

    #[test]
    fn non_affine_poisons() {
        let j = r(0);
        let x = r(1);
        let y = r(2);
        let insts = vec![
            Inst::op(Op::Mul, x, &[j, j]),  // j*j: not affine
            Inst::op_imm(Op::Add, y, x, 1), // poisoned transitively
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(forms[0], None);
        assert_eq!(forms[1], None);
    }

    #[test]
    fn scaled_counter_with_opaque_part_fails_to_shift() {
        // (base + j) << 3: coefficient of the opaque part would change.
        let j = r(0);
        let base = r(8);
        let s = r(1);
        let t = r(2);
        let insts = vec![
            Inst::op(Op::Add, s, &[base, j]),
            Inst::op_imm(Op::Shl, t, s, 3),
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(forms[1], None);
    }

    #[test]
    fn redefinition_updates_form() {
        let j = r(0);
        let x = r(1);
        let insts = vec![
            Inst::op_imm(Op::Add, x, j, 1), // x = j+1
            Inst::op_imm(Op::Add, x, x, 1), // x = j+2
        ];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(
            forms[1],
            Some(LinForm {
                a: 1,
                b: 2,
                opaque: false
            })
        );
    }

    #[test]
    fn loads_poison_their_destination() {
        let j = r(0);
        let x = r(1);
        let insts = vec![Inst::load(x, j, 0).with_region(RegionId::new(0))];
        let defs = defined_regs([insts.as_slice()]);
        let forms = scan_block(&insts, j, defs);
        assert_eq!(forms[0], None);
    }
}
