//! `bsched-opt` — the ILP-increasing compiler optimizations of the paper.
//!
//! * [`unroll`] — counted-loop unrolling (§3.1) with postconditioned
//!   remainder iterations (§3.3, Figure 4), per-copy register renaming,
//!   and address-displacement folding so the per-iteration indexing
//!   overhead really disappears from the unrolled body.
//! * [`peel`] — first-iteration peeling (§3.3, Figure 5), used by
//!   locality analysis to isolate the temporal-reuse miss.
//! * [`predicate`] — if-conversion of simple diamonds/triangles to
//!   conditional moves ("the Multiflow compiler does predicated execution
//!   on simple conditional branches", §4.2 footnote).
//! * [`trace`] — profile-guided trace scheduling (§3.2): trace formation
//!   that never crosses loop back edges, trace compaction with the list
//!   scheduler, speculation-safety rules, and split/join compensation
//!   code.
//! * [`locality`] — the Mowry–Lam–Gupta-style reuse analysis (§3.3):
//!   affine reference classification, temporal peeling, spatial
//!   unroll-and-mark, and miss→hit ordering groups.
//! * [`cleanup`] — copy propagation, dead-code elimination and
//!   straight-chain block merging run between the structural passes.
//! * [`linform`] — the linear-form (affine-in-the-loop-counter) analysis
//!   shared by unrolling and locality analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cleanup;
pub mod linform;
pub mod locality;
pub mod peel;
pub mod predicate;
pub mod profile;
pub mod trace;
pub mod unroll;

pub use cleanup::{
    copy_propagate, dead_code_elim, local_cse, merge_straight_chains, refresh_loop_bodies,
};
pub use linform::{LinEnv, LinForm};
pub use locality::{
    analyze_locality, apply_locality, strip_hints, LocalityOptions, LocalityStats, ReuseKind,
    ReuseRef,
};
pub use peel::{peel_first_iteration, PeelResult};
pub use predicate::predicate_function;
pub use profile::EdgeProfile;
pub use trace::{trace_schedule, TraceOptions, TraceStats};
pub use unroll::{unroll_function, unroll_loop, UnrollLimits, UnrollResult};
