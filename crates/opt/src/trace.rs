//! Profile-guided trace scheduling (paper §3.2).
//!
//! **Formation** follows Fisher's mutual-most-likely heuristic: seed at
//! the hottest unvisited block, grow forward/backward along the most
//! frequent edges, never crossing loop back edges or loop boundaries, and
//! only when the neighbour's own hottest edge agrees.
//!
//! **Compaction** treats the trace as one scheduling region. Each interior
//! block boundary becomes a *control pseudo-node*:
//!
//! * a **split** (on-trace conditional branch) — instructions from below
//!   may move above it only when *speculation-safe* (not a store, and the
//!   destination is not live into the off-trace target); instructions from
//!   above may move below it, with compensation copies placed on the
//!   off-trace exit edge;
//! * a **join** (off-trace edges entering the trace) — instructions from
//!   above may never move below it, and instructions from below hoisted
//!   above it are copied onto every off-trace incoming edge.
//!
//! The region is then scheduled with the same list scheduler and load
//! weights as basic blocks (`bsched-core`), so balanced and traditional
//! scheduling both extend naturally beyond block boundaries, and the
//! schedule is re-emitted as blocks plus compensation blocks.
//!
//! Trace scheduling is the last structural pass: it dissolves the
//! canonical loop shapes, so the function's counted-loop metadata is
//! cleared afterwards.

use crate::profile::EdgeProfile;
use bsched_core::{compute_weights, schedule_region_with_pressure, WeightConfig, PRESSURE_LIMIT};
use bsched_ir::{
    Block, BlockId, Cfg, DagBuilder, DepKind, Dominators, Function, Inst, Liveness, LoopForest, Op,
    Terminator,
};
use std::collections::HashSet;

/// Options for trace scheduling.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Weight policy used while compacting traces.
    pub weights: WeightConfig,
    /// Allow upward (speculative) motion across splits ("to gain maximum
    /// flexibility of code motion, we also permitted speculative code
    /// motion", §4.2).
    pub speculation: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            weights: WeightConfig::default(),
            speculation: true,
        }
    }
}

/// Statistics from a trace-scheduling run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces with at least two blocks that were compacted.
    pub traces_compacted: u64,
    /// Total blocks covered by compacted traces.
    pub blocks_covered: u64,
    /// Compensation instructions inserted (splits + joins).
    pub compensation_insts: u64,
}

/// One interior boundary of a trace.
#[derive(Debug, Clone)]
enum Ctrl {
    /// The conditional branch ending a trace block; `on_is_taken` records
    /// which side continues the trace.
    Split {
        term: Terminator,
        on_is_taken: bool,
        off_target: BlockId,
    },
    /// Control merges into `block` from off-trace predecessors here.
    Join { block: BlockId },
}

#[derive(Debug)]
enum Item {
    Real(Inst),
    Ctrl(Ctrl),
}

/// Forms traces over the reachable blocks (every block lands in exactly
/// one trace; singletons included).
fn form_traces(
    _func: &Function,
    cfg: &Cfg,
    forest: &LoopForest,
    profile: &EdgeProfile,
) -> Vec<Vec<BlockId>> {
    let mut visited: HashSet<BlockId> = HashSet::new();
    let mut order: Vec<BlockId> = cfg.rpo().to_vec();
    // Hottest blocks seed first; stable tie-break on id.
    order.sort_by_key(|&b| (std::cmp::Reverse(profile.block(b)), b.index()));

    let mut traces = Vec::new();
    for seed in order {
        if visited.contains(&seed) {
            continue;
        }
        let mut trace = vec![seed];
        visited.insert(seed);
        // Grow forward.
        let mut cur = seed;
        while let Some(next) = profile.hottest_succ(cur, cfg.succs(cur)) {
            let mutual = profile.hottest_pred(next, cfg.preds(next)) == Some(cur);
            if visited.contains(&next)
                || !mutual
                || forest.is_back_edge(cur, next)
                || forest.innermost(cur) != forest.innermost(next)
            {
                break;
            }
            trace.push(next);
            visited.insert(next);
            cur = next;
        }
        // Grow backward.
        let mut cur = seed;
        while let Some(prev) = profile.hottest_pred(cur, cfg.preds(cur)) {
            let mutual = profile.hottest_succ(prev, cfg.succs(prev)) == Some(cur);
            if visited.contains(&prev)
                || !mutual
                || forest.is_back_edge(prev, cur)
                || forest.innermost(prev) != forest.innermost(cur)
            {
                break;
            }
            trace.insert(0, prev);
            visited.insert(prev);
            cur = prev;
        }
        traces.push(trace);
    }
    traces
}

/// Compacts one multi-block trace in place.
fn compact_trace(
    func: &mut Function,
    options: &TraceOptions,
    trace: &[BlockId],
    stats: &mut TraceStats,
) {
    let cfg = Cfg::new(func);
    let live = Liveness::new(func, &cfg);

    // --- Build the item list.
    let mut items: Vec<Item> = Vec::new();
    // Synthetic instruction view for DAG construction and weights:
    // a split becomes `mov fresh, cond` (occupies an issue slot, depends
    // on its condition); a join becomes `li fresh, 0`.
    let mut synth: Vec<Inst> = Vec::new();
    for (pos, &b) in trace.iter().enumerate() {
        for inst in &func.block(b).insts {
            items.push(Item::Real(inst.clone()));
            synth.push(inst.clone());
        }
        if pos + 1 == trace.len() {
            break;
        }
        let next = trace[pos + 1];
        match func.block(b).term.clone() {
            Terminator::Br {
                cond,
                when,
                taken,
                fall,
            } => {
                let on_is_taken = taken == next;
                assert!(on_is_taken || fall == next, "trace edge must exist");
                let off_target = if on_is_taken { fall } else { taken };
                items.push(Item::Ctrl(Ctrl::Split {
                    term: Terminator::Br {
                        cond,
                        when,
                        taken,
                        fall,
                    },
                    on_is_taken,
                    off_target,
                }));
                let flag = func.new_reg(bsched_ir::RegClass::Int);
                synth.push(Inst::op(Op::Mov, flag, &[cond]));
                // A join at the same boundary (other preds of `next`).
                if cfg.preds(next).len() > 1 {
                    items.push(Item::Ctrl(Ctrl::Join { block: next }));
                    let j = func.new_reg(bsched_ir::RegClass::Int);
                    synth.push(Inst::li(j, 0));
                }
            }
            Terminator::Jmp(t) => {
                assert_eq!(t, next, "trace edge must exist");
                if cfg.preds(next).len() > 1 {
                    items.push(Item::Ctrl(Ctrl::Join { block: next }));
                    let j = func.new_reg(bsched_ir::RegClass::Int);
                    synth.push(Inst::li(j, 0));
                }
                // Single-pred boundary: dissolves entirely.
            }
            Terminator::Ret => unreachable!("ret cannot be an interior trace terminator"),
        }
    }

    // --- Dependence edges (registers + memory) from the synthetic view,
    // then control constraints.
    let mut builder = DagBuilder::from_insts(&synth);
    let ctrl_positions: Vec<usize> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| matches!(it, Item::Ctrl(_)).then_some(i))
        .collect();
    // Chain control nodes to preserve their relative order.
    for w in ctrl_positions.windows(2) {
        builder.add_edge(w[0], w[1], DepKind::Order);
    }
    for &c in &ctrl_positions {
        match &items[c] {
            Item::Ctrl(Ctrl::Split { off_target, .. }) => {
                let off_live = live.live_in(*off_target);
                for (x, item) in items.iter().enumerate().skip(c + 1) {
                    let Item::Real(inst) = item else { continue };
                    let unsafe_spec = !options.speculation
                        || inst.op.is_store()
                        || inst.dst.is_some_and(|d| off_live.contains(&d));
                    if unsafe_spec {
                        builder.add_edge(c, x, DepKind::Order);
                    }
                }
            }
            Item::Ctrl(Ctrl::Join { .. }) => {
                // Nothing from above the join may sink below it.
                for (x, item) in items.iter().enumerate().take(c) {
                    if matches!(item, Item::Real(_)) {
                        builder.add_edge(x, c, DepKind::Order);
                    }
                }
            }
            Item::Real(_) => unreachable!(),
        }
    }
    let dag = builder.build();
    let weights = compute_weights(&synth, &dag, &options.weights);
    // Trace compaction decides *placement across blocks*; values it moves
    // over a boundary stay live through that boundary no matter how the
    // later per-block scheduling orders things, so compaction runs with a
    // tighter live-value ceiling to leave that pass headroom.
    let order = schedule_region_with_pressure(&synth, &dag, &weights, Some(PRESSURE_LIMIT / 2));

    let mut sched_pos = vec![0usize; items.len()];
    for (k, &i) in order.iter().enumerate() {
        sched_pos[i] = k;
    }

    // --- Split the schedule into segments at the control nodes.
    let mut segments: Vec<Vec<usize>> = vec![Vec::new()];
    let mut ctrls_in_order: Vec<usize> = Vec::new();
    for &i in &order {
        match items[i] {
            Item::Ctrl(_) => {
                ctrls_in_order.push(i);
                segments.push(Vec::new());
            }
            Item::Real(_) => segments.last_mut().expect("segments non-empty").push(i),
        }
    }
    debug_assert_eq!(
        ctrls_in_order, ctrl_positions,
        "control order must be preserved"
    );

    // --- Assign block ids to segments.
    let mut seg_blocks: Vec<BlockId> = Vec::with_capacity(segments.len());
    seg_blocks.push(trace[0]);
    for &c in &ctrl_positions {
        match &items[c] {
            Item::Ctrl(Ctrl::Join { block }) => seg_blocks.push(*block),
            Item::Ctrl(Ctrl::Split { .. }) => {
                seg_blocks.push(func.add_block(Block::new(Terminator::Ret)))
            }
            Item::Real(_) => unreachable!(),
        }
    }
    let final_term = func
        .block(*trace.last().expect("non-empty trace"))
        .term
        .clone();

    // --- Dissolve the old trace blocks (ids reused below).
    for &b in trace {
        let blk = func.block_mut(b);
        blk.insts.clear();
        blk.term = Terminator::Ret;
    }

    // --- Emit segments and terminators.
    for (k, seg) in segments.iter().enumerate() {
        let insts: Vec<Inst> = seg
            .iter()
            .map(|&i| match &items[i] {
                Item::Real(inst) => inst.clone(),
                Item::Ctrl(_) => unreachable!(),
            })
            .collect();
        let id = seg_blocks[k];
        func.block_mut(id).insts = insts;
        if k == segments.len() - 1 {
            func.block_mut(id).term = final_term.clone();
            break;
        }
        let c = ctrl_positions[k];
        match items[c] {
            Item::Ctrl(Ctrl::Split {
                ref term,
                on_is_taken,
                off_target,
            }) => {
                // Compensation for instructions that sank below the split.
                let comp: Vec<usize> = (0..c)
                    .filter(|&x| matches!(items[x], Item::Real(_)) && sched_pos[x] > sched_pos[c])
                    .collect();
                let off_dest = if comp.is_empty() {
                    off_target
                } else {
                    let e = func.add_block(Block::new(Terminator::Jmp(off_target)));
                    let copies: Vec<Inst> = comp
                        .iter()
                        .map(|&x| match &items[x] {
                            Item::Real(i) => i.clone(),
                            Item::Ctrl(_) => unreachable!(),
                        })
                        .collect();
                    stats.compensation_insts += copies.len() as u64;
                    func.block_mut(e).insts = copies;
                    e
                };
                let (cond, when) = match term {
                    Terminator::Br { cond, when, .. } => (*cond, *when),
                    _ => unreachable!(),
                };
                let on_dest = seg_blocks[k + 1];
                func.block_mut(id).term = if on_is_taken {
                    Terminator::Br {
                        cond,
                        when,
                        taken: on_dest,
                        fall: off_dest,
                    }
                } else {
                    Terminator::Br {
                        cond,
                        when,
                        taken: off_dest,
                        fall: on_dest,
                    }
                };
            }
            Item::Ctrl(Ctrl::Join { block }) => {
                func.block_mut(id).term = Terminator::Jmp(block);
                // Compensation for instructions hoisted above the join.
                let comp: Vec<usize> = (c + 1..items.len())
                    .filter(|&x| matches!(items[x], Item::Real(_)) && sched_pos[x] < sched_pos[c])
                    .collect();
                if !comp.is_empty() {
                    let e = func.add_block(Block::new(Terminator::Jmp(block)));
                    let copies: Vec<Inst> = comp
                        .iter()
                        .map(|&x| match &items[x] {
                            Item::Real(i) => i.clone(),
                            Item::Ctrl(_) => unreachable!(),
                        })
                        .collect();
                    stats.compensation_insts += copies.len() as u64;
                    func.block_mut(e).insts = copies;
                    // Every off-trace predecessor of the join enters via
                    // the compensation block.
                    let nblocks = func.blocks().len();
                    for bi in 0..nblocks {
                        let pid = BlockId::new(bi);
                        if pid == id || pid == e {
                            continue;
                        }
                        func.block_mut(pid).term.retarget(block, e);
                    }
                }
            }
            Item::Real(_) => unreachable!(),
        }
    }
}

/// Runs trace scheduling over the whole function. Returns statistics.
///
/// The function's counted-loop metadata is cleared: compaction dissolves
/// the canonical loop shapes, so later loop passes must run before this
/// one.
pub fn trace_schedule(
    func: &mut Function,
    profile: &EdgeProfile,
    options: &TraceOptions,
) -> TraceStats {
    let cfg = Cfg::new(func);
    let dom = Dominators::new(func, &cfg);
    let forest = LoopForest::new(&cfg, &dom);
    let traces = form_traces(func, &cfg, &forest, profile);

    let mut stats = TraceStats::default();
    for trace in &traces {
        if trace.len() < 2 {
            continue;
        }
        stats.traces_compacted += 1;
        stats.blocks_covered += trace.len() as u64;
        compact_trace(func, options, trace, &mut stats);
    }
    func.loops.clear();
    if bsched_trace::enabled() {
        bsched_trace::instant(
            bsched_trace::points::OPT_TRACE,
            func.name(),
            &[
                ("traces", stats.traces_compacted),
                ("blocks", stats.blocks_covered),
                ("compensation", stats.compensation_insts),
            ],
        );
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Program};
    use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    fn run(p: &Program) -> bsched_ir::Outcome {
        Interp::new(p).run().unwrap()
    }

    /// A loop with a hot/cold conditional that predication refuses
    /// (stores in the arms), leaving real trace-scheduling work.
    fn hot_cold_kernel(n: i64) -> Program {
        let mut k = Kernel::new("hotcold");
        let a = k.array("a", n as u64, ArrayInit::Random(11));
        let b = k.array("b", n as u64, ArrayInit::Zero);
        let i = k.int_var("i");
        let body = vec![Stmt::If {
            // a[i] < 0.95: hot arm ~95% of iterations.
            cond: Expr::cmp(CmpOp::Lt, Expr::load(a, Index::of(i)), Expr::Float(0.95)),
            then_: vec![k.store(
                b,
                Index::of(i),
                Expr::load(a, Index::of(i)) * Expr::Float(2.0) + Expr::Float(1.0),
            )],
            else_: vec![k.store(b, Index::of(i), Expr::Float(-1.0))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.lower()
    }

    #[test]
    fn formation_follows_hot_path_and_stops_at_back_edges() {
        let p = hot_cold_kernel(64);
        let f = p.main();
        let profile = EdgeProfile::collect(&p).unwrap();
        let cfg = Cfg::new(f);
        let dom = Dominators::new(f, &cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let traces = form_traces(f, &cfg, &forest, &profile);
        // The hottest trace must contain the body block plus the hot arm,
        // and no block may repeat across traces.
        let mut seen = HashSet::new();
        for t in &traces {
            for b in t {
                assert!(seen.insert(*b), "block {b} in two traces");
            }
        }
        let hot = &traces[0];
        assert!(hot.len() >= 2, "hot trace spans the conditional: {hot:?}");
        // No trace contains a back edge.
        for t in &traces {
            for w in t.windows(2) {
                assert!(!forest.is_back_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn trace_scheduling_preserves_semantics() {
        for n in [1, 7, 33, 64] {
            let mut p = hot_cold_kernel(n);
            let want = run(&p).checksum;
            let profile = EdgeProfile::collect(&p).unwrap();
            let stats = trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
            assert!(stats.traces_compacted >= 1, "n={n}");
            assert!(bsched_ir::verify_program(&p).is_ok());
            assert_eq!(run(&p).checksum, want, "n={n}");
        }
    }

    #[test]
    fn trace_scheduling_preserves_semantics_without_speculation() {
        let mut p = hot_cold_kernel(40);
        let want = run(&p).checksum;
        let profile = EdgeProfile::collect(&p).unwrap();
        let opts = TraceOptions {
            speculation: false,
            ..TraceOptions::default()
        };
        trace_schedule(p.main_mut(), &profile, &opts);
        assert_eq!(run(&p).checksum, want);
    }

    #[test]
    fn whole_loop_trace_keeps_loop_semantics() {
        // Straight-line loop body: trace = header+body+latch.
        let mut k = Kernel::new("sum");
        let a = k.array("a", 32, ArrayInit::Ramp(1.0, 1.0));
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        k.push(k.assign(s, Expr::Float(0.0)));
        let body = vec![k.assign(s, Expr::Var(s) + Expr::load(a, Index::of(i)))];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(32), body));
        k.push(k.store(out, Index::constant(0), Expr::Var(s)));
        let mut p = k.lower();
        let want = run(&p).checksum;
        let profile = EdgeProfile::collect(&p).unwrap();
        trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert_eq!(run(&p).checksum, want);
        assert!(p.main().loops.is_empty(), "loop metadata is consumed");
    }

    #[test]
    fn compensation_appears_when_code_sinks_below_split() {
        // Run many seeds; at least the semantics hold, and when the
        // scheduler moves code across boundaries the compensation keeps
        // the cold path correct. We force motion by checking off-trace
        // results explicitly.
        let mut p = hot_cold_kernel(128);
        let want = run(&p);
        let profile = EdgeProfile::collect(&p).unwrap();
        let stats = trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        let got = run(&p);
        assert_eq!(got.checksum, want.checksum);
        // Dynamic instruction count may grow (speculation + compensation),
        // exactly as the paper observes for single-issue machines.
        assert!(stats.blocks_covered >= 2);
    }

    #[test]
    fn unroll_then_trace_compose() {
        use crate::unroll::{unroll_function, UnrollLimits};
        let mut p = hot_cold_kernel(53);
        let want = run(&p).checksum;
        crate::predicate::predicate_function(p.main_mut());
        unroll_function(p.main_mut(), &UnrollLimits::for_factor(4));
        crate::cleanup::copy_propagate(p.main_mut());
        crate::cleanup::dead_code_elim(p.main_mut());
        let profile = EdgeProfile::collect(&p).unwrap();
        trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
        assert!(bsched_ir::verify_program(&p).is_ok());
        assert_eq!(run(&p).checksum, want);
    }
}
