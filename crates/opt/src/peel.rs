//! First-iteration loop peeling (paper §3.3, Figure 5).
//!
//! Locality analysis peels loops whose body contains a temporal-reuse
//! reference: the peeled copy's load takes the cache miss, and every
//! in-loop instance can then be marked a compile-time hit.

use bsched_ir::{Block, BlockId, Bound, BrCond, Function, Inst, Op, Terminator};

/// The result of peeling: where the peeled copy of each original body
/// instruction landed.
#[derive(Debug, Clone)]
pub struct PeelResult {
    /// The peeled-iteration body block (guarded, runs at most once).
    pub peeled_body: BlockId,
    /// Index in `peeled_body` of each original body instruction.
    pub inst_map: Vec<usize>,
}

/// Peels the first iteration of a canonical counted loop:
///
/// ```text
/// preheader -> guard:  t = cmplt counter, bound
///                      br.z t -> header (loop runs zero times)
///              peeled: body copy; counter += step; jmp header
/// ```
///
/// Returns `None` when the loop is not in the single-block canonical
/// shape.
pub fn peel_first_iteration(func: &mut Function, loop_idx: usize) -> Option<PeelResult> {
    let l = func.loops[loop_idx].clone();
    if l.body.len() != 1 || l.step <= 0 {
        return None;
    }
    let body = l.body[0];
    if func.block(body).term != Terminator::Jmp(l.latch) {
        return None;
    }
    // Preheader must end with a jump to the header (not yet restructured).
    if func.block(l.preheader).term != Terminator::Jmp(l.header) {
        return None;
    }
    // Counter must not be redefined in the body.
    if func
        .block(body)
        .insts
        .iter()
        .any(|i| i.dst == Some(l.counter))
    {
        return None;
    }

    let guard = func.add_block(Block::new(Terminator::Ret));
    let peeled = func.add_block(Block::new(Terminator::Ret));

    // Guard: skip the peel when the loop runs zero times.
    let t = func.new_reg(bsched_ir::RegClass::Int);
    let cmp = match l.bound {
        Bound::Imm(v) => Inst::op_imm(Op::CmpLt, t, l.counter, v),
        Bound::Reg(r) => Inst::op(Op::CmpLt, t, &[l.counter, r]),
    };
    func.block_mut(guard).insts.push(cmp);
    func.block_mut(guard).term = Terminator::Br {
        cond: t,
        when: BrCond::Zero,
        taken: l.header,
        fall: peeled,
    };

    // Peeled copy: identity register names (sequentially sound), hints and
    // groups stripped (the caller re-marks), then the counter increment.
    let orig: Vec<Inst> = func.block(body).insts.clone();
    let mut inst_map = Vec::with_capacity(orig.len());
    {
        let pb = func.block_mut(peeled);
        for inst in &orig {
            let mut ni = inst.clone();
            ni.hint = bsched_ir::LocalityHint::Unknown;
            if let Some(m) = &mut ni.mem {
                m.line_group = None;
            }
            inst_map.push(pb.insts.len());
            pb.insts.push(ni);
        }
        pb.insts
            .push(Inst::op_imm(Op::Add, l.counter, l.counter, l.step));
        pb.term = Terminator::Jmp(l.header);
    }

    // Route the preheader through the guard.
    func.block_mut(l.preheader).term = Terminator::Jmp(guard);

    Some(PeelResult {
        peeled_body: peeled,
        inst_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Interp, Program};
    use bsched_workloads::lang::ast::{Expr, Index};
    use bsched_workloads::lang::{ArrayInit, Kernel};

    fn sum_kernel(n: i64) -> Program {
        let mut k = Kernel::new("sum");
        let a = k.array("a", n.max(1) as u64, ArrayInit::Ramp(1.0, 1.0));
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        k.push(k.assign(s, Expr::Float(0.0)));
        let body = vec![k.assign(s, Expr::Var(s) + Expr::load(a, Index::of(i)))];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(n), body));
        k.push(k.store(out, Index::constant(0), Expr::Var(s)));
        k.lower()
    }

    #[test]
    fn peel_preserves_semantics() {
        for n in [0, 1, 2, 7] {
            let mut p = sum_kernel(n);
            let want = Interp::new(&p).run().unwrap().checksum;
            let r = peel_first_iteration(p.main_mut(), 0);
            assert!(r.is_some(), "n={n}");
            assert!(bsched_ir::verify_program(&p).is_ok());
            assert_eq!(Interp::new(&p).run().unwrap().checksum, want, "n={n}");
        }
    }

    #[test]
    fn peeled_body_runs_once() {
        let mut p = sum_kernel(5);
        let r = peel_first_iteration(p.main_mut(), 0).unwrap();
        let out = Interp::new(&p).run().unwrap();
        assert_eq!(out.profile.block(r.peeled_body), 1);
        // The loop body now runs n-1 = 4 times.
        let body = p.main().loops[0].body[0];
        assert_eq!(out.profile.block(body), 4);
    }

    #[test]
    fn zero_trip_loop_skips_peel() {
        let mut p = sum_kernel(0);
        let r = peel_first_iteration(p.main_mut(), 0).unwrap();
        let out = Interp::new(&p).run().unwrap();
        assert_eq!(out.profile.block(r.peeled_body), 0);
    }

    #[test]
    fn peel_then_unroll_compose() {
        use crate::unroll::{unroll_loop, UnrollLimits};
        for n in [0, 1, 4, 9, 13] {
            let mut p = sum_kernel(n);
            let want = Interp::new(&p).run().unwrap().checksum;
            peel_first_iteration(p.main_mut(), 0).unwrap();
            // After peeling, the preheader no longer jumps straight to the
            // header, but unrolling only appends to it, so they compose.
            let r = unroll_loop(p.main_mut(), 0, &UnrollLimits::for_factor(4));
            assert!(r.is_some(), "n={n}");
            assert!(bsched_ir::verify_program(&p).is_ok());
            assert_eq!(Interp::new(&p).run().unwrap().checksum, want, "n={n}");
        }
    }
}
