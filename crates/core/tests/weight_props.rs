//! Property tests for the bitset DAG-analysis weight kernel: on seeded
//! random DAGs, [`compute_weights`] (the bitset fast path) must return
//! exactly the same weights as [`compute_weights_reference`] (the
//! retained per-contributor naive walk) for every scheduler kind and
//! several weight caps.
//!
//! The random regions mix loads (several memory regions and overlapping
//! displacements, so some load pairs serialise), stores, FP arithmetic
//! chains over previously defined values, and integer address
//! arithmetic — covering independence, comparability components of
//! varying size, and store-coverage cases.

use bsched_core::weights::{compute_weights, compute_weights_reference};
use bsched_core::{SchedulerKind, WeightConfig};
use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};
use bsched_util::Prng;

fn r(n: u32) -> Reg {
    Reg::virt(RegClass::Int, n)
}
fn f(n: u32) -> Reg {
    Reg::virt(RegClass::Float, n)
}

/// Builds a random straight-line region of `len` instructions.
fn random_region(rng: &mut Prng, len: usize) -> Vec<Inst> {
    // A few int base registers defined up front (addresses), plus one
    // seeded float so arithmetic always has operands to draw from.
    let mut insts: Vec<Inst> = vec![
        Inst::li(r(0), 64),
        Inst::li(r(1), 4096),
        Inst::li(r(2), 1 << 20),
        Inst::fli(f(0), 1.5),
    ];
    let mut int_defs: Vec<u32> = vec![0, 1, 2];
    let mut float_defs: Vec<u32> = vec![0];
    let mut next_int = 3u32;
    let mut next_float = 1u32;

    while insts.len() < len {
        match rng.index(8) {
            // Loads are the majority so most regions have several
            // comparability components.
            0..=3 => {
                let base = int_defs[rng.index(int_defs.len())];
                // Displacements collide often enough that same-region,
                // same-base pairs sometimes overlap (serialised loads).
                let disp = rng.range_i64(0, 4) * 8;
                let mut ld = Inst::load(f(next_float), r(base), disp);
                // Region 0..2 known, occasionally unknown (aliases all).
                if rng.index(8) != 0 {
                    ld = ld.with_region(RegionId::new(rng.index(3)));
                }
                insts.push(ld);
                float_defs.push(next_float);
                next_float += 1;
            }
            4 => {
                let val = float_defs[rng.index(float_defs.len())];
                let base = int_defs[rng.index(int_defs.len())];
                let disp = rng.range_i64(0, 4) * 8;
                let mut st = Inst::store(f(val), r(base), disp);
                if rng.index(8) != 0 {
                    st = st.with_region(RegionId::new(rng.index(3)));
                }
                insts.push(st);
            }
            5 | 6 => {
                let a = float_defs[rng.index(float_defs.len())];
                let b = float_defs[rng.index(float_defs.len())];
                let op = if rng.coin() { Op::FAdd } else { Op::FMul };
                insts.push(Inst::op(op, f(next_float), &[f(a), f(b)]));
                float_defs.push(next_float);
                next_float += 1;
            }
            _ => {
                let a = int_defs[rng.index(int_defs.len())];
                insts.push(Inst::op_imm(Op::Add, r(next_int), r(a), rng.range_i64(8, 64)));
                int_defs.push(next_int);
                next_int += 1;
            }
        }
    }
    insts
}

/// The property: the bitset kernel and the naive reference agree
/// exactly, for every scheduler kind and several caps.
fn assert_kernel_matches_reference(seed: u64, cases: usize, max_len: usize) {
    let mut rng = Prng::new(seed);
    for case in 0..cases {
        let len = 8 + rng.index(max_len - 8);
        let insts = random_region(&mut rng, len);
        let dag = Dag::new(&insts);
        for kind in SchedulerKind::ALL {
            for cap in [2u32, 10, 50] {
                let config = WeightConfig::new(kind).with_cap(cap);
                let fast = compute_weights(&insts, &dag, &config);
                let naive = compute_weights_reference(&insts, &dag, &config);
                assert_eq!(
                    fast, naive,
                    "seed {seed:#x} case {case} ({len} insts): {} cap {cap} diverged",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn kernel_matches_reference_on_small_random_dags() {
    assert_kernel_matches_reference(0xB_5CED_0001, 24, 32);
}

#[test]
fn kernel_matches_reference_on_medium_random_dags() {
    assert_kernel_matches_reference(0xB_5CED_0002, 12, 96);
}

#[test]
fn kernel_matches_reference_on_unroll_sized_random_dags() {
    // Region sizes past the paper's unrolled-body budget, crossing the
    // 64-load word boundary so multi-word bitset rows are exercised.
    assert_kernel_matches_reference(0xB_5CED_0003, 6, 224);
}

#[test]
fn reference_config_flag_agrees_with_direct_reference_call() {
    let mut rng = Prng::new(0xB_5CED_0004);
    let insts = random_region(&mut rng, 48);
    let dag = Dag::new(&insts);
    let config = WeightConfig::new(SchedulerKind::Balanced).with_reference(true);
    assert_eq!(
        compute_weights(&insts, &dag, &config),
        compute_weights_reference(&insts, &dag, &config),
    );
}
