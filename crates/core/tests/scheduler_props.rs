//! Property tests for the scheduler and the weight policies.

use bsched_core::{compute_weights, schedule_region, SchedulerKind, WeightConfig};
use bsched_ir::{opcode::latency, Dag, Inst, Op, Reg, RegClass, RegionId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum GenInst {
    Alu {
        dst: u8,
        a: u8,
        imm: i8,
    },
    Fp {
        dst: u8,
        a: u8,
        b: u8,
    },
    Div {
        dst: u8,
        a: u8,
        b: u8,
    },
    Load {
        dst: u8,
        base: u8,
        disp: u8,
        region: u8,
    },
    Store {
        val: u8,
        base: u8,
        disp: u8,
        region: u8,
    },
}

fn materialize(g: &[GenInst]) -> Vec<Inst> {
    let r = |n: u8| Reg::virt(RegClass::Int, u32::from(n) % 6);
    let f = |n: u8| Reg::virt(RegClass::Float, u32::from(n) % 6);
    g.iter()
        .map(|gi| match *gi {
            GenInst::Alu { dst, a, imm } => Inst::op_imm(Op::Add, r(dst), r(a), i64::from(imm)),
            GenInst::Fp { dst, a, b } => Inst::op(Op::FMul, f(dst), &[f(a), f(b)]),
            GenInst::Div { dst, a, b } => Inst::op(Op::FDivD, f(dst), &[f(a), f(b)]),
            GenInst::Load {
                dst,
                base,
                disp,
                region,
            } => Inst::load(f(dst), r(base), i64::from(disp % 8) * 8)
                .with_region(RegionId::new(usize::from(region % 2))),
            GenInst::Store {
                val,
                base,
                disp,
                region,
            } => Inst::store(f(val), r(base), i64::from(disp % 8) * 8)
                .with_region(RegionId::new(usize::from(region % 2))),
        })
        .collect()
}

fn arb_inst() -> impl Strategy<Value = GenInst> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<i8>()).prop_map(|(dst, a, imm)| GenInst::Alu {
            dst,
            a,
            imm
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(dst, a, b)| GenInst::Fp { dst, a, b }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(dst, a, b)| GenInst::Div { dst, a, b }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(dst, base, disp, region)| GenInst::Load {
                dst,
                base,
                disp,
                region
            }
        ),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(val, base, disp, region)| GenInst::Store {
                val,
                base,
                disp,
                region
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn schedules_are_valid_topological_permutations(
        g in prop::collection::vec(arb_inst(), 1..40),
        kind in prop_oneof![Just(SchedulerKind::Traditional), Just(SchedulerKind::Balanced)],
    ) {
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        let weights = compute_weights(&insts, &dag, &WeightConfig::new(kind));
        let order = schedule_region(&insts, &dag, &weights);

        // Permutation.
        prop_assert_eq!(order.len(), insts.len());
        let mut seen = vec![false; insts.len()];
        for &i in &order {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        // Topological.
        let mut pos = vec![0usize; insts.len()];
        for (k, &i) in order.iter().enumerate() {
            pos[i] = k;
        }
        for i in 0..insts.len() {
            for &(t, _) in dag.succs(i) {
                prop_assert!(pos[i] < pos[t as usize]);
            }
        }
    }

    #[test]
    fn weight_invariants(g in prop::collection::vec(arb_inst(), 1..40)) {
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        let trad = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Traditional));
        let bal = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        for (i, inst) in insts.iter().enumerate() {
            // Traditional weights are exactly the architectural latencies.
            prop_assert_eq!(trad[i], inst.op.latency());
            if inst.op.is_load() {
                // Balanced weights sit in [hit latency, cap].
                prop_assert!(bal[i] >= latency::LOAD_HIT);
                prop_assert!(bal[i] <= latency::MAX_LOAD);
                prop_assert!(bal[i] >= trad[i]);
            } else {
                prop_assert_eq!(bal[i], trad[i], "non-loads keep fixed weights");
            }
        }
    }

    #[test]
    fn scheduling_is_deterministic(g in prop::collection::vec(arb_inst(), 1..32)) {
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::default());
        let o1 = schedule_region(&insts, &dag, &w);
        let o2 = schedule_region(&insts, &dag, &w);
        prop_assert_eq!(o1, o2);
    }

    #[test]
    fn adding_an_independent_instruction_never_lowers_load_weights(
        g in prop::collection::vec(arb_inst(), 1..24),
    ) {
        let mut insts = materialize(&g);
        let dag = Dag::new(&insts);
        let before = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        // Append a fresh, totally independent FP op.
        insts.push(Inst::op(
            Op::FAdd,
            Reg::virt(RegClass::Float, 60),
            &[Reg::virt(RegClass::Float, 61), Reg::virt(RegClass::Float, 62)],
        ));
        let dag2 = Dag::new(&insts);
        let after = compute_weights(&insts, &dag2, &WeightConfig::new(SchedulerKind::Balanced));
        for i in 0..before.len() {
            if insts[i].op.is_load() {
                prop_assert!(after[i] >= before[i],
                    "more parallelism cannot shrink load weight at {}", i);
            }
        }
    }
}
