//! Randomized property tests for the scheduler and the weight policies,
//! driven by the workspace's seeded [`Prng`] for reproducibility.

use bsched_core::{compute_weights, schedule_region, SchedulerKind, WeightConfig};
use bsched_ir::{opcode::latency, Dag, Inst, Op, Reg, RegClass, RegionId};
use bsched_util::Prng;

#[derive(Debug, Clone)]
enum GenInst {
    Alu { dst: u8, a: u8, imm: i8 },
    Fp { dst: u8, a: u8, b: u8 },
    Div { dst: u8, a: u8, b: u8 },
    Load { dst: u8, base: u8, disp: u8, region: u8 },
    Store { val: u8, base: u8, disp: u8, region: u8 },
}

fn gen_inst(rng: &mut Prng) -> GenInst {
    let b = |rng: &mut Prng| rng.next_u32() as u8;
    match rng.index(5) {
        0 => GenInst::Alu {
            dst: b(rng),
            a: b(rng),
            imm: b(rng) as i8,
        },
        1 => GenInst::Fp {
            dst: b(rng),
            a: b(rng),
            b: b(rng),
        },
        2 => GenInst::Div {
            dst: b(rng),
            a: b(rng),
            b: b(rng),
        },
        3 => GenInst::Load {
            dst: b(rng),
            base: b(rng),
            disp: b(rng),
            region: b(rng),
        },
        _ => GenInst::Store {
            val: b(rng),
            base: b(rng),
            disp: b(rng),
            region: b(rng),
        },
    }
}

fn gen_block(rng: &mut Prng, min: usize, max: usize) -> Vec<GenInst> {
    let n = min + rng.index(max - min);
    (0..n).map(|_| gen_inst(rng)).collect()
}

fn materialize(g: &[GenInst]) -> Vec<Inst> {
    let r = |n: u8| Reg::virt(RegClass::Int, u32::from(n) % 6);
    let f = |n: u8| Reg::virt(RegClass::Float, u32::from(n) % 6);
    g.iter()
        .map(|gi| match *gi {
            GenInst::Alu { dst, a, imm } => Inst::op_imm(Op::Add, r(dst), r(a), i64::from(imm)),
            GenInst::Fp { dst, a, b } => Inst::op(Op::FMul, f(dst), &[f(a), f(b)]),
            GenInst::Div { dst, a, b } => Inst::op(Op::FDivD, f(dst), &[f(a), f(b)]),
            GenInst::Load {
                dst,
                base,
                disp,
                region,
            } => Inst::load(f(dst), r(base), i64::from(disp % 8) * 8)
                .with_region(RegionId::new(usize::from(region % 2))),
            GenInst::Store {
                val,
                base,
                disp,
                region,
            } => Inst::store(f(val), r(base), i64::from(disp % 8) * 8)
                .with_region(RegionId::new(usize::from(region % 2))),
        })
        .collect()
}

#[test]
fn schedules_are_valid_topological_permutations() {
    let mut rng = Prng::new(0x5C4E_0001);
    for case in 0..96 {
        let g = gen_block(&mut rng, 1, 40);
        let kind = if rng.coin() {
            SchedulerKind::Traditional
        } else {
            SchedulerKind::Balanced
        };
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        let weights = compute_weights(&insts, &dag, &WeightConfig::new(kind));
        let order = schedule_region(&insts, &dag, &weights);

        // Permutation.
        assert_eq!(order.len(), insts.len(), "case {case}");
        let mut seen = vec![false; insts.len()];
        for &i in &order {
            assert!(!seen[i], "case {case}: index {i} scheduled twice");
            seen[i] = true;
        }
        // Topological.
        let mut pos = vec![0usize; insts.len()];
        for (k, &i) in order.iter().enumerate() {
            pos[i] = k;
        }
        for i in 0..insts.len() {
            for &(t, _) in dag.succs(i) {
                assert!(pos[i] < pos[t as usize], "case {case}: edge {i} -> {t} inverted");
            }
        }
    }
}

#[test]
fn weight_invariants() {
    let mut rng = Prng::new(0x5C4E_0002);
    for case in 0..96 {
        let g = gen_block(&mut rng, 1, 40);
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        let trad = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Traditional));
        let bal = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        for (i, inst) in insts.iter().enumerate() {
            // Traditional weights are exactly the architectural latencies.
            assert_eq!(trad[i], inst.op.latency(), "case {case}: inst {i}");
            if inst.op.is_load() {
                // Balanced weights sit in [hit latency, cap].
                assert!(bal[i] >= latency::LOAD_HIT, "case {case}: inst {i}");
                assert!(bal[i] <= latency::MAX_LOAD, "case {case}: inst {i}");
                assert!(bal[i] >= trad[i], "case {case}: inst {i}");
            } else {
                assert_eq!(bal[i], trad[i], "case {case}: non-load {i} keeps fixed weight");
            }
        }
    }
}

#[test]
fn scheduling_is_deterministic() {
    let mut rng = Prng::new(0x5C4E_0003);
    for case in 0..96 {
        let g = gen_block(&mut rng, 1, 32);
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::default());
        let o1 = schedule_region(&insts, &dag, &w);
        let o2 = schedule_region(&insts, &dag, &w);
        assert_eq!(o1, o2, "case {case}");
    }
}

#[test]
fn adding_an_independent_instruction_never_lowers_load_weights() {
    let mut rng = Prng::new(0x5C4E_0004);
    for case in 0..96 {
        let g = gen_block(&mut rng, 1, 24);
        let mut insts = materialize(&g);
        let dag = Dag::new(&insts);
        let before = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        // Append a fresh, totally independent FP op.
        insts.push(Inst::op(
            Op::FAdd,
            Reg::virt(RegClass::Float, 60),
            &[Reg::virt(RegClass::Float, 61), Reg::virt(RegClass::Float, 62)],
        ));
        let dag2 = Dag::new(&insts);
        let after = compute_weights(&insts, &dag2, &WeightConfig::new(SchedulerKind::Balanced));
        for i in 0..before.len() {
            if insts[i].op.is_load() {
                assert!(
                    after[i] >= before[i],
                    "case {case}: more parallelism cannot shrink load weight at {i}"
                );
            }
        }
    }
}
