//! Oracle-grade property tests for the exact scheduler.
//!
//! The branch-and-bound arm claims to compute the *optimal* issue span
//! under the balanced cost model. These tests check that claim against
//! the only oracle that needs no cleverness: exhaustive enumeration of
//! every legal schedule of small random regions. On top of the
//! optimality oracle they pin the contracts the rest of the stack leans
//! on — the exact cost never exceeds any heuristic's, the reported cost
//! matches an independent replay of the reported order, the emitted
//! order is a legal topological order, and the whole search is a pure
//! function of its inputs (byte-identical across threads).

use bsched_core::{
    compute_weights, schedule_cost, schedule_region, schedule_region_exact, SchedulerKind,
    WeightConfig, DEFAULT_EXACT_BUDGET,
};
use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};
use bsched_util::Prng;

fn r(n: u32) -> Reg {
    Reg::virt(RegClass::Int, n)
}
fn f(n: u32) -> Reg {
    Reg::virt(RegClass::Float, n)
}

/// A random region of `len` instructions: loads (with a small pool of
/// memory regions so some pairs alias and grow memory edges), FP
/// arithmetic over previously defined or live-in registers, integer ALU
/// ops, and the odd store. Register reuse is deliberate — it creates
/// data, anti, and output dependences in one stroke.
fn gen_region(rng: &mut Prng, len: usize) -> Vec<Inst> {
    let mut insts = Vec::with_capacity(len);
    let mut next_f = 8u32; // f0..f7 and r0..r3 are live-in
    let mut next_r = 4u32;
    for _ in 0..len {
        match rng.index(6) {
            0 | 1 => {
                // A load from one of three memory regions; sharing a
                // region makes later stores conflict with it.
                let dst = f(next_f);
                next_f += 1;
                let region = RegionId::new(rng.index(3));
                insts.push(
                    Inst::load(dst, r(rng.index(4) as u32), rng.range_i64(0, 4) * 8)
                        .with_region(region),
                );
            }
            2 | 3 => {
                // FP op over two random earlier (or live-in) floats.
                let a = f(rng.index(next_f as usize) as u32);
                let b = f(rng.index(next_f as usize) as u32);
                let dst = if rng.coin() {
                    // Occasionally redefine an existing register to
                    // manufacture anti/output dependences.
                    f(rng.index(next_f as usize) as u32)
                } else {
                    let d = f(next_f);
                    next_f += 1;
                    d
                };
                let op = [Op::FAdd, Op::FSub, Op::FMul][rng.index(3)];
                insts.push(Inst::op(op, dst, &[a, b]));
            }
            4 => {
                let a = r(rng.index(next_r as usize) as u32);
                let dst = r(next_r);
                next_r += 1;
                insts.push(Inst::op_imm(Op::Add, dst, a, rng.range_i64(1, 8)));
            }
            _ => {
                let val = f(rng.index(next_f as usize) as u32);
                let region = RegionId::new(rng.index(3));
                insts.push(
                    Inst::store(val, r(rng.index(4) as u32), rng.range_i64(0, 4) * 8)
                        .with_region(region),
                );
            }
        }
    }
    insts
}

/// The exhaustive oracle: the minimum [`schedule_cost`] over *every*
/// topological order of the DAG, found by depth-first enumeration of
/// available sets. Only callable for small regions (≤ 8 instructions
/// here — at most 8! = 40320 leaves).
fn brute_force_optimum(dag: &Dag, weights: &[u32]) -> u64 {
    fn go(
        dag: &Dag,
        weights: &[u32],
        pred_left: &mut [usize],
        order: &mut Vec<usize>,
        best: &mut u64,
    ) {
        if order.len() == dag.len() {
            *best = (*best).min(schedule_cost(dag, weights, order));
            return;
        }
        for i in 0..dag.len() {
            if pred_left[i] != usize::MAX && pred_left[i] == 0 {
                pred_left[i] = usize::MAX; // mark scheduled
                for &(t, _) in dag.succs(i) {
                    pred_left[t as usize] -= 1;
                }
                order.push(i);
                go(dag, weights, pred_left, order, best);
                order.pop();
                for &(t, _) in dag.succs(i) {
                    pred_left[t as usize] += 1;
                }
                pred_left[i] = 0;
            }
        }
    }
    let mut pred_left: Vec<usize> = (0..dag.len()).map(|i| dag.preds(i).len()).collect();
    let mut best = u64::MAX;
    go(dag, weights, &mut pred_left, &mut Vec::new(), &mut best);
    best
}

/// Balanced weights, the balanced heuristic order, and the DAG for a
/// region — the exact arm's actual inputs in the pipeline.
fn balanced_inputs(insts: &[Inst]) -> (Dag, Vec<u32>, Vec<usize>) {
    let dag = Dag::new(insts);
    let weights = compute_weights(insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
    let order = schedule_region(insts, &dag, &weights);
    (dag, weights, order)
}

fn is_topological(dag: &Dag, order: &[usize]) -> bool {
    let mut pos = vec![usize::MAX; dag.len()];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    (0..dag.len()).all(|i| {
        pos[i] != usize::MAX && dag.succs(i).iter().all(|&(t, _)| pos[i] < pos[t as usize])
    })
}

/// The core oracle property: on regions small enough to enumerate, the
/// branch-and-bound cost equals the exhaustive minimum over all legal
/// schedules, the search proves it within the default budget, and the
/// emitted order is legal and replays to the reported cost.
#[test]
fn exact_matches_the_brute_force_optimum_on_random_dags() {
    let mut rng = Prng::new(0xEAC7_0001);
    for case in 0..60 {
        let len = rng.index(7) + 2; // 2..=8 instructions
        let insts = gen_region(&mut rng.fork(), len);
        let (dag, weights, incumbent) = balanced_inputs(&insts);
        let oracle = brute_force_optimum(&dag, &weights);
        let out = schedule_region_exact(&dag, &weights, DEFAULT_EXACT_BUDGET, incumbent);
        assert!(out.proven, "case {case}: {len} instructions must be provable");
        assert_eq!(
            out.cost, oracle,
            "case {case}: exact cost diverged from exhaustive enumeration\n{insts:#?}"
        );
        assert!(is_topological(&dag, &out.order), "case {case}: illegal order");
        assert_eq!(
            schedule_cost(&dag, &weights, &out.order),
            out.cost,
            "case {case}: reported cost does not replay"
        );
    }
}

/// The exact arm never loses to any heuristic: both the balanced and
/// the traditional list schedules, evaluated under the same balanced
/// cost model the search optimizes, upper-bound the exact cost.
#[test]
fn exact_is_never_beaten_by_a_heuristic() {
    let mut rng = Prng::new(0xEAC7_0002);
    for case in 0..40 {
        let len = rng.index(9) + 2; // 2..=10 instructions
        let insts = gen_region(&mut rng.fork(), len);
        let (dag, weights, balanced) = balanced_inputs(&insts);
        let trad_weights =
            compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Traditional));
        let traditional = schedule_region(&insts, &dag, &trad_weights);
        let out =
            schedule_region_exact(&dag, &weights, DEFAULT_EXACT_BUDGET, balanced.clone());
        assert!(
            out.cost <= schedule_cost(&dag, &weights, &balanced),
            "case {case}: exact lost to the balanced heuristic"
        );
        assert!(
            out.cost <= schedule_cost(&dag, &weights, &traditional),
            "case {case}: exact lost to the traditional heuristic"
        );
    }
}

/// The search is a pure function of (DAG, weights, budget, incumbent):
/// running it concurrently from several threads yields byte-identical
/// outcomes — order, cost, proven flag, and node count. Wall-clock
/// budgets would fail this; the node budget must not.
#[test]
fn outcomes_are_deterministic_across_threads() {
    let mut rng = Prng::new(0xEAC7_0003);
    let insts = gen_region(&mut rng, 10);
    let (dag, weights, incumbent) = balanced_inputs(&insts);
    // A budget small enough that some searches may exhaust it: the
    // fallback path must be exactly as deterministic as the proven one.
    for budget in [0, 17, DEFAULT_EXACT_BUDGET] {
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (dag, weights, incumbent) = (&dag, &weights, &incumbent);
                    scope.spawn(move || {
                        schedule_region_exact(dag, weights, budget, incumbent.clone())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for o in &outcomes[1..] {
            assert_eq!(o.order, outcomes[0].order, "budget {budget}: order diverged");
            assert_eq!(o.cost, outcomes[0].cost, "budget {budget}: cost diverged");
            assert_eq!(o.proven, outcomes[0].proven, "budget {budget}: proven diverged");
            assert_eq!(o.nodes, outcomes[0].nodes, "budget {budget}: nodes diverged");
        }
    }
}

/// Budgets are monotone: more nodes never produce a worse schedule, and
/// once an optimum is proven, larger budgets report the same cost.
#[test]
fn larger_budgets_never_hurt() {
    let mut rng = Prng::new(0xEAC7_0004);
    for _ in 0..10 {
        let insts = gen_region(&mut rng.fork(), 9);
        let (dag, weights, incumbent) = balanced_inputs(&insts);
        let mut last = u64::MAX;
        let mut proven_cost = None;
        for budget in [0, 8, 64, 512, DEFAULT_EXACT_BUDGET] {
            let out = schedule_region_exact(&dag, &weights, budget, incumbent.clone());
            assert!(out.cost <= last, "budget {budget} made the schedule worse");
            last = out.cost;
            if out.proven {
                if let Some(p) = proven_cost {
                    assert_eq!(out.cost, p, "two proven optima disagree");
                }
                proven_cost = Some(out.cost);
            }
        }
        assert_eq!(proven_cost, Some(last), "default budget must prove 9 insts");
    }
}
