//! Load-weight policies: traditional, balanced (Kerns–Eggers), and
//! selective balanced (locality-analysis aware).
//!
//! The balanced computation follows the algorithm reviewed in §2 of the
//! paper. For each *contributor* instruction `i` (an instruction whose
//! issue slot can hide load latency — any non-load, plus compile-time hit
//! loads under the selective policy):
//!
//! 1. collect the loads independent of `i` in the code DAG;
//! 2. group them into connected components under the *comparability*
//!    relation (two loads joined by a dependence path are serialised, so
//!    they compete for `i`'s single issue slot — the paper's Figure 1
//!    L2→L3 case);
//! 3. credit each load in a component of size `k` with `1/k` of a cycle.
//!
//! A load's weight is the optimistic hit latency plus its accumulated
//! credit, capped at the maximum memory latency (50 cycles, paper §4.2
//! footnote 1).
//!
//! # Two implementations
//!
//! [`compute_weights`] runs on the shared [`DagAnalysis`] bitset kernel:
//! the per-contributor covered-load set is one row-AND over u64 blocks,
//! and the component credits for each distinct covered set are computed
//! once (bitset BFS over the precomputed comparability adjacency) and
//! replayed for every contributor sharing it — on unrolled bodies most
//! do. [`compute_weights_reference`] is the retained naive walk
//! (per-contributor DAG probes + union-find); it is the executable
//! specification that the property tests hold the kernel against, and
//! the "before" half of the `weights` microbench. Both accumulate each
//! load's credits in the same (program) order with the same `1/k`
//! values, so their results are bit-for-bit identical.

use bsched_ir::opcode::latency;
use bsched_ir::{Dag, DagAnalysis, Inst, LocalityHint};

/// Which load-weight policy the scheduler runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// Fixed optimistic (L1-hit) load weights.
    Traditional,
    /// Balanced-scheduling weights for every load.
    #[default]
    Balanced,
    /// Balanced weights for miss/unknown loads only; compile-time hits are
    /// scheduled traditionally and contribute coverage (paper §3.3).
    SelectiveBalanced,
    /// Exact branch-and-bound search under the balanced cost model: the
    /// list scheduler's balanced schedule seeds a search for the true
    /// issue-span optimum (see [`crate::exact`]). Weight-wise this is
    /// identical to [`SchedulerKind::Balanced`] — the search minimizes
    /// the same uncertain-latency objective the balanced weights encode.
    Exact,
}

impl SchedulerKind {
    /// Short name used in experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Traditional => "TS",
            SchedulerKind::Balanced => "BS",
            SchedulerKind::SelectiveBalanced => "BS+LA",
            SchedulerKind::Exact => "EX",
        }
    }

    /// The paper's three heuristic policies, in table order. The exact
    /// arm is deliberately not included: the standard experiment grid,
    /// golden tables, and fuzzer seed streams iterate this array, and
    /// exact search is an oracle those compare *against*, not a fourth
    /// table column everywhere.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Traditional,
        SchedulerKind::Balanced,
        SchedulerKind::SelectiveBalanced,
    ];
}

/// Weight-computation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightConfig {
    /// The load-weight policy.
    pub kind: SchedulerKind,
    /// Cap on balanced load weights; the paper uses the 50-cycle maximum
    /// memory latency. Exposed for the `weight_cap` ablation bench.
    pub cap: u32,
    /// Route [`compute_weights`] through the retained naive reference
    /// implementation instead of the bitset kernel. The results are
    /// identical; only the cost differs. Used by the perf-trajectory
    /// benches to measure the end-to-end before/after in one process.
    pub reference: bool,
    /// Node budget for the [`SchedulerKind::Exact`] branch-and-bound
    /// search, per region (ignored by the heuristic policies). A
    /// deterministic unit — results are machine-independent and
    /// cacheable. Zero disables the search entirely (the balanced
    /// incumbent is emitted unchanged).
    pub exact_budget: u64,
}

impl WeightConfig {
    /// Creates a configuration with the paper's cap of 50 cycles.
    #[must_use]
    pub fn new(kind: SchedulerKind) -> Self {
        WeightConfig {
            kind,
            cap: latency::MAX_LOAD,
            reference: false,
            exact_budget: crate::exact::DEFAULT_EXACT_BUDGET,
        }
    }

    /// Overrides the weight cap.
    #[must_use]
    pub fn with_cap(mut self, cap: u32) -> Self {
        self.cap = cap;
        self
    }

    /// Selects the naive reference implementation (benching only).
    #[must_use]
    pub fn with_reference(mut self, reference: bool) -> Self {
        self.reference = reference;
        self
    }

    /// Overrides the exact-search node budget.
    #[must_use]
    pub fn with_exact_budget(mut self, budget: u64) -> Self {
        self.exact_budget = budget;
        self
    }
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig::new(SchedulerKind::Balanced)
    }
}

/// `true` if the instruction's issue slot is treated as available
/// latency-hiding parallelism under `kind`.
fn contributes(inst: &Inst, kind: SchedulerKind) -> bool {
    if !inst.op.is_load() {
        // Every non-load (stores included) occupies an issue slot that can
        // overlap an outstanding load.
        return true;
    }
    // Loads: under the selective policy, compile-time hits behave like
    // ordinary short-latency instructions and donate their slots.
    kind == SchedulerKind::SelectiveBalanced && inst.hint == LocalityHint::Hit
}

/// `true` if the load is weighted by the balanced computation under `kind`.
fn is_balanced_load(inst: &Inst, kind: SchedulerKind) -> bool {
    if !inst.op.is_load() {
        return false;
    }
    match kind {
        SchedulerKind::Traditional => false,
        // The exact arm searches under the balanced weights — its
        // objective *is* the balanced uncertain-latency model.
        SchedulerKind::Balanced | SchedulerKind::Exact => true,
        SchedulerKind::SelectiveBalanced => inst.hint != LocalityHint::Hit,
    }
}

/// Finalizes a load's weight from its accumulated credit.
fn cap_weight(credit: f64, cap: u32) -> u32 {
    let w = f64::from(latency::LOAD_HIT) + credit;
    (w.round() as u32).min(cap).max(latency::LOAD_HIT)
}

/// Computes per-instruction scheduling weights for a straight-line region
/// on the shared bitset DAG-analysis kernel.
///
/// Non-loads always get their fixed architectural latency; loads get the
/// policy-dependent weight described in the module docs.
///
/// # Panics
///
/// Panics if `dag.len() != insts.len()`.
#[must_use]
pub fn compute_weights(insts: &[Inst], dag: &Dag, config: &WeightConfig) -> Vec<u32> {
    assert_eq!(insts.len(), dag.len(), "DAG does not match region");
    if config.reference {
        return compute_weights_reference(insts, dag, config);
    }
    let mut weights: Vec<u32> = insts.iter().map(|i| i.op.latency()).collect();
    if config.kind == SchedulerKind::Traditional
        || !insts.iter().any(|i| is_balanced_load(i, config.kind))
    {
        return weights;
    }

    let analysis: &DagAnalysis = dag.analysis(insts);
    let words = analysis.row_words();

    // Mask (over load slots) of the loads the policy balances.
    let mut bal_mask = vec![0u64; words];
    for (s, &l) in analysis.loads().iter().enumerate() {
        if is_balanced_load(&insts[l as usize], config.kind) {
            bal_mask[s / 64] |= 1 << (s % 64);
        }
    }

    // Per-slot credit accumulators. Each contributor adds its component
    // shares in ascending slot order — the same per-load addition
    // sequence as the reference implementation, so the f64 results are
    // bitwise identical.
    let mut credit = vec![0f64; analysis.num_loads()];
    let mut covered = vec![0u64; words];
    for (i, inst) in insts.iter().enumerate() {
        if !contributes(inst, config.kind) {
            continue;
        }
        let row = analysis.independent_loads(i);
        let mut any = 0u64;
        for w in 0..words {
            covered[w] = row[w] & bal_mask[w];
            any |= covered[w];
        }
        if any == 0 {
            continue;
        }
        let shares = analysis.component_credits(&covered);
        let mut rank = 0usize;
        for (w, &bits) in covered.iter().enumerate() {
            let mut b = bits;
            while b != 0 {
                let s = w * 64 + b.trailing_zeros() as usize;
                credit[s] += shares[rank];
                rank += 1;
                b &= b - 1;
            }
        }
    }

    for (s, &l) in analysis.loads().iter().enumerate() {
        if bal_mask[s / 64] >> (s % 64) & 1 == 1 {
            weights[l as usize] = cap_weight(credit[s], config.cap);
        }
    }
    weights
}

/// The retained naive weight computation: per-contributor DAG
/// reachability probes and an O(k²) union-find over the covered loads.
///
/// This is the executable specification of the balanced weights — kept
/// as the oracle for the kernel's property tests and as the "before"
/// half of the perf trajectory. Produces bit-identical results to
/// [`compute_weights`].
///
/// # Panics
///
/// Panics if `dag.len() != insts.len()`.
#[must_use]
pub fn compute_weights_reference(insts: &[Inst], dag: &Dag, config: &WeightConfig) -> Vec<u32> {
    assert_eq!(insts.len(), dag.len(), "DAG does not match region");
    let mut weights: Vec<u32> = insts.iter().map(|i| i.op.latency()).collect();

    let balanced: Vec<usize> = (0..insts.len())
        .filter(|&i| is_balanced_load(&insts[i], config.kind))
        .collect();
    if balanced.is_empty() {
        return weights;
    }

    let mut credit = vec![0f64; insts.len()];
    // Scratch buffers reused across contributors.
    let mut covered: Vec<usize> = Vec::new();
    let mut comp_id: Vec<usize> = Vec::new();

    for (i, inst) in insts.iter().enumerate() {
        if !contributes(inst, config.kind) {
            continue;
        }
        covered.clear();
        covered.extend(balanced.iter().copied().filter(|&l| dag.independent(i, l)));
        if covered.is_empty() {
            continue;
        }
        // Union-find over the covered loads under comparability.
        comp_id.clear();
        comp_id.extend(0..covered.len());
        fn find(comp: &mut [usize], mut x: usize) -> usize {
            while comp[x] != x {
                comp[x] = comp[comp[x]];
                x = comp[x];
            }
            x
        }
        for a in 0..covered.len() {
            for b in (a + 1)..covered.len() {
                if dag.comparable(covered[a], covered[b]) {
                    let (ra, rb) = (find(&mut comp_id, a), find(&mut comp_id, b));
                    if ra != rb {
                        comp_id[ra] = rb;
                    }
                }
            }
        }
        let mut comp_size = vec![0usize; covered.len()];
        for a in 0..covered.len() {
            let r = find(&mut comp_id, a);
            comp_size[r] += 1;
        }
        for a in 0..covered.len() {
            let r = find(&mut comp_id, a);
            credit[covered[a]] += 1.0 / comp_size[r] as f64;
        }
    }

    for &l in &balanced {
        weights[l] = cap_weight(credit[l], config.cap);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Inst, Op, Reg, RegClass, RegionId};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn f(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    /// The paper's Figure 1: L0, L1 independent; L2 -> L3 serial;
    /// X1, X2 independent FP ops.
    fn figure1() -> Vec<Inst> {
        let l2res = r(10);
        let l3base = r(11);
        vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)), // 0: L0
            Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)), // 1: L1
            Inst::load(l2res, r(2), 0).with_region(RegionId::new(2)), // 2: L2
            Inst::op_imm(Op::Add, l3base, l2res, 8),                 // 3: addr for L3
            Inst::load(f(3), l3base, 0).with_region(RegionId::new(3)), // 4: L3
            Inst::op(Op::FAdd, f(4), &[f(6), f(7)]),                 // 5: X1
            Inst::op(Op::FAdd, f(5), &[f(8), f(9)]),                 // 6: X2
        ]
    }

    #[test]
    fn traditional_weights_are_fixed() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Traditional));
        for (i, inst) in insts.iter().enumerate() {
            assert_eq!(w[i], inst.op.latency());
        }
    }

    #[test]
    fn figure1_balanced_weights_split_serial_loads() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        let (l0, l1, l2, l3) = (0, 1, 2, 4);
        // Independent loads L0/L1 receive full credit from X1, X2 and the
        // address add; serial pair L2/L3 shares.
        assert_eq!(w[l0], w[l1]);
        assert!(w[l0] > w[l2], "independent loads get more coverage: {w:?}");
        assert!(w[l2] >= Op::Ld.latency());
        assert_eq!(w[l2], w[l3]);
        // The address add (3) is independent of L0, L1 only; X1/X2
        // independent of all four. L0 credit: X1(1) + X2(1) + add(1) +
        // coverage from the *other loads' slots*? Loads never contribute.
        // Components seen from X1: {L0}, {L1}, {L2,L3} -> L0 += 1,
        // L2 += 0.5. From add: covered {L0, L1} (it's between L2 and L3).
        // Total: L0 = 2 + 1 + 1 + 1 = 5, L2 = 2 + 0.5 + 0.5 = 3.
        assert_eq!(w[l0], 5);
        assert_eq!(w[l2], 3);
    }

    #[test]
    fn kernel_matches_reference_on_figure1() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        for kind in SchedulerKind::ALL {
            let cfg = WeightConfig::new(kind);
            assert_eq!(
                compute_weights(&insts, &dag, &cfg),
                compute_weights_reference(&insts, &dag, &cfg),
                "kernel diverges from reference under {kind:?}"
            );
        }
    }

    #[test]
    fn reference_flag_routes_to_the_naive_path() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let fast = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        let naive = compute_weights(
            &insts,
            &dag,
            &WeightConfig::new(SchedulerKind::Balanced).with_reference(true),
        );
        assert_eq!(fast, naive);
    }

    #[test]
    fn cap_applies() {
        // One load covered by many independent int ops.
        let mut insts = vec![Inst::load(f(0), r(0), 0).with_region(RegionId::new(0))];
        for k in 0..100 {
            insts.push(Inst::li(r(100 + k), i64::from(k)));
        }
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        assert_eq!(w[0], latency::MAX_LOAD);
        let w = compute_weights(
            &insts,
            &dag,
            &WeightConfig::new(SchedulerKind::Balanced).with_cap(10),
        );
        assert_eq!(w[0], 10);
    }

    #[test]
    fn dependent_instructions_do_not_cover() {
        // load -> fadd consumer: consumer cannot hide its own producer.
        let insts = vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::op(Op::FAdd, f(1), &[f(0), f(0)]),
        ];
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        assert_eq!(w[0], Op::Ld.latency(), "no independent coverage available");
    }

    #[test]
    fn selective_hits_keep_hit_latency_and_donate() {
        use bsched_ir::LocalityHint;
        // A hit load and a miss load, independent; one shared FP op.
        let mut hit = Inst::load(f(0), r(0), 0).with_region(RegionId::new(0));
        hit.hint = LocalityHint::Hit;
        let mut miss = Inst::load(f(1), r(1), 0).with_region(RegionId::new(1));
        miss.hint = LocalityHint::Miss;
        let insts = vec![hit, miss, Inst::op(Op::FAdd, f(2), &[f(3), f(4)])];
        let dag = Dag::new(&insts);

        let sel = compute_weights(
            &insts,
            &dag,
            &WeightConfig::new(SchedulerKind::SelectiveBalanced),
        );
        assert_eq!(sel[0], Op::Ld.latency(), "hit load keeps optimistic weight");
        // Miss gets credit from the FP op *and* from the hit load's slot.
        assert_eq!(sel[1], 4);

        // Plain balanced: both loads balanced, neither donates.
        let bal = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        assert_eq!(bal[0], 3);
        assert_eq!(bal[1], 3);
    }

    #[test]
    fn stores_contribute_coverage() {
        let insts = vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::store(f(1), r(1), 0).with_region(RegionId::new(1)),
        ];
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        assert_eq!(w[0], 3);
    }

    #[test]
    fn empty_region() {
        let insts: Vec<Inst> = vec![];
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::default());
        assert!(w.is_empty());
    }
}
