//! Scheduling priorities.
//!
//! "The priority of an instruction is simply the sum of the instruction's
//! weight and the maximum priority of its successors" (paper §4.2) — the
//! weighted critical-path distance to the end of the region.

use bsched_ir::Dag;

/// Computes the priority of every node given its weight.
///
/// # Panics
///
/// Panics if `weights.len() != dag.len()`.
#[must_use]
pub fn compute_priorities(dag: &Dag, weights: &[u32]) -> Vec<u64> {
    assert_eq!(weights.len(), dag.len());
    let n = dag.len();
    let mut prio = vec![0u64; n];
    // Nodes are in program order and edges point forward, so a reverse
    // sweep is a reverse-topological traversal.
    for i in (0..n).rev() {
        let best_succ = dag
            .succs(i)
            .iter()
            .map(|&(t, _)| prio[t as usize])
            .max()
            .unwrap_or(0);
        prio[i] = u64::from(weights[i]) + best_succ;
    }
    prio
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{Inst, Op, Reg, RegClass};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }

    #[test]
    fn chain_priorities_accumulate() {
        // li -> add -> add: priorities 3, 2, 1 with unit weights.
        let insts = vec![
            Inst::li(r(0), 1),
            Inst::op_imm(Op::Add, r(1), r(0), 1),
            Inst::op_imm(Op::Add, r(2), r(1), 1),
        ];
        let dag = Dag::new(&insts);
        let w = vec![1, 1, 1];
        let p = compute_priorities(&dag, &w);
        assert_eq!(p, vec![3, 2, 1]);
    }

    #[test]
    fn weight_raises_priority_of_whole_chain() {
        let insts = vec![
            Inst::load(r(1), r(0), 0),            // weight 10 (say)
            Inst::op_imm(Op::Add, r(2), r(1), 1), // consumer
            Inst::li(r(3), 7),                    // independent
        ];
        let dag = Dag::new(&insts);
        let p = compute_priorities(&dag, &[10, 1, 1]);
        assert_eq!(p[0], 11);
        assert_eq!(p[1], 1);
        assert_eq!(p[2], 1);
    }

    #[test]
    fn diamond_takes_max_successor() {
        // 0 feeds 1 and 2; 1 and 2 feed 3 (via two sources).
        let insts = vec![
            Inst::li(r(0), 1),
            Inst::op_imm(Op::Mul, r(1), r(0), 3), // weight 8
            Inst::op_imm(Op::Add, r(2), r(0), 1), // weight 1
            Inst::op(Op::Add, r(3), &[r(1), r(2)]),
        ];
        let dag = Dag::new(&insts);
        let w: Vec<u32> = insts.iter().map(|i| i.op.latency()).collect();
        let p = compute_priorities(&dag, &w);
        assert_eq!(p[3], 1);
        assert_eq!(p[1], 9);
        assert_eq!(p[2], 2);
        assert_eq!(p[0], 10, "takes the multiply path");
    }
}
