//! `bsched-core` — balanced instruction scheduling.
//!
//! This crate implements the paper's primary contribution: a top-down list
//! scheduler in the style of the Multiflow compiler's Phase 3, whose *load
//! weights* can come from three policies:
//!
//! * [`SchedulerKind::Traditional`] — every load gets the optimistic,
//!   architecturally fixed L1-hit latency, as a blocking-processor
//!   scheduler would assume.
//! * [`SchedulerKind::Balanced`] — the Kerns–Eggers balanced-scheduling
//!   weights: each load's weight reflects the *load-level parallelism*
//!   available to hide it, i.e. the number of independent instructions
//!   that can issue while the load is outstanding, shared among the loads
//!   competing for them.
//! * [`SchedulerKind::SelectiveBalanced`] — locality-analysis-aware
//!   variant (paper §3.3): loads proven to be cache hits keep the
//!   optimistic latency and *donate* their issue slots as latency-hiding
//!   parallelism for the remaining (miss/unknown) loads, which are
//!   balanced.
//!
//! The scheduler itself ([`schedule_order`], [`schedule_function`]) uses
//! the priority function and tie-break heuristics of the paper's §4.2:
//! priority = weight + max successor priority; ties broken by (1) largest
//! consumed-minus-defined register count, (2) most newly exposed DAG
//! successors, (3) original program order.
//!
//! # Example: the shape of the paper's Figure 1
//!
//! ```
//! use bsched_core::{compute_weights, SchedulerKind, WeightConfig};
//! use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};
//!
//! // Two independent loads: an independent FP instruction fully covers
//! // both, so both get identical balanced weights above the hit latency.
//! let r = |n| Reg::virt(RegClass::Int, n);
//! let f = |n| Reg::virt(RegClass::Float, n);
//! let insts = vec![
//!     Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
//!     Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)),
//!     Inst::op(Op::FAdd, f(2), &[f(3), f(4)]),
//! ];
//! let dag = Dag::new(&insts);
//! let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
//! assert_eq!(w[0], w[1]);
//! assert!(w[0] > Op::Ld.latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod exact;
pub mod priority;
pub mod scheduler;
pub mod weights;

pub use audit::{RegionSchedule, ScheduleAudit};
pub use exact::{
    schedule_cost, schedule_region_exact, ExactOutcome, ExactStats, DEFAULT_EXACT_BUDGET,
};
pub use priority::compute_priorities;
pub use scheduler::{
    schedule_function, schedule_function_audited, schedule_function_stats, schedule_function_with,
    schedule_order, schedule_region, schedule_region_bounded, schedule_region_full,
    schedule_region_with_pressure, TieBreak, PRESSURE_LIMIT,
};
pub use weights::{compute_weights, compute_weights_reference, SchedulerKind, WeightConfig};
