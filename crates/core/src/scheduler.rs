//! The top-down list scheduler (Multiflow Phase-3 style).
//!
//! At each step the scheduler considers the *ready* instructions — DAG
//! roots whose operands will be available at the current cycle — and picks
//! the one with the highest priority, breaking ties with the paper's three
//! heuristics (§4.2):
//!
//! 1. largest consumed-minus-defined register count (controls pressure);
//! 2. most DAG successors newly exposed;
//! 3. earliest original program order.
//!
//! If nothing is ready at the current cycle (every available instruction
//! is still waiting on a result), the clock advances — that gap is exactly
//! the interlock the weights are trying to schedule around.

use crate::exact::{schedule_cost, schedule_region_exact, ExactStats};
use crate::priority::compute_priorities;
use crate::weights::{compute_weights, SchedulerKind, WeightConfig};
use bsched_ir::{Dag, DepKind, Function, Inst};

/// Computes a schedule (a permutation of `0..insts.len()`) for a region
/// with an externally built DAG and weight vector.
///
/// This entry point is shared by basic-block scheduling and trace
/// scheduling (which adds control edges to the DAG first).
///
/// # Panics
///
/// Panics if the DAG/weight sizes do not match the region.
#[must_use]
pub fn schedule_region(insts: &[Inst], dag: &Dag, weights: &[u32]) -> Vec<usize> {
    schedule_region_with_pressure(insts, dag, weights, Some(PRESSURE_LIMIT))
}

/// Default per-class live-value ceiling before the scheduler prefers
/// pressure-reducing candidates (just under the Alpha's allocatable
/// register count; the paper's §4.2 pressure controls — the 50-cycle
/// weight cap and the consumed-minus-defined tie-break — bound pressure
/// only softly, and the Multiflow scheduler additionally tracked live
/// values during scheduling).
pub const PRESSURE_LIMIT: u32 = 26;

/// [`schedule_region`] with an explicit live-value ceiling (`None`
/// disables pressure gating; used by the `pressure_gate` ablation bench).
#[must_use]
pub fn schedule_region_with_pressure(
    insts: &[Inst],
    dag: &Dag,
    weights: &[u32],
    pressure_limit: Option<u32>,
) -> Vec<usize> {
    schedule_region_bounded(
        insts,
        dag,
        weights,
        pressure_limit,
        &Default::default(),
        &Default::default(),
    )
}

/// Order of the tie-break heuristics after priority (paper §4.2 uses
/// pressure → exposed successors → original order; the alternatives feed
/// the `heuristics` ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Paper order: register pressure, exposed successors, program order.
    #[default]
    Standard,
    /// Exposed successors first, then pressure, then program order.
    ExposedFirst,
    /// Program order only (no intelligent tie-breaking).
    ProgramOrder,
}

/// [`schedule_region_with_pressure`] with block-boundary liveness: regs in
/// `live_in` occupy registers from the start, and regs in `live_out` are
/// never freed by their last in-region use. Without this, a block whose
/// predecessors already hold many values live-through would be scheduled
/// up to the full ceiling and overflow the register file.
#[must_use]
pub fn schedule_region_bounded(
    insts: &[Inst],
    dag: &Dag,
    weights: &[u32],
    pressure_limit: Option<u32>,
    live_in: &std::collections::HashSet<bsched_ir::Reg>,
    live_out: &std::collections::HashSet<bsched_ir::Reg>,
) -> Vec<usize> {
    schedule_region_full(
        insts,
        dag,
        weights,
        pressure_limit,
        live_in,
        live_out,
        TieBreak::Standard,
    )
}

/// The fully parameterised scheduler entry point (pressure ceiling,
/// boundary liveness, tie-break order).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn schedule_region_full(
    insts: &[Inst],
    dag: &Dag,
    weights: &[u32],
    pressure_limit: Option<u32>,
    live_in: &std::collections::HashSet<bsched_ir::Reg>,
    live_out: &std::collections::HashSet<bsched_ir::Reg>,
    tie_break: TieBreak,
) -> Vec<usize> {
    use bsched_ir::RegClass;
    let n = insts.len();
    assert_eq!(dag.len(), n);
    assert_eq!(weights.len(), n);
    if n == 0 {
        return Vec::new();
    }
    let prio = compute_priorities(dag, weights);

    // Remaining in-region uses of each register, for live-value tracking.
    let mut uses_left: std::collections::HashMap<bsched_ir::Reg, u32> =
        std::collections::HashMap::new();
    let mut defined_here: std::collections::HashSet<bsched_ir::Reg> =
        std::collections::HashSet::new();
    for inst in insts {
        for &s in inst.srcs() {
            *uses_left.entry(s).or_insert(0) += 1;
        }
        if let Some(d) = inst.dst {
            defined_here.insert(d);
        }
    }
    let class_ix = |c: RegClass| match c {
        RegClass::Int => 0usize,
        RegClass::Float => 1usize,
    };
    // Registers live into the region occupy space before anything issues.
    let mut live = [0u32; 2];
    for &r in live_in {
        live[class_ix(r.class())] += 1;
    }

    let mut pred_left: Vec<usize> = (0..n).map(|i| dag.preds(i).len()).collect();
    // exposed[i] = number of successor edges of i whose target has exactly
    // one unsatisfied predecessor edge left (tie-break heuristic 2).
    // Maintained incrementally as pred counts drop, instead of re-walking
    // every candidate's successor list on every cycle.
    let mut exposed: Vec<usize> = (0..n)
        .map(|i| {
            dag.succs(i)
                .iter()
                .filter(|&&(t, _)| pred_left[t as usize] == 1)
                .count()
        })
        .collect();
    let mut earliest: Vec<u64> = vec![0; n];
    let mut available: Vec<usize> = (0..n).filter(|&i| pred_left[i] == 0).collect();
    let mut scheduled = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cycle: u64 = 0;

    while order.len() < n {
        // Ready = available whose operands are ready at `cycle`.
        let mut best: Option<usize> = None;
        let mut best_pos = 0usize;
        let mut best_key = (false, 0u64, 0u64, i64::MIN, i64::MIN, usize::MAX);
        let mut min_earliest = u64::MAX;
        for (pos, &i) in available.iter().enumerate() {
            if earliest[i] > cycle {
                min_earliest = min_earliest.min(earliest[i]);
                continue;
            }
            let exposed = exposed[i];
            // When a class is at its live-value ceiling, candidates whose
            // *net* effect grows it further are demoted below every
            // candidate that does not (the boolean leads the key). The
            // net effect counts the value the candidate defines minus the
            // registers whose last use it is.
            let relieves = match pressure_limit {
                None => true,
                Some(limit) => {
                    let mut delta = [0i32; 2];
                    if let Some(d) = insts[i].dst {
                        if !live_in.contains(&d)
                            && (uses_left.get(&d).copied().unwrap_or(0) > 0
                                || live_out.contains(&d))
                        {
                            delta[class_ix(d.class())] += 1;
                        }
                    }
                    let mut seen = [bsched_ir::Reg::phys(RegClass::Int, 0); 3];
                    let mut nseen = 0;
                    for &src in insts[i].srcs() {
                        if seen[..nseen].contains(&src) {
                            continue;
                        }
                        seen[nseen] = src;
                        nseen += 1;
                        let occupies = defined_here.contains(&src) || live_in.contains(&src);
                        if uses_left.get(&src).copied() == Some(1)
                            && occupies
                            && !live_out.contains(&src)
                        {
                            delta[class_ix(src.class())] -= 1;
                        }
                    }
                    (0..2).all(|c| delta[c] <= 0 || live[c] < limit)
                }
            };
            // Among gate-failed candidates, prefer short-latency work
            // (an FP consumer one step from freeing registers) over
            // heavy-weight loads that would pile more values up.
            let gate_rank: u64 = if relieves {
                0
            } else {
                u64::MAX - u64::from(weights[i])
            };
            // Key order: pressure gate, gate rank, priority desc, then
            // the configured tie-break heuristics, original index asc.
            let (t1, t2) = match tie_break {
                TieBreak::Standard => (i64::from(insts[i].pressure_delta()), exposed as i64),
                TieBreak::ExposedFirst => (exposed as i64, i64::from(insts[i].pressure_delta())),
                TieBreak::ProgramOrder => (0, 0),
            };
            let key = (relieves, gate_rank, prio[i], t1, t2, usize::MAX - i);
            if best.is_none() || key > best_key {
                best = Some(i);
                best_pos = pos;
                best_key = key;
            }
        }
        let Some(pick) = best else {
            // Interlock: advance to the next operand-ready time.
            debug_assert!(min_earliest != u64::MAX, "deadlock in list scheduler");
            cycle = min_earliest;
            continue;
        };
        // If every ready candidate would push a saturated class further
        // (gate bit false) and results are still in flight, let the clock
        // run until a pressure-relieving consumer becomes ready.
        if !best_key.0 && min_earliest != u64::MAX {
            cycle = min_earliest;
            continue;
        }

        scheduled[pick] = true;
        available.swap_remove(best_pos);
        order.push(pick);
        // Live-value bookkeeping: last scheduled use frees the register,
        // a def with remaining uses occupies one.
        let mut seen = [bsched_ir::Reg::phys(RegClass::Int, 0); 3];
        let mut nseen = 0;
        for &s in insts[pick].srcs() {
            if seen[..nseen].contains(&s) {
                continue;
            }
            seen[nseen] = s;
            nseen += 1;
            if let Some(u) = uses_left.get_mut(&s) {
                *u = u.saturating_sub(1);
                let occupies = defined_here.contains(&s) || live_in.contains(&s);
                if *u == 0 && occupies && !live_out.contains(&s) {
                    live[class_ix(s.class())] = live[class_ix(s.class())].saturating_sub(1);
                }
            }
        }
        if let Some(d) = insts[pick].dst {
            if !live_in.contains(&d)
                && (uses_left.get(&d).copied().unwrap_or(0) > 0 || live_out.contains(&d))
            {
                live[class_ix(d.class())] += 1;
            }
        }
        for &(t, kind) in dag.succs(pick) {
            let t = t as usize;
            let lat = match kind {
                DepKind::Data => u64::from(weights[pick]),
                _ => 1,
            };
            earliest[t] = earliest[t].max(cycle + lat);
            pred_left[t] -= 1;
            match pred_left[t] {
                0 => available.push(t),
                // One predecessor edge left: every remaining unscheduled
                // predecessor (there is exactly one instruction, possibly
                // with multiple edges) now counts `t` as newly exposable.
                1 => {
                    for &(p, _) in dag.preds(t) {
                        if !scheduled[p as usize] {
                            exposed[p as usize] += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        cycle += 1;
    }
    order
}

/// Builds the DAG and weights for a straight-line region and schedules it.
#[must_use]
pub fn schedule_order(insts: &[Inst], config: &WeightConfig) -> Vec<usize> {
    let dag = Dag::new(insts);
    let weights = compute_weights(insts, &dag, config);
    schedule_region(insts, &dag, &weights)
}

/// Schedules every basic block of `func` in place, with each block's
/// boundary liveness feeding the pressure gate.
pub fn schedule_function(func: &mut Function, config: &WeightConfig) {
    schedule_function_with(func, config, TieBreak::Standard);
}

/// [`schedule_function`] with an explicit tie-break order (ablations).
pub fn schedule_function_with(func: &mut Function, config: &WeightConfig, tie_break: TieBreak) {
    let _ = schedule_function_stats(func, config, tie_break);
}

/// [`schedule_function_with`] that additionally returns the aggregated
/// exact-search statistics (all zeros under the heuristic policies) —
/// the hook the pipeline uses to surface budget-exhaustion fallbacks in
/// run reports without paying for an audit.
pub fn schedule_function_stats(
    func: &mut Function,
    config: &WeightConfig,
    tie_break: TieBreak,
) -> ExactStats {
    schedule_function_inner(func, config, tie_break, None)
}

/// [`schedule_function_with`] that additionally records, per block, the
/// pre-schedule instruction list, the weights, and the emitted order —
/// the evidence the `bsched-verify` legality validator replays.
#[must_use]
pub fn schedule_function_audited(
    func: &mut Function,
    config: &WeightConfig,
    tie_break: TieBreak,
) -> crate::audit::ScheduleAudit {
    let mut audit = crate::audit::ScheduleAudit::new(*config, tie_break);
    audit.exact = schedule_function_inner(func, config, tie_break, Some(&mut audit.regions));
    audit
}

fn schedule_function_inner(
    func: &mut Function,
    config: &WeightConfig,
    tie_break: TieBreak,
    mut audit: Option<&mut Vec<crate::audit::RegionSchedule>>,
) -> ExactStats {
    let cfg = bsched_ir::Cfg::new(func);
    let live = bsched_ir::Liveness::new(func, &cfg);
    let nblocks = func.blocks().len();
    let mut stats = ExactStats::default();
    for bi in 0..nblocks {
        let id = bsched_ir::BlockId::new(bi);
        let live_in = live.live_in(id).clone();
        let mut live_out = live.live_out(id).clone();
        if let Some(c) = func.block(id).term.cond_reg() {
            live_out.insert(c);
        }
        let insts = std::mem::take(&mut func.block_mut(id).insts);
        let dag = Dag::new(&insts);
        let weights = compute_weights(&insts, &dag, config);
        // Region-level stats only — never inside the candidate loop, so
        // the scheduler's hot path stays at current speed.
        if bsched_trace::enabled() {
            let loads = insts.iter().filter(|i| i.op.is_load()).count() as u64;
            bsched_trace::instant(
                bsched_trace::points::SCHED_REGION,
                func.name(),
                &[
                    ("block", bi as u64),
                    ("insts", insts.len() as u64),
                    ("loads", loads),
                    ("weight_sum", weights.iter().map(|&w| u64::from(w)).sum()),
                    ("weight_max", weights.iter().copied().max().unwrap_or(0).into()),
                ],
            );
            for (slot, (inst, &w)) in insts.iter().zip(&weights).enumerate() {
                if inst.op.is_load() {
                    bsched_trace::instant(
                        bsched_trace::points::SCHED_LOAD_WEIGHT,
                        func.name(),
                        &[("block", bi as u64), ("slot", slot as u64), ("weight", u64::from(w))],
                    );
                }
            }
        }
        let mut order = schedule_region_full(
            &insts,
            &dag,
            &weights,
            Some(PRESSURE_LIMIT),
            &live_in,
            &live_out,
            tie_break,
        );
        if config.kind == SchedulerKind::Exact {
            // The heuristic balanced schedule above is the incumbent:
            // on a zero budget (or immediate exhaustion) the emitted
            // schedule is byte-identical to the balanced arm's. Exact
            // orders may exceed the pressure gate — register overflow
            // becomes regalloc spills, and the legality validator and
            // checksum oracle guard correctness.
            let heuristic_cost = schedule_cost(&dag, &weights, &order);
            let outcome = schedule_region_exact(&dag, &weights, config.exact_budget, order);
            stats.regions += 1;
            stats.nodes += outcome.nodes;
            stats.heuristic_cost += heuristic_cost;
            stats.exact_cost += outcome.cost;
            if outcome.proven {
                stats.proven += 1;
            } else {
                stats.fallbacks += 1;
                // Budget exhaustion is reported, never silent: the
                // run report aggregates `fallbacks`, and tracing (when
                // enabled) pins the region.
                if bsched_trace::enabled() {
                    bsched_trace::instant(
                        bsched_trace::points::SCHED_EXACT_FALLBACK,
                        func.name(),
                        &[
                            ("block", bi as u64),
                            ("insts", outcome.order.len() as u64),
                            ("nodes", outcome.nodes),
                            ("best_cost", outcome.cost),
                            ("heuristic_cost", heuristic_cost),
                        ],
                    );
                }
            }
            order = outcome.order;
        }
        if let Some(sink) = audit.as_deref_mut() {
            sink.push(crate::audit::RegionSchedule {
                block: bi,
                insts: insts.clone(),
                weights: weights.clone(),
                order: order.clone(),
            });
        }
        let mut reordered = Vec::with_capacity(insts.len());
        let mut taken: Vec<Option<Inst>> = insts.into_iter().map(Some).collect();
        for i in order {
            reordered.push(taken[i].take().expect("schedule emitted an index twice"));
        }
        func.block_mut(id).insts = reordered;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::SchedulerKind;
    use bsched_ir::{Inst, Op, Reg, RegClass, RegionId};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn f(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    fn assert_valid(insts: &[Inst], order: &[usize]) {
        let dag = Dag::new(insts);
        let mut pos = vec![0usize; insts.len()];
        for (k, &i) in order.iter().enumerate() {
            pos[i] = k;
        }
        assert_eq!(order.len(), insts.len());
        let mut seen = vec![false; insts.len()];
        for &i in order {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        for i in 0..insts.len() {
            for &(t, _) in dag.succs(i) {
                assert!(pos[i] < pos[t as usize], "dependence {i} -> {t} violated");
            }
        }
    }

    /// Two load/consumer pairs plus one independent FP op.
    fn two_load_region() -> Vec<Inst> {
        vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)), // 0: L0
            Inst::op(Op::FAdd, f(10), &[f(0), f(0)]),                // 1: C0
            Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)), // 2: L1
            Inst::op(Op::FAdd, f(11), &[f(1), f(1)]),                // 3: C1
            Inst::op(Op::FMul, f(12), &[f(5), f(6)]),                // 4: X
        ]
    }

    #[test]
    fn schedules_are_valid_permutations() {
        let insts = two_load_region();
        for kind in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
            let order = schedule_order(&insts, &WeightConfig::new(kind));
            assert_valid(&insts, &order);
        }
    }

    #[test]
    fn balanced_places_independents_behind_loads() {
        let insts = two_load_region();
        let trad = schedule_order(&insts, &WeightConfig::new(SchedulerKind::Traditional));
        let bal = schedule_order(&insts, &WeightConfig::new(SchedulerKind::Balanced));
        let pos = |order: &[usize], i: usize| order.iter().position(|&x| x == i).unwrap();
        // Balanced: the independent multiply issues before the first
        // consumer, stretching the load shadows.
        assert!(
            pos(&bal, 4) < pos(&bal, 1),
            "balanced should fill the load shadow with X: {bal:?}"
        );
        // Both loads lead in both schedules.
        assert!(pos(&bal, 0) < 2 && pos(&bal, 2) < 3);
        assert!(pos(&trad, 0) < pos(&trad, 1));
    }

    #[test]
    fn chain_schedules_in_order() {
        let insts = vec![
            Inst::li(r(0), 1),
            Inst::op_imm(Op::Add, r(1), r(0), 1),
            Inst::op_imm(Op::Add, r(2), r(1), 1),
        ];
        let order = schedule_order(&insts, &WeightConfig::default());
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn ties_break_by_pressure_then_origin() {
        // Two equal-priority independent instructions: a store (frees 2)
        // and an li (defines 1). Store should win heuristic 1.
        let insts = vec![
            Inst::li(r(9), 5),                                        // 0
            Inst::store(f(1), r(2), 0).with_region(RegionId::new(0)), // 1
        ];
        let dag = Dag::new(&insts);
        let order = schedule_region(&insts, &dag, &[1, 1]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn empty_block_is_fine() {
        let order = schedule_order(&[], &WeightConfig::default());
        assert!(order.is_empty());
    }

    #[test]
    fn schedule_function_reorders_all_blocks() {
        use bsched_ir::FuncBuilder;
        let mut b = FuncBuilder::new("t");
        let x = b.iconst(1);
        let y = b.binop_imm(Op::Add, x, 2);
        let _z = b.binop_imm(Op::Add, y, 3);
        let blk = b.add_block();
        b.jmp(blk);
        b.switch_to(blk);
        let p = b.iconst(9);
        let _q = b.binop_imm(Op::Mul, p, 3);
        b.ret();
        let mut func = b.finish();
        let before: usize = func.inst_count();
        schedule_function(&mut func, &WeightConfig::default());
        assert_eq!(func.inst_count(), before);
        // Dependences inside each block still hold.
        for (_, block) in func.iter_blocks() {
            let dag = Dag::new(&block.insts);
            for i in 0..block.insts.len() {
                for &(t, _) in dag.succs(i) {
                    assert!(i < t as usize);
                }
            }
        }
    }

    #[test]
    fn large_random_region_schedules_quickly_and_validly() {
        // A few hundred instructions with mixed dependences.
        let mut insts = Vec::new();
        for k in 0..60u32 {
            insts.push(Inst::load(f(k), r(k % 4), i64::from(k) * 8).with_region(RegionId::new(0)));
            insts.push(Inst::op(Op::FMul, f(100 + k), &[f(k), f(k)]));
            insts.push(Inst::op(Op::FAdd, f(200 + k), &[f(100 + k), f(k)]));
            insts.push(
                Inst::store(f(200 + k), r(k % 4), i64::from(k) * 8 + 4096)
                    .with_region(RegionId::new(0)),
            );
        }
        for kind in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
            let order = schedule_order(&insts, &WeightConfig::new(kind));
            assert_valid(&insts, &order);
        }
    }
}

#[cfg(test)]
mod pressure_tests {
    use super::*;
    use crate::weights::SchedulerKind;
    use bsched_ir::{Inst, Op, Reg, RegClass, RegionId};
    use std::collections::{HashMap, HashSet};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn f(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    /// A region with `n` independent load→consume pairs.
    fn wide_region(n: u32) -> Vec<Inst> {
        let mut insts = Vec::new();
        for k in 0..n {
            insts.push(
                Inst::load(f(2 * k), r(k % 4), i64::from(k) * 8).with_region(RegionId::new(0)),
            );
        }
        for k in 0..n {
            insts.push(Inst::op(Op::FMul, f(2 * k + 1), &[f(2 * k), f(2 * k)]));
        }
        for k in 0..n {
            // A separate region: stores must not conservatively alias the
            // loads (different base registers cannot be disambiguated by
            // displacement), or the DAG itself would force every load
            // before every store and make high pressure intrinsic.
            insts.push(
                Inst::store(f(2 * k + 1), r(k % 4), i64::from(k) * 8).with_region(RegionId::new(1)),
            );
        }
        insts
    }

    /// Max simultaneously-live float values over a schedule.
    fn max_live_float(insts: &[Inst], order: &[usize]) -> usize {
        let seq: Vec<&Inst> = order.iter().map(|&i| &insts[i]).collect();
        let mut last_use: HashMap<Reg, usize> = HashMap::new();
        for (pos, inst) in seq.iter().enumerate() {
            for &s in inst.srcs() {
                last_use.insert(s, pos);
            }
        }
        let mut live: HashSet<Reg> = HashSet::new();
        let mut max = 0;
        for (pos, inst) in seq.iter().enumerate() {
            if let Some(d) = inst.dst {
                if last_use.get(&d).is_some_and(|&lu| lu > pos) {
                    live.insert(d);
                }
            }
            for &s in inst.srcs() {
                if last_use.get(&s) == Some(&pos) {
                    live.remove(&s);
                }
            }
            max = max.max(live.iter().filter(|x| x.class() == RegClass::Float).count());
        }
        max
    }

    #[test]
    fn gate_bounds_live_values() {
        let insts = wide_region(60);
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        let gated = schedule_region_with_pressure(&insts, &dag, &w, Some(12));
        let free = schedule_region_with_pressure(&insts, &dag, &w, None);
        let gated_live = max_live_float(&insts, &gated);
        let free_live = max_live_float(&insts, &free);
        assert!(
            gated_live <= 13,
            "gate must bound live floats, got {gated_live}"
        );
        assert!(
            free_live > gated_live,
            "ungated balanced scheduling hoists more ({free_live} vs {gated_live})"
        );
    }

    #[test]
    fn boundary_liveness_shrinks_the_budget() {
        let insts = wide_region(40);
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        // Pretend 10 extra float values are live through this block.
        let live_in: HashSet<Reg> = (100..110).map(f).collect();
        let bounded = schedule_region_bounded(&insts, &dag, &w, Some(12), &live_in, &live_in);
        let live = max_live_float(&insts, &bounded);
        assert!(
            live <= 3,
            "10 live-through values leave only ~2 slots under a ceiling of 12, got {live}"
        );
    }

    #[test]
    fn gate_never_breaks_dependences() {
        let insts = wide_region(50);
        let dag = Dag::new(&insts);
        let w = compute_weights(&insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        for limit in [Some(1), Some(4), Some(26), None] {
            let order = schedule_region_with_pressure(&insts, &dag, &w, limit);
            let mut pos = vec![0; insts.len()];
            for (k, &i) in order.iter().enumerate() {
                pos[i] = k;
            }
            for i in 0..insts.len() {
                for &(t, _) in dag.succs(i) {
                    assert!(pos[i] < pos[t as usize], "limit {limit:?} broke deps");
                }
            }
        }
    }
}
