//! Exact region scheduling: a branch-and-bound search that computes the
//! optimal issue span under the balanced cost model.
//!
//! The list scheduler is greedy; the paper only ever reports its results
//! *relative to traditional scheduling*, so we never learn how much
//! either leaves on the table. This module turns those relative numbers
//! into absolute ones: [`schedule_region_exact`] searches the space of
//! legal schedules for the one minimizing [`schedule_cost`] — the exact
//! issue-span model the list scheduler's internal clock computes, with
//! data edges carrying the producer's (balanced) weight and every other
//! edge one cycle. Minimizing issue span under weights-as-latencies is
//! minimizing expected stall cycles plus the constant `n` issue slots,
//! so the exact arm optimizes precisely what balanced scheduling
//! heuristically targets.
//!
//! # Search
//!
//! Depth-first branch and bound over issue prefixes, seeded with the
//! balanced heuristic schedule as the incumbent:
//!
//! * **Clock normalization.** At each node the clock advances to the
//!   earliest time any available instruction can issue, and only
//!   instructions ready at that time are branched on. An exchange
//!   argument makes this exact: an idle slot with a ready instruction
//!   can always absorb that instruction without delaying anything else,
//!   so some optimal completion always issues a ready instruction at
//!   the next operand-ready time.
//! * **Lower bound.** `max(clock + remaining, max_j issue_j + tail_j)`
//!   where `tail_j` is the static weighted critical path from `j` to a
//!   sink; subtrees that cannot *strictly* beat the incumbent are cut
//!   (ties keep the heuristic order, so the exact arm only perturbs a
//!   schedule when it has proof of improvement).
//! * **Dominance memoization.** States are keyed by an FNV-1a hash of
//!   the scheduled bitset plus each unscheduled instruction's readiness
//!   slack relative to the clock; a revisit at the same or a later
//!   clock is dominated and pruned.
//!
//! # Budget
//!
//! The search explores at most `budget` nodes — a deterministic,
//! machine-independent unit, so budgeted results are cacheable and
//! reproducible (wall-clock deadlines would not be). On exhaustion the
//! best schedule found so far is returned with `proven = false`; with a
//! budget of zero that is byte-for-byte the balanced incumbent. The
//! caller reports exhaustion (run report + trace event) — fallback is
//! never silent.

use bsched_ir::{Dag, DepKind};
use bsched_util::Fnv1a;
use std::collections::HashMap;

/// Default node budget for the branch-and-bound search. Paper-sized
/// regions (tens of instructions) usually prove optimality well under
/// this; unrolled bodies fall back to best-found-so-far.
pub const DEFAULT_EXACT_BUDGET: u64 = 50_000;

/// What one exact search produced.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The best schedule found (the incumbent when nothing better was
    /// proven within budget).
    pub order: Vec<usize>,
    /// Issue-span cost of `order` under [`schedule_cost`].
    pub cost: u64,
    /// `true` when the search ran to completion, making `cost` the
    /// proven optimum; `false` when the node budget was exhausted and
    /// `cost` is only an upper bound.
    pub proven: bool,
    /// Nodes the search expanded (deterministic; the budget's unit).
    pub nodes: u64,
}

/// Aggregated exact-search statistics over every region of a function
/// (and, further up the stack, over every cell of a harness run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Regions the exact arm searched.
    pub regions: u64,
    /// Regions whose optimum was proven within budget.
    pub proven: u64,
    /// Regions that exhausted the node budget and fell back to the
    /// best-found-so-far schedule (the balanced incumbent at worst).
    pub fallbacks: u64,
    /// Total nodes expanded across all searches.
    pub nodes: u64,
    /// Summed issue-span cost of the balanced incumbent schedules.
    pub heuristic_cost: u64,
    /// Summed issue-span cost of the emitted (exact or best-found)
    /// schedules. `exact_cost <= heuristic_cost` always.
    pub exact_cost: u64,
}

impl ExactStats {
    /// Folds another function's (or cell's) stats into this one.
    pub fn merge(&mut self, other: &ExactStats) {
        self.regions += other.regions;
        self.proven += other.proven;
        self.fallbacks += other.fallbacks;
        self.nodes += other.nodes;
        self.heuristic_cost += other.heuristic_cost;
        self.exact_cost += other.exact_cost;
    }

    /// How close the heuristic came to the exact bound, as a
    /// percentage: `100 * exact_cost / heuristic_cost`. 100 means the
    /// balanced heuristic matched the bound on every region; lower
    /// means headroom was left. Returns 100 when nothing was searched.
    #[must_use]
    pub fn pct_of_optimal(&self) -> f64 {
        if self.heuristic_cost == 0 {
            return 100.0;
        }
        100.0 * self.exact_cost as f64 / self.heuristic_cost as f64
    }
}

/// Per-edge latency under the scheduling cost model: a data edge makes
/// the consumer wait out the producer's weight; anti/output/memory/
/// order edges only force issue order (one cycle).
fn edge_latency(kind: DepKind, producer_weight: u32) -> u64 {
    match kind {
        DepKind::Data => u64::from(producer_weight),
        _ => 1,
    }
}

/// Issue-span cost of a schedule under weights-as-latencies — the exact
/// quantity the list scheduler's internal clock computes for its own
/// emitted order.
///
/// Replays `order` on a one-issue-per-cycle machine: instruction `i`
/// issues at `max(clock, earliest[i])`, the clock becomes that plus
/// one, and each successor's `earliest` is raised by the edge latency.
/// The result is the final clock value (last issue + 1). Stall cycles
/// are `cost - n`, so comparing costs compares expected stalls.
///
/// # Panics
///
/// Panics if `weights`/`order` do not match the DAG, or `order` is not
/// a permutation that respects the DAG (debug assertions).
#[must_use]
pub fn schedule_cost(dag: &Dag, weights: &[u32], order: &[usize]) -> u64 {
    let n = dag.len();
    assert_eq!(weights.len(), n, "weights do not match region");
    assert_eq!(order.len(), n, "order does not match region");
    let mut earliest = vec![0u64; n];
    let mut cycle = 0u64;
    for &i in order {
        let issue = cycle.max(earliest[i]);
        cycle = issue + 1;
        for &(t, kind) in dag.succs(i) {
            let lat = edge_latency(kind, weights[i]);
            let e = &mut earliest[t as usize];
            *e = (*e).max(issue + lat);
        }
    }
    cycle
}

/// One undo record for backtracking: a successor's `earliest` before
/// the candidate's issue raised it.
struct EarliestUndo {
    target: usize,
    prev: u64,
}

struct Search<'a> {
    dag: &'a Dag,
    weights: &'a [u32],
    /// `tail[j]` = static lower bound on `cost - issue_j` (weighted
    /// critical path from `j` through a sink, counting `j`'s slot).
    tail: Vec<u64>,
    budget: u64,
    nodes: u64,
    exhausted: bool,
    best_cost: u64,
    best_order: Vec<usize>,
    earliest: Vec<u64>,
    pred_left: Vec<usize>,
    order: Vec<usize>,
    /// Scheduled-set bitset (`n` bits in u64 words).
    scheduled: Vec<u64>,
    /// Dominance memo: state key -> earliest clock the state was
    /// expanded at. A revisit at the same or a later clock is pruned.
    memo: HashMap<u64, u64>,
}

impl Search<'_> {
    fn dfs(&mut self, cycle: u64) {
        let n = self.dag.len();
        if self.order.len() == n {
            if cycle < self.best_cost {
                self.best_cost = cycle;
                self.best_order.clone_from(&self.order);
            }
            return;
        }
        if self.nodes >= self.budget {
            self.exhausted = true;
            return;
        }
        self.nodes += 1;

        // The ready set is rebuilt from `pred_left` and the scheduled
        // bitset at every node rather than maintained incrementally: an
        // O(n) scan per node (the lower-bound loop below is already
        // O(n)), and immune to the ordering bugs positional undo of a
        // shared vector invites under backtracking.
        let available: Vec<usize> = (0..n)
            .filter(|&i| self.scheduled[i / 64] >> (i % 64) & 1 == 0 && self.pred_left[i] == 0)
            .collect();

        // Clock normalization (see module docs): advance to the next
        // operand-ready time; only then-ready instructions branch.
        let min_ready = available
            .iter()
            .map(|&c| self.earliest[c])
            .min()
            .expect("non-empty region has an available instruction");
        let next = cycle.max(min_ready);

        // Lower bound over the unscheduled remainder.
        let remaining = (n - self.order.len()) as u64;
        let mut lb = next + remaining;
        for (w, &word) in self.scheduled.iter().enumerate() {
            let mut unset = !word;
            if (w + 1) * 64 > n {
                unset &= (1u64 << (n - w * 64)) - 1;
            }
            while unset != 0 {
                let j = w * 64 + unset.trailing_zeros() as usize;
                unset &= unset - 1;
                lb = lb.max(next.max(self.earliest[j]) + self.tail[j]);
            }
        }
        // `>=`: ties keep the incumbent, so the exact arm perturbs the
        // balanced schedule only on proven strict improvement.
        if lb >= self.best_cost {
            return;
        }

        // Dominance memo: scheduled set + per-unscheduled readiness
        // slack relative to the (normalized) clock.
        let mut h = Fnv1a::new();
        for &word in &self.scheduled {
            h.write(&word.to_le_bytes());
        }
        for (j, &e) in self.earliest.iter().enumerate() {
            if self.scheduled[j / 64] >> (j % 64) & 1 == 0 {
                h.write(&e.saturating_sub(next).to_le_bytes());
            }
        }
        let key = h.finish();
        if let Some(&seen) = self.memo.get(&key) {
            if seen <= next {
                return;
            }
        }
        self.memo.insert(key, next);

        // Branch on ready candidates, most critical (longest tail)
        // first so good incumbents appear early; index breaks ties for
        // determinism.
        let mut cands: Vec<usize> = available
            .into_iter()
            .filter(|&c| self.earliest[c] <= next)
            .collect();
        cands.sort_by_key(|&c| (std::cmp::Reverse(self.tail[c]), c));

        for c in cands {
            self.scheduled[c / 64] |= 1 << (c % 64);
            self.order.push(c);
            let mut undo: Vec<EarliestUndo> = Vec::new();
            for &(t, kind) in self.dag.succs(c) {
                let t = t as usize;
                undo.push(EarliestUndo {
                    target: t,
                    prev: self.earliest[t],
                });
                let lat = edge_latency(kind, self.weights[c]);
                self.earliest[t] = self.earliest[t].max(next + lat);
                self.pred_left[t] -= 1;
            }

            self.dfs(next + 1);

            for &(t, _) in self.dag.succs(c) {
                self.pred_left[t as usize] += 1;
            }
            for u in undo.into_iter().rev() {
                self.earliest[u.target] = u.prev;
            }
            self.order.pop();
            self.scheduled[c / 64] &= !(1 << (c % 64));
            if self.exhausted {
                return;
            }
        }
    }
}

/// Branch-and-bound search for the schedule minimizing
/// [`schedule_cost`], seeded with `incumbent` (the balanced heuristic
/// schedule) as the initial upper bound.
///
/// Explores at most `budget` nodes; see the module docs for the budget
/// semantics. With `budget == 0` the incumbent is returned untouched
/// (`proven == false` unless the region is trivial).
///
/// # Panics
///
/// Panics if `weights` or `incumbent` do not match the DAG.
#[must_use]
pub fn schedule_region_exact(
    dag: &Dag,
    weights: &[u32],
    budget: u64,
    incumbent: Vec<usize>,
) -> ExactOutcome {
    let n = dag.len();
    assert_eq!(weights.len(), n, "weights do not match region");
    assert_eq!(incumbent.len(), n, "incumbent does not match region");
    let incumbent_cost = schedule_cost(dag, weights, &incumbent);
    if n <= 1 {
        return ExactOutcome {
            order: incumbent,
            cost: incumbent_cost,
            proven: true,
            nodes: 0,
        };
    }

    // Static weighted critical path to a sink, counting each node's own
    // issue slot: tail[j] = max(1, max over edges (lat + tail[t])).
    // DAG edges always point forward in pre-schedule order.
    let mut tail = vec![1u64; n];
    for j in (0..n).rev() {
        let mut t_j = 1u64;
        for &(t, kind) in dag.succs(j) {
            t_j = t_j.max(edge_latency(kind, weights[j]) + tail[t as usize]);
        }
        tail[j] = t_j;
    }

    let pred_left: Vec<usize> = (0..n).map(|i| dag.preds(i).len()).collect();
    let mut search = Search {
        dag,
        weights,
        tail,
        budget,
        nodes: 0,
        exhausted: false,
        best_cost: incumbent_cost,
        best_order: incumbent,
        earliest: vec![0; n],
        pred_left,
        order: Vec::with_capacity(n),
        scheduled: vec![0; n.div_ceil(64)],
        memo: HashMap::new(),
    };
    search.dfs(0);
    ExactOutcome {
        order: search.best_order,
        cost: search.best_cost,
        proven: !search.exhausted,
        nodes: search.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::schedule_region;
    use crate::weights::{compute_weights, SchedulerKind, WeightConfig};
    use bsched_ir::{Inst, Op, Reg, RegClass, RegionId};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn f(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    /// Two load/consumer pairs plus one independent FP op (the shape of
    /// the scheduler tests).
    fn two_load_region() -> Vec<Inst> {
        vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::op(Op::FAdd, f(10), &[f(0), f(0)]),
            Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)),
            Inst::op(Op::FAdd, f(11), &[f(1), f(1)]),
            Inst::op(Op::FMul, f(12), &[f(5), f(6)]),
        ]
    }

    fn balanced_setup(insts: &[Inst]) -> (Dag, Vec<u32>, Vec<usize>) {
        let dag = Dag::new(insts);
        let weights = compute_weights(insts, &dag, &WeightConfig::new(SchedulerKind::Balanced));
        let order = schedule_region(insts, &dag, &weights);
        (dag, weights, order)
    }

    #[test]
    fn cost_matches_the_list_schedulers_clock_on_a_chain() {
        // li -> add -> add issues back to back: cost = 3 issues, with
        // each data edge adding its (unit) latency already absorbed.
        let insts = vec![
            Inst::li(r(0), 1),
            Inst::op_imm(Op::Add, r(1), r(0), 1),
            Inst::op_imm(Op::Add, r(2), r(1), 1),
        ];
        let dag = Dag::new(&insts);
        let w: Vec<u32> = insts.iter().map(|i| i.op.latency()).collect();
        assert_eq!(schedule_cost(&dag, &w, &[0, 1, 2]), 3);
    }

    #[test]
    fn exact_never_loses_to_the_incumbent() {
        let insts = two_load_region();
        let (dag, weights, incumbent) = balanced_setup(&insts);
        let inc_cost = schedule_cost(&dag, &weights, &incumbent);
        let out = schedule_region_exact(&dag, &weights, DEFAULT_EXACT_BUDGET, incumbent);
        assert!(out.proven, "5 instructions must be provable");
        assert!(out.cost <= inc_cost);
        assert_eq!(out.cost, schedule_cost(&dag, &weights, &out.order));
    }

    #[test]
    fn zero_budget_returns_the_incumbent_untouched() {
        let insts = two_load_region();
        let (dag, weights, incumbent) = balanced_setup(&insts);
        let out = schedule_region_exact(&dag, &weights, 0, incumbent.clone());
        assert_eq!(out.order, incumbent, "budget 0 must not perturb the schedule");
        assert!(!out.proven);
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn trivial_regions_are_proven_for_free() {
        let insts = vec![Inst::li(r(0), 1)];
        let dag = Dag::new(&insts);
        let out = schedule_region_exact(&dag, &[1], 0, vec![0]);
        assert!(out.proven);
        assert_eq!(out.cost, 1);
    }

    #[test]
    fn exact_finds_the_interleaving_the_greedy_misses() {
        // Two loads with one consumer each and no independent filler:
        // optimal interleaves load/load/consumer/consumer.
        let insts = vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::op(Op::FAdd, f(10), &[f(0), f(0)]),
            Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)),
            Inst::op(Op::FAdd, f(11), &[f(1), f(1)]),
        ];
        let (dag, weights, incumbent) = balanced_setup(&insts);
        let out = schedule_region_exact(&dag, &weights, DEFAULT_EXACT_BUDGET, incumbent);
        assert!(out.proven);
        // Both loads issue before either consumer in any optimal order.
        let pos = |i: usize| out.order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < 2 && pos(2) < 2, "loads lead: {:?}", out.order);
    }

    #[test]
    fn stats_merge_and_percentage() {
        let mut a = ExactStats {
            regions: 1,
            proven: 1,
            fallbacks: 0,
            nodes: 10,
            heuristic_cost: 10,
            exact_cost: 9,
        };
        let b = ExactStats {
            regions: 1,
            proven: 0,
            fallbacks: 1,
            nodes: 5,
            heuristic_cost: 10,
            exact_cost: 10,
        };
        a.merge(&b);
        assert_eq!(a.regions, 2);
        assert_eq!(a.fallbacks, 1);
        assert_eq!(a.nodes, 15);
        assert!((a.pct_of_optimal() - 95.0).abs() < 1e-9);
        assert!((ExactStats::default().pct_of_optimal() - 100.0).abs() < 1e-9);
    }
}
