//! Schedule audits: the pre-schedule evidence the verifier replays.
//!
//! The scheduler consumes a region (its pre-schedule instruction list),
//! a weight vector, and emits a permutation. Once the function has been
//! reordered in place that evidence is gone — the emitted block *is* the
//! schedule. An audit captures the triple at the moment of scheduling so
//! an external checker (`bsched-verify`) can rebuild the dependence DAG
//! from the pre-schedule instructions and prove the emitted order legal,
//! and can recompute the weights against the retained naive reference.

use crate::exact::ExactStats;
use crate::scheduler::TieBreak;
use crate::weights::WeightConfig;
use bsched_ir::Inst;

/// One scheduled region: what went into the list scheduler and what came
/// out.
#[derive(Debug, Clone)]
pub struct RegionSchedule {
    /// Index of the basic block inside the scheduled function.
    pub block: usize,
    /// The region's instructions in pre-schedule order — the order the
    /// dependence DAG and the weights were computed over.
    pub insts: Vec<Inst>,
    /// The load weights handed to the scheduler, one per instruction.
    pub weights: Vec<u32>,
    /// The emitted schedule: `order[k]` is the pre-schedule index of the
    /// instruction issued `k`-th.
    pub order: Vec<usize>,
}

/// Everything one [`crate::schedule_function_audited`] call decided,
/// region by region.
#[derive(Debug, Clone)]
pub struct ScheduleAudit {
    /// The weight configuration every region was scheduled under.
    pub config: WeightConfig,
    /// The tie-break heuristic order in effect.
    pub tie_break: TieBreak,
    /// Per-block records, in block order.
    pub regions: Vec<RegionSchedule>,
    /// Exact-search statistics aggregated over the function's regions
    /// (all zeros under the heuristic policies).
    pub exact: ExactStats,
}

impl ScheduleAudit {
    /// An empty audit for a given configuration.
    #[must_use]
    pub fn new(config: WeightConfig, tie_break: TieBreak) -> Self {
        ScheduleAudit {
            config,
            tie_break,
            regions: Vec::new(),
            exact: ExactStats::default(),
        }
    }

    /// Total instructions covered by the audited regions.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.regions.iter().map(|r| r.insts.len()).sum()
    }
}
