//! Property tests for the code DAG: the bitset transitive closure must
//! agree with brute-force graph search, and the dependence construction
//! must respect program-order semantics.

use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum GenInst {
    Li {
        dst: u8,
        imm: i8,
    },
    Add {
        dst: u8,
        a: u8,
        b: u8,
    },
    FAdd {
        dst: u8,
        a: u8,
        b: u8,
    },
    Load {
        dst: u8,
        base: u8,
        disp: u8,
        region: u8,
    },
    Store {
        val: u8,
        base: u8,
        disp: u8,
        region: u8,
    },
}

fn materialize(g: &[GenInst]) -> Vec<Inst> {
    let r = |n: u8| Reg::virt(RegClass::Int, u32::from(n) % 8);
    let f = |n: u8| Reg::virt(RegClass::Float, u32::from(n) % 8);
    g.iter()
        .map(|gi| match *gi {
            GenInst::Li { dst, imm } => Inst::li(r(dst), i64::from(imm)),
            GenInst::Add { dst, a, b } => Inst::op(Op::Add, r(dst), &[r(a), r(b)]),
            GenInst::FAdd { dst, a, b } => Inst::op(Op::FAdd, f(dst), &[f(a), f(b)]),
            GenInst::Load {
                dst,
                base,
                disp,
                region,
            } => Inst::load(f(dst), r(base), i64::from(disp % 4) * 8)
                .with_region(RegionId::new(usize::from(region % 3))),
            GenInst::Store {
                val,
                base,
                disp,
                region,
            } => Inst::store(f(val), r(base), i64::from(disp % 4) * 8)
                .with_region(RegionId::new(usize::from(region % 3))),
        })
        .collect()
}

fn arb_inst() -> impl Strategy<Value = GenInst> {
    prop_oneof![
        (any::<u8>(), any::<i8>()).prop_map(|(dst, imm)| GenInst::Li { dst, imm }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(dst, a, b)| GenInst::Add { dst, a, b }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(dst, a, b)| GenInst::FAdd { dst, a, b }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(dst, base, disp, region)| GenInst::Load {
                dst,
                base,
                disp,
                region
            }
        ),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(val, base, disp, region)| GenInst::Store {
                val,
                base,
                disp,
                region
            }
        ),
    ]
}

/// Brute-force reachability over direct edges.
fn reach_bruteforce(dag: &Dag, from: usize, to: usize) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![false; dag.len()];
    while let Some(x) = stack.pop() {
        for &(t, _) in dag.succs(x) {
            let t = t as usize;
            if t == to {
                return true;
            }
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_matches_bruteforce(g in prop::collection::vec(arb_inst(), 1..24)) {
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        for a in 0..dag.len() {
            for b in 0..dag.len() {
                prop_assert_eq!(dag.reaches(a, b), reach_bruteforce(&dag, a, b),
                    "reachability {} -> {}", a, b);
            }
        }
    }

    #[test]
    fn independence_is_symmetric_and_irreflexive(g in prop::collection::vec(arb_inst(), 1..20)) {
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        for a in 0..dag.len() {
            prop_assert!(!dag.independent(a, a));
            for b in 0..dag.len() {
                prop_assert_eq!(dag.independent(a, b), dag.independent(b, a));
                if a != b {
                    prop_assert_ne!(dag.independent(a, b), dag.comparable(a, b));
                }
            }
        }
    }

    #[test]
    fn edges_point_forward_and_cover_reg_deps(g in prop::collection::vec(arb_inst(), 1..20)) {
        let insts = materialize(&g);
        let dag = Dag::new(&insts);
        for i in 0..dag.len() {
            for &(t, _) in dag.succs(i) {
                prop_assert!((t as usize) > i, "edge must go forward");
            }
        }
        // Every consumer is reachable from its most recent producer.
        for (i, inst) in insts.iter().enumerate() {
            for &s in inst.srcs() {
                if let Some(p) = insts[..i].iter().rposition(|x| x.dst == Some(s)) {
                    prop_assert!(dag.reaches(p, i), "RAW {} -> {} missing", p, i);
                }
            }
        }
    }
}
