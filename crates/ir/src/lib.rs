//! `bsched-ir` — an executable, Alpha-like virtual-register IR.
//!
//! This crate provides the program representation shared by every other
//! crate in the balanced-scheduling reproduction:
//!
//! * [`Op`]/[`Inst`]: a RISC instruction set modeled on the DEC Alpha
//!   integer/floating-point subset used by Lo & Eggers (PLDI 1995), with the
//!   fixed latencies of the paper's Table 3.
//! * [`Block`]/[`Function`]/[`Program`]: basic blocks with explicit
//!   terminators, functions carrying counted-loop metadata, and programs
//!   with named, cache-line-aligned memory regions.
//! * [`mod@cfg`]/[`dom`]/[`loops`]/[`liveness`]: control-flow analyses.
//! * [`dag`]: per-region code DAGs (data-dependence graphs) with memory
//!   disambiguation and locality-analysis ordering arcs — the structure the
//!   balanced scheduler's load-level-parallelism computation walks.
//! * [`interp`]: a functional (untimed) reference interpreter used as a
//!   correctness oracle for every optimization and as the profiler that
//!   feeds trace scheduling.
//!
//! # Example
//!
//! ```
//! use bsched_ir::{FuncBuilder, Op, Program, RegClass};
//!
//! let mut program = Program::new("demo");
//! let region = program.add_region("a", 256);
//! let mut b = FuncBuilder::new("main");
//! let base = b.load_region_addr(region);
//! let x = b.load_i(base, 0).with_region(region).emit(&mut b);
//! let one = b.iconst(1);
//! let sum = b.binop(Op::Add, x, one);
//! b.store(sum, base, 8).with_region(region).emit(&mut b);
//! b.ret();
//! program.set_main(b.finish());
//! assert_eq!(program.main().blocks().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod block;
pub mod builder;
pub mod cfg;
pub mod dag;
pub mod display;
pub mod dom;
pub mod func;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod opcode;
pub mod program;
pub mod reg;
pub mod value;
pub mod verify;

pub use analysis::DagAnalysis;
pub use block::{Block, BlockId, BrCond, Terminator};
pub use builder::{FuncBuilder, LoadBuilder, StoreBuilder};
pub use cfg::Cfg;
pub use dag::{Dag, DagBuilder, DepKind};
pub use dom::Dominators;
pub use func::{Bound, CountedLoop, Function};
pub use inst::{Inst, LocalityHint, MemAccess};
pub use interp::{ExecError, Interp, MemImage, Outcome, Profile, RegFile};
pub use liveness::Liveness;
pub use loops::{LoopForest, NaturalLoop};
pub use opcode::{Op, OpClass};
pub use program::{Program, Region, RegionId};
pub use reg::{Reg, RegClass};
pub use value::Value;
pub use verify::{verify_function, verify_program, VerifyError};
