//! Instructions: an opcode plus destination, register sources, and
//! immediate/memory metadata.

use crate::opcode::Op;
use crate::program::RegionId;
use crate::reg::{Reg, RegClass};
use std::fmt;

/// Compile-time cache-behaviour knowledge attached to a load by locality
/// analysis (paper §3.3). `Unknown` loads are balanced-scheduled; `Hit`
/// loads keep the optimistic latency and *donate* their issue slot as
/// latency-hiding parallelism for other loads; `Miss` loads are
/// balanced-scheduled and anchor the miss→hit ordering arcs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LocalityHint {
    /// No reuse information (the default for every instruction).
    #[default]
    Unknown,
    /// Locality analysis proved this reference hits in the cache.
    Hit,
    /// Locality analysis expects this reference to miss (first touch of a
    /// cache line or first iteration of a temporal-reuse loop).
    Miss,
}

/// Memory metadata carried by loads and stores, used by the code DAG's
/// dependence disambiguation and by locality analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// The program region (array) this access is known to touch, if the
    /// frontend could prove one. Accesses to *different* regions never
    /// alias; this models the Multiflow compiler's array dependence
    /// analysis (paper §5.5).
    pub region: Option<RegionId>,
    /// Cache-line reuse group assigned by locality analysis: within a
    /// scheduling region, the `Miss`-marked load of a group must stay ahead
    /// of the `Hit`-marked loads of the same group ("dependence arcs were
    /// added in the code DAG between each miss load and its corresponding
    /// hit loads", paper §4.2).
    pub line_group: Option<u32>,
}

/// Maximum number of register sources any opcode takes.
const MAX_SRCS: usize = 3;

/// A single IR instruction.
///
/// Sources are registers; integer ALU binary operations, shifts, loads and
/// stores may carry an immediate ([`Inst::imm`]): for ALU ops it replaces
/// the second register source, for memory ops it is the Alpha-style
/// displacement off the base register.
#[derive(Clone, PartialEq)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// Destination register, if the opcode defines one (stores do not).
    pub dst: Option<Reg>,
    srcs: [Reg; MAX_SRCS],
    nsrcs: u8,
    /// Immediate operand (ALU second operand / load-store displacement /
    /// [`Op::Li`] value).
    pub imm: Option<i64>,
    /// Floating-point immediate for [`Op::FLi`].
    pub fimm: f64,
    /// Memory metadata (present exactly on loads, stores and
    /// [`Op::LdAddr`]).
    pub mem: Option<MemAccess>,
    /// Locality-analysis cache hint (loads only).
    pub hint: LocalityHint,
    /// `true` for spill/restore instructions inserted by the register
    /// allocator; these are counted separately (paper §4.3).
    pub spill: bool,
}

impl Inst {
    fn raw(op: Op, dst: Option<Reg>, srcs: &[Reg]) -> Self {
        assert!(srcs.len() <= MAX_SRCS, "too many sources");
        let mut s = [Reg::phys(RegClass::Int, 0); MAX_SRCS];
        s[..srcs.len()].copy_from_slice(srcs);
        Inst {
            op,
            dst,
            srcs: s,
            nsrcs: srcs.len() as u8,
            imm: None,
            fimm: 0.0,
            mem: None,
            hint: LocalityHint::Unknown,
            spill: false,
        }
    }

    /// Builds a register-register operation (unary or binary ALU/FP op).
    ///
    /// # Panics
    ///
    /// Panics if the source count does not match [`Op::num_srcs`] or the
    /// opcode is a memory/immediate opcode.
    #[must_use]
    pub fn op(op: Op, dst: Reg, srcs: &[Reg]) -> Self {
        assert!(
            !op.is_memory(),
            "use Inst::load / Inst::store for memory ops"
        );
        assert!(
            !matches!(op, Op::Li | Op::FLi | Op::LdAddr),
            "use the dedicated immediate constructors"
        );
        assert_eq!(srcs.len(), op.num_srcs(), "wrong source count for {op}");
        Inst::raw(op, Some(dst), srcs)
    }

    /// Builds a binary operation whose second operand is an immediate.
    ///
    /// # Panics
    ///
    /// Panics unless the opcode is a two-source integer ALU op or multiply.
    #[must_use]
    pub fn op_imm(op: Op, dst: Reg, a: Reg, imm: i64) -> Self {
        assert!(
            matches!(
                op,
                Op::Add
                    | Op::Sub
                    | Op::And
                    | Op::Or
                    | Op::Xor
                    | Op::Shl
                    | Op::Shr
                    | Op::CmpEq
                    | Op::CmpLt
                    | Op::CmpLe
                    | Op::Mul
            ),
            "{op} cannot take an immediate"
        );
        let mut i = Inst::raw(op, Some(dst), &[a]);
        i.imm = Some(imm);
        i
    }

    /// Builds `dst = imm`.
    #[must_use]
    pub fn li(dst: Reg, imm: i64) -> Self {
        assert_eq!(dst.class(), RegClass::Int);
        let mut i = Inst::raw(Op::Li, Some(dst), &[]);
        i.imm = Some(imm);
        i
    }

    /// Builds `dst = fimm`.
    #[must_use]
    pub fn fli(dst: Reg, fimm: f64) -> Self {
        assert_eq!(dst.class(), RegClass::Float);
        let mut i = Inst::raw(Op::FLi, Some(dst), &[]);
        i.fimm = fimm;
        i
    }

    /// Builds `dst = &region` (region base address).
    #[must_use]
    pub fn ldaddr(dst: Reg, region: RegionId) -> Self {
        assert_eq!(dst.class(), RegClass::Int);
        let mut i = Inst::raw(Op::LdAddr, Some(dst), &[]);
        i.mem = Some(MemAccess {
            region: Some(region),
            line_group: None,
        });
        i
    }

    /// Builds `dst = mem[base + disp]`.
    #[must_use]
    pub fn load(dst: Reg, base: Reg, disp: i64) -> Self {
        assert_eq!(base.class(), RegClass::Int);
        let mut i = Inst::raw(Op::Ld, Some(dst), &[base]);
        i.imm = Some(disp);
        i.mem = Some(MemAccess::default());
        i
    }

    /// Builds `mem[base + disp] = val`.
    #[must_use]
    pub fn store(val: Reg, base: Reg, disp: i64) -> Self {
        assert_eq!(base.class(), RegClass::Int);
        let mut i = Inst::raw(Op::St, None, &[val, base]);
        i.imm = Some(disp);
        i.mem = Some(MemAccess::default());
        i
    }

    /// Builds an integer or floating select `dst = cond != 0 ? a : b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand classes do not match the opcode.
    #[must_use]
    pub fn select(dst: Reg, cond: Reg, a: Reg, b: Reg) -> Self {
        assert_eq!(cond.class(), RegClass::Int);
        assert_eq!(a.class(), dst.class());
        assert_eq!(b.class(), dst.class());
        let op = match dst.class() {
            RegClass::Int => Op::Cmov,
            RegClass::Float => Op::FCmov,
        };
        Inst::raw(op, Some(dst), &[cond, a, b])
    }

    /// Builds a register copy of the appropriate class.
    #[must_use]
    pub fn copy(dst: Reg, src: Reg) -> Self {
        assert_eq!(dst.class(), src.class());
        let op = match dst.class() {
            RegClass::Int => Op::Mov,
            RegClass::Float => Op::FMov,
        };
        Inst::raw(op, Some(dst), &[src])
    }

    /// The register sources.
    #[must_use]
    pub fn srcs(&self) -> &[Reg] {
        &self.srcs[..self.nsrcs as usize]
    }

    /// Mutable access to the register sources (used by renaming passes).
    pub fn srcs_mut(&mut self) -> &mut [Reg] {
        let n = self.nsrcs as usize;
        &mut self.srcs[..n]
    }

    /// The base-address register of a load or store.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a memory access.
    #[must_use]
    pub fn mem_base(&self) -> Reg {
        match self.op {
            Op::Ld => self.srcs[0],
            Op::St => self.srcs[1],
            _ => panic!("mem_base on non-memory instruction {self}"),
        }
    }

    /// The displacement of a load or store (0 when absent).
    #[must_use]
    pub fn mem_disp(&self) -> i64 {
        debug_assert!(self.op.is_memory());
        self.imm.unwrap_or(0)
    }

    /// Marks the memory access as touching `region` (builder-style).
    #[must_use]
    pub fn with_region(mut self, region: RegionId) -> Self {
        let mem = self.mem.get_or_insert_with(MemAccess::default);
        mem.region = Some(region);
        self
    }

    /// Marks the instruction as allocator-inserted spill code.
    #[must_use]
    pub fn as_spill(mut self) -> Self {
        self.spill = true;
        self
    }

    /// Number of registers this instruction *consumes* minus the number it
    /// *defines* — the Multiflow register-pressure tie-break key
    /// (paper §4.2, first heuristic).
    #[must_use]
    pub fn pressure_delta(&self) -> i32 {
        self.nsrcs as i32 - i32::from(self.dst.is_some())
    }
}

impl fmt::Debug for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Ld => write!(
                f,
                "ld {}, [{} + {}]",
                self.dst.unwrap(),
                self.srcs[0],
                self.mem_disp()
            )?,
            Op::St => write!(
                f,
                "st {}, [{} + {}]",
                self.srcs[0],
                self.srcs[1],
                self.mem_disp()
            )?,
            Op::Li => write!(f, "li {}, {}", self.dst.unwrap(), self.imm.unwrap_or(0))?,
            Op::FLi => write!(f, "fli {}, {}", self.dst.unwrap(), self.fimm)?,
            Op::LdAddr => write!(
                f,
                "ldaddr {}, region{}",
                self.dst.unwrap(),
                self.mem
                    .and_then(|m| m.region)
                    .map_or(u32::MAX, |r| r.index())
            )?,
            _ => {
                write!(f, "{}", self.op)?;
                if let Some(d) = self.dst {
                    write!(f, " {d}")?;
                }
                for (k, s) in self.srcs().iter().enumerate() {
                    if k > 0 || self.dst.is_some() {
                        write!(f, ",")?;
                    }
                    write!(f, " {s}")?;
                }
                if let Some(imm) = self.imm {
                    write!(f, ", #{imm}")?;
                }
            }
        }
        match self.hint {
            LocalityHint::Unknown => {}
            LocalityHint::Hit => write!(f, "  ; hit")?,
            LocalityHint::Miss => write!(f, "  ; miss")?,
        }
        if self.spill {
            write!(f, "  ; spill")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn fr(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    #[test]
    fn load_store_accessors() {
        let ld = Inst::load(fr(0), r(1), 16);
        assert_eq!(ld.mem_base(), r(1));
        assert_eq!(ld.mem_disp(), 16);
        assert_eq!(ld.srcs(), &[r(1)]);

        let st = Inst::store(fr(0), r(1), 8);
        assert_eq!(st.mem_base(), r(1));
        assert_eq!(st.dst, None);
        assert_eq!(st.srcs().len(), 2);
    }

    #[test]
    fn pressure_delta_matches_paper_heuristic() {
        // add r0, r1, r2 consumes 2, defines 1 => +1.
        let add = Inst::op(Op::Add, r(0), &[r(1), r(2)]);
        assert_eq!(add.pressure_delta(), 1);
        // li r0, #5 consumes 0, defines 1 => -1.
        assert_eq!(Inst::li(r(0), 5).pressure_delta(), -1);
        // st consumes 2, defines 0 => +2.
        assert_eq!(Inst::store(r(0), r(1), 0).pressure_delta(), 2);
    }

    #[test]
    fn select_picks_class() {
        let s = Inst::select(fr(0), r(1), fr(2), fr(3));
        assert_eq!(s.op, Op::FCmov);
        let s = Inst::select(r(0), r(1), r(2), r(3));
        assert_eq!(s.op, Op::Cmov);
    }

    #[test]
    #[should_panic(expected = "wrong source count")]
    fn op_validates_arity() {
        let _ = Inst::op(Op::Add, r(0), &[r(1)]);
    }

    #[test]
    fn display_is_nonempty() {
        for i in [
            Inst::li(r(0), 1),
            Inst::load(r(0), r(1), 0),
            Inst::store(r(0), r(1), 0),
            Inst::op(Op::FAdd, fr(0), &[fr(1), fr(2)]),
        ] {
            assert!(!i.to_string().is_empty());
        }
    }
}
