//! Register liveness (backward dataflow over the CFG).
//!
//! Consumers: the register allocator (live intervals come from per-block
//! liveness plus a local walk) and trace scheduling, whose speculation
//! safety rule forbids hoisting an instruction above a split when its
//! destination is live into the off-trace path (paper §3.2).

use crate::block::BlockId;
use crate::cfg::Cfg;
use crate::func::Function;
use crate::reg::Reg;
use std::collections::HashSet;

/// Per-block live-in / live-out register sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<HashSet<Reg>>,
    live_out: Vec<HashSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for `func` given its `cfg`.
    #[must_use]
    pub fn new(func: &Function, cfg: &Cfg) -> Self {
        let n = func.blocks().len();
        let mut uses: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<Reg>> = vec![HashSet::new(); n];

        for (id, block) in func.iter_blocks() {
            let (u, d) = (&mut uses[id.index()], &mut defs[id.index()]);
            for inst in &block.insts {
                for &s in inst.srcs() {
                    if !d.contains(&s) {
                        u.insert(s);
                    }
                }
                if let Some(dst) = inst.dst {
                    d.insert(dst);
                }
            }
            if let Some(c) = block.term.cond_reg() {
                if !d.contains(&c) {
                    u.insert(c);
                }
            }
        }

        let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
        let mut changed = true;
        while changed {
            changed = false;
            // Reverse RPO converges quickly for reducible CFGs.
            for &b in cfg.rpo().iter().rev() {
                let bi = b.index();
                let mut out = HashSet::new();
                for &s in cfg.succs(b) {
                    out.extend(live_in[s.index()].iter().copied());
                }
                let mut inn = uses[bi].clone();
                for &r in &out {
                    if !defs[bi].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `b`.
    #[must_use]
    pub fn live_in(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_in[b.index()]
    }

    /// Registers live on exit from `b`.
    #[must_use]
    pub fn live_out(&self, b: BlockId) -> &HashSet<Reg> {
        &self.live_out[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BrCond, Terminator};
    use crate::inst::Inst;
    use crate::opcode::Op;
    use crate::reg::RegClass;

    #[test]
    fn straight_line_liveness() {
        // entry: x = li 1 ; jmp b1
        // b1:    y = add x, #2 ; st y, [x+0]; ret
        let mut f = Function::new("t");
        let x = f.new_reg(RegClass::Int);
        let y = f.new_reg(RegClass::Int);
        let b1 = f.add_block(Block::new(Terminator::Ret));
        f.block_mut(f.entry()).insts.push(Inst::li(x, 1));
        f.block_mut(f.entry()).term = Terminator::Jmp(b1);
        f.block_mut(b1).insts.push(Inst::op_imm(Op::Add, y, x, 2));
        f.block_mut(b1).insts.push(Inst::store(y, x, 0));
        let cfg = Cfg::new(&f);
        let l = Liveness::new(&f, &cfg);
        assert!(l.live_out(f.entry()).contains(&x));
        assert!(l.live_in(b1).contains(&x));
        assert!(!l.live_in(b1).contains(&y));
        assert!(l.live_out(b1).is_empty());
        assert!(l.live_in(f.entry()).is_empty());
    }

    #[test]
    fn loop_carried_value_stays_live() {
        // entry: s = li 0 ; jmp h
        // h: br c -> body | exit
        // body: s = add s, #1 ; jmp h
        // exit: st s, [s+0] ; ret
        let mut f = Function::new("t");
        let s = f.new_reg(RegClass::Int);
        let c = f.new_reg(RegClass::Int);
        let h = f.add_block(Block::new(Terminator::Ret));
        let body = f.add_block(Block::new(Terminator::Jmp(h)));
        let exit = f.add_block(Block::new(Terminator::Ret));
        f.block_mut(f.entry()).insts.push(Inst::li(s, 0));
        f.block_mut(f.entry()).term = Terminator::Jmp(h);
        f.block_mut(h).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: body,
            fall: exit,
        };
        f.block_mut(body).insts.push(Inst::op_imm(Op::Add, s, s, 1));
        f.block_mut(exit).insts.push(Inst::store(s, s, 0));
        let cfg = Cfg::new(&f);
        let l = Liveness::new(&f, &cfg);
        assert!(l.live_in(h).contains(&s));
        assert!(l.live_in(h).contains(&c), "branch condition is a use");
        assert!(l.live_out(body).contains(&s));
        assert!(l.live_in(exit).contains(&s));
    }

    #[test]
    fn branch_condition_defined_locally_is_not_live_in() {
        let mut f = Function::new("t");
        let c = f.new_reg(RegClass::Int);
        let t1 = f.add_block(Block::new(Terminator::Ret));
        let t2 = f.add_block(Block::new(Terminator::Ret));
        f.block_mut(f.entry()).insts.push(Inst::li(c, 1));
        f.block_mut(f.entry()).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: t1,
            fall: t2,
        };
        let cfg = Cfg::new(&f);
        let l = Liveness::new(&f, &cfg);
        assert!(!l.live_in(f.entry()).contains(&c));
    }
}
