//! Code DAGs: per-region data-dependence graphs with memory
//! disambiguation, locality ordering arcs, and a transitive-closure query
//! interface.
//!
//! The balanced scheduler's load-weight computation (see `bsched-core`)
//! needs to ask, for every instruction/load pair, whether the two are
//! *independent* (neither reaches the other) and, for load pairs, whether
//! they are *comparable* (serialised by some dependence path). Both queries
//! are answered from ancestor/descendant bitsets computed once per region.

use crate::analysis::{cached_analysis, DagAnalysis};
use crate::inst::{Inst, LocalityHint};
use crate::reg::Reg;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The kind of a dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// True (read-after-write) dependence; carries the producer's latency.
    Data,
    /// Anti (write-after-read) dependence; latency 0 in the schedule.
    Anti,
    /// Output (write-after-write) dependence; latency 0.
    Output,
    /// Memory ordering (potentially aliasing access pair).
    Mem,
    /// Compiler-inserted ordering arc: a locality-analysis *miss* load must
    /// precede the *hit* loads of its cache-line group (paper §4.2), or a
    /// trace-scheduling control constraint.
    Order,
}

/// A fixed-size bitset over instruction indices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
    fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }
}

/// Incremental builder for a [`Dag`].
///
/// [`DagBuilder::from_insts`] adds the register and memory dependences;
/// callers (trace scheduling) may add extra [`DepKind::Order`] edges before
/// [`DagBuilder::build`] seals the graph and computes reachability.
#[derive(Debug)]
pub struct DagBuilder {
    n: usize,
    succs: Vec<Vec<(u32, DepKind)>>,
    preds: Vec<Vec<(u32, DepKind)>>,
}

impl DagBuilder {
    /// Creates a builder with `n` nodes and no edges.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        DagBuilder {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
        }
    }

    /// Builds the register and memory dependences of a straight-line
    /// instruction region (the classic code-DAG construction).
    ///
    /// Memory disambiguation: accesses to two *different known* regions
    /// never alias; accesses off the same base register at
    /// non-overlapping displacements never alias (all accesses are 8
    /// bytes wide); everything else conservatively does.
    #[must_use]
    pub fn from_insts(insts: &[Inst]) -> Self {
        let n = insts.len();
        let mut b = DagBuilder::empty(n);

        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        let mut uses_since_def: HashMap<Reg, Vec<usize>> = HashMap::new();
        let mut prior_loads: Vec<usize> = Vec::new();
        let mut prior_stores: Vec<usize> = Vec::new();
        // line_group -> index of the group's miss load.
        let mut group_miss: HashMap<u32, usize> = HashMap::new();

        for (i, inst) in insts.iter().enumerate() {
            // RAW from each source's last def.
            for &s in inst.srcs() {
                if let Some(&d) = last_def.get(&s) {
                    b.add_edge(d, i, DepKind::Data);
                }
                uses_since_def.entry(s).or_default().push(i);
            }
            if let Some(d) = inst.dst {
                // WAR from uses since the previous def.
                if let Some(us) = uses_since_def.get(&d) {
                    for &u in us {
                        if u != i {
                            b.add_edge(u, i, DepKind::Anti);
                        }
                    }
                }
                // WAW from the previous def.
                if let Some(&p) = last_def.get(&d) {
                    b.add_edge(p, i, DepKind::Output);
                }
                last_def.insert(d, i);
                uses_since_def.insert(d, Vec::new());
            }

            if inst.op.is_load() {
                for &s in &prior_stores {
                    if may_alias(&insts[s], inst) {
                        b.add_edge(s, i, DepKind::Mem);
                    }
                }
                if let Some(group) = inst.mem.and_then(|m| m.line_group) {
                    match inst.hint {
                        LocalityHint::Miss => {
                            group_miss.insert(group, i);
                        }
                        LocalityHint::Hit => {
                            if let Some(&m) = group_miss.get(&group) {
                                b.add_edge(m, i, DepKind::Order);
                            }
                        }
                        LocalityHint::Unknown => {}
                    }
                }
                prior_loads.push(i);
            } else if inst.op.is_store() {
                for &l in &prior_loads {
                    if may_alias(&insts[l], inst) {
                        b.add_edge(l, i, DepKind::Mem);
                    }
                }
                for &s in &prior_stores {
                    if may_alias(&insts[s], inst) {
                        b.add_edge(s, i, DepKind::Mem);
                    }
                }
                prior_stores.push(i);
            }
        }
        b
    }

    /// Adds an edge `from -> to`. Duplicate `(from, to)` pairs are kept
    /// only once (first kind wins).
    ///
    /// # Panics
    ///
    /// Panics unless `from < to` (regions are processed in program order,
    /// so all dependences point forward).
    pub fn add_edge(&mut self, from: usize, to: usize, kind: DepKind) {
        assert!(from < to, "DAG edges must point forward ({from} -> {to})");
        if self.succs[from].iter().any(|&(t, _)| t as usize == to) {
            return;
        }
        self.succs[from].push((to as u32, kind));
        self.preds[to].push((from as u32, kind));
    }

    /// Seals the graph and computes ancestor/descendant closures.
    #[must_use]
    pub fn build(self) -> Dag {
        let n = self.n;
        let mut below: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for i in (0..n).rev() {
            // Split so we can union a later row into an earlier one.
            let (head, tail) = below.split_at_mut(i + 1);
            for &(t, _) in &self.succs[i] {
                head[i].set(t as usize);
                head[i].union_with(&tail[t as usize - i - 1]);
            }
        }
        let mut above: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for i in 0..n {
            let (head, tail) = above.split_at_mut(i);
            for &(p, _) in &self.preds[i] {
                tail[0].set(p as usize);
                let pa = &head[p as usize];
                tail[0].union_with(pa);
            }
        }
        Dag {
            n,
            succs: self.succs,
            preds: self.preds,
            below,
            above,
            analysis: OnceLock::new(),
        }
    }
}

/// `true` if the two memory accesses may touch the same bytes.
fn may_alias(a: &Inst, b: &Inst) -> bool {
    debug_assert!(a.op.is_memory() && b.op.is_memory());
    if let (Some(ma), Some(mb)) = (a.mem, b.mem) {
        if let (Some(ra), Some(rb)) = (ma.region, mb.region) {
            if ra != rb {
                return false;
            }
        }
    }
    if a.mem_base() == b.mem_base() {
        let (da, db) = (a.mem_disp(), b.mem_disp());
        // 8-byte accesses at displacements 8 or more apart are disjoint.
        if (da - db).abs() >= 8 {
            return false;
        }
    }
    true
}

/// A sealed code DAG with O(1) reachability queries.
#[derive(Debug)]
pub struct Dag {
    n: usize,
    succs: Vec<Vec<(u32, DepKind)>>,
    preds: Vec<Vec<(u32, DepKind)>>,
    below: Vec<BitSet>,
    above: Vec<BitSet>,
    analysis: OnceLock<Arc<DagAnalysis>>,
}

impl Dag {
    /// Builds the DAG of a straight-line region (no extra edges).
    #[must_use]
    pub fn new(insts: &[Inst]) -> Self {
        DagBuilder::from_insts(insts).build()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Direct successors of node `i` as `(target, kind)` pairs.
    #[must_use]
    pub fn succs(&self, i: usize) -> &[(u32, DepKind)] {
        &self.succs[i]
    }

    /// Direct predecessors of node `i` as `(source, kind)` pairs.
    #[must_use]
    pub fn preds(&self, i: usize) -> &[(u32, DepKind)] {
        &self.preds[i]
    }

    /// `true` if a dependence path runs from `a` to `b`.
    #[must_use]
    pub fn reaches(&self, a: usize, b: usize) -> bool {
        self.below[a].get(b)
    }

    /// `true` if no dependence path connects `a` and `b` in either
    /// direction — they may execute concurrently.
    #[must_use]
    pub fn independent(&self, a: usize, b: usize) -> bool {
        a != b && !self.below[a].get(b) && !self.above[a].get(b)
    }

    /// `true` if some dependence path connects `a` and `b` (either
    /// direction) — they are serialised.
    #[must_use]
    pub fn comparable(&self, a: usize, b: usize) -> bool {
        a != b && !self.independent(a, b)
    }

    /// Nodes with no predecessors.
    #[must_use]
    pub fn roots(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.preds[i].is_empty()).collect()
    }

    /// The memoized [`DagAnalysis`] for this DAG over `insts` — computed
    /// on first use, shared by every later call, and deduplicated across
    /// structurally identical DAGs process-wide (the experiment grid's
    /// TS/BS cell pairs build the same region DAGs before scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `insts.len() != self.len()`.
    #[must_use]
    pub fn analysis(&self, insts: &[Inst]) -> &DagAnalysis {
        assert_eq!(insts.len(), self.n, "region does not match DAG");
        self.analysis.get_or_init(|| cached_analysis(self, insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, MemAccess};
    use crate::opcode::Op;
    use crate::program::RegionId;
    use crate::reg::{Reg, RegClass};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn fr(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    #[test]
    fn raw_war_waw() {
        // 0: r0 = li 1
        // 1: r1 = add r0, #1   (RAW on 0)
        // 2: r0 = li 2         (WAR on 1, WAW on 0)
        let insts = vec![
            Inst::li(r(0), 1),
            Inst::op_imm(Op::Add, r(1), r(0), 1),
            Inst::li(r(0), 2),
        ];
        let dag = Dag::new(&insts);
        assert!(dag.reaches(0, 1));
        assert!(dag.reaches(1, 2));
        assert!(dag.reaches(0, 2));
        assert!(dag
            .preds(1)
            .iter()
            .any(|&(p, k)| p == 0 && k == DepKind::Data));
        assert!(dag
            .preds(2)
            .iter()
            .any(|&(p, k)| p == 1 && k == DepKind::Anti));
    }

    #[test]
    fn independent_loads_have_no_edges() {
        // Two loads from different regions via different bases.
        let i0 = Inst::load(fr(0), r(0), 0).with_region(RegionId::new(0));
        let i1 = Inst::load(fr(1), r(1), 0).with_region(RegionId::new(1));
        let dag = Dag::new(&[i0, i1]);
        assert!(dag.independent(0, 1));
        assert_eq!(dag.roots(), vec![0, 1]);
    }

    #[test]
    fn store_load_alias_rules() {
        let st = Inst::store(fr(0), r(0), 0).with_region(RegionId::new(0));
        // Same region, same base, overlapping disp => dependent.
        let ld_same = Inst::load(fr(1), r(0), 0).with_region(RegionId::new(0));
        let dag = Dag::new(&[st.clone(), ld_same]);
        assert!(dag.reaches(0, 1));

        // Same region, same base, disjoint disp => independent.
        let ld_far = Inst::load(fr(1), r(0), 8).with_region(RegionId::new(0));
        let dag = Dag::new(&[st.clone(), ld_far]);
        assert!(dag.independent(0, 1));

        // Different regions => independent even with unknown disps.
        let ld_other = Inst::load(fr(1), r(2), 0).with_region(RegionId::new(1));
        let dag = Dag::new(&[st.clone(), ld_other]);
        assert!(dag.independent(0, 1));

        // Unknown region on one side, different base => dependent.
        let ld_unknown = Inst::load(fr(1), r(2), 0);
        let dag = Dag::new(&[st, ld_unknown]);
        assert!(dag.reaches(0, 1));
    }

    #[test]
    fn loads_do_not_depend_on_loads() {
        let a = Inst::load(fr(0), r(0), 0);
        let b = Inst::load(fr(1), r(0), 0);
        let dag = Dag::new(&[a, b]);
        assert!(dag.independent(0, 1));
    }

    #[test]
    fn locality_order_arc_miss_before_hit() {
        let mem = |g| MemAccess {
            region: Some(RegionId::new(0)),
            line_group: Some(g),
        };
        let mut miss = Inst::load(fr(0), r(0), 0);
        miss.mem = Some(mem(7));
        miss.hint = LocalityHint::Miss;
        let mut hit = Inst::load(fr(1), r(0), 8);
        hit.mem = Some(mem(7));
        hit.hint = LocalityHint::Hit;
        let dag = Dag::new(&[miss, hit]);
        assert!(dag.reaches(0, 1), "hit must not float above its miss");
        assert!(dag.preds(1).iter().any(|&(_, k)| k == DepKind::Order));
    }

    #[test]
    fn transitive_closure_through_chain() {
        // chain of adds 0 -> 1 -> 2 -> 3 plus an independent li at 4.
        let insts = vec![
            Inst::li(r(0), 1),
            Inst::op_imm(Op::Add, r(1), r(0), 1),
            Inst::op_imm(Op::Add, r(2), r(1), 1),
            Inst::op_imm(Op::Add, r(3), r(2), 1),
            Inst::li(r(9), 5),
        ];
        let dag = Dag::new(&insts);
        assert!(dag.reaches(0, 3));
        assert!(!dag.reaches(3, 0));
        for i in 0..4 {
            assert!(dag.independent(i, 4));
        }
        assert!(dag.comparable(0, 3));
        assert!(!dag.comparable(0, 4));
    }

    #[test]
    fn figure1_shape() {
        // Paper Figure 1: loads L0, L1 independent; loads L2 -> L3 serial;
        // X1, X2 independent of all loads.
        // Encode: L0 = ld [r0], L1 = ld [r1], L2 = ld [r2],
        // L3 = ld [r20] where r20 = add(l2result-ish) — we model the serial
        // pair by making L3's base depend on L2's result.
        let l2res = r(10);
        let l3base = r(11);
        let insts = vec![
            Inst::load(fr(0), r(0), 0).with_region(RegionId::new(0)), // L0
            Inst::load(fr(1), r(1), 0).with_region(RegionId::new(1)), // L1
            Inst::load(l2res, r(2), 0).with_region(RegionId::new(2)), // L2
            Inst::op_imm(Op::Add, l3base, l2res, 0),                  // addr
            Inst::load(fr(3), l3base, 0).with_region(RegionId::new(3)), // L3
            Inst::op(Op::FAdd, fr(4), &[fr(6), fr(7)]),               // X1
            Inst::op(Op::FAdd, fr(5), &[fr(8), fr(9)]),               // X2
        ];
        let dag = Dag::new(&insts);
        let (l0, l1, l2, l3, x1, x2) = (0, 1, 2, 4, 5, 6);
        assert!(dag.independent(l0, l1));
        assert!(dag.comparable(l2, l3));
        for x in [x1, x2] {
            for l in [l0, l1, l2, l3] {
                assert!(dag.independent(x, l));
            }
        }
    }
}
