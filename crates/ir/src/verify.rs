//! Structural verification of functions and programs.
//!
//! The verifier is run by the pipeline after every pass; it catches
//! malformed block references, operand-class mismatches, missing
//! immediates/memory metadata, and stale counted-loop metadata.

use crate::block::Terminator;
use crate::func::{Bound, Function};
use crate::opcode::Op;
use crate::program::Program;
use crate::reg::RegClass;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description of the defect.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verification failed: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err<T>(message: impl Into<String>) -> Result<T, VerifyError> {
    Err(VerifyError {
        message: message.into(),
    })
}

/// Verifies one function.
///
/// # Errors
///
/// Returns the first structural defect found.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let nblocks = func.blocks().len();
    if func.entry().index() >= nblocks {
        return err("entry block out of range");
    }
    for (id, block) in func.iter_blocks() {
        for (k, inst) in block.insts.iter().enumerate() {
            let at = format!("{id}[{k}] `{inst}`");
            // Destination presence/class.
            match inst.op {
                Op::St => {
                    if inst.dst.is_some() {
                        return err(format!("{at}: store must not define a register"));
                    }
                }
                _ => {
                    let dst = match inst.dst {
                        Some(d) => d,
                        None => return err(format!("{at}: missing destination")),
                    };
                    if let Some(c) = inst.op.fixed_dst_class() {
                        if dst.class() != c {
                            return err(format!("{at}: destination class must be {c}"));
                        }
                    }
                }
            }
            // Source counts (immediate may replace one ALU source).
            let want = inst.op.num_srcs();
            let got = inst.srcs().len();
            let imm_ok = inst.imm.is_some();
            let arity_ok = match inst.op {
                Op::Ld | Op::St => got == want && imm_ok,
                Op::Li => got == 0 && imm_ok,
                Op::FLi | Op::LdAddr => got == 0,
                _ => got == want || (imm_ok && got + 1 == want),
            };
            if !arity_ok {
                return err(format!(
                    "{at}: bad operand count ({got} srcs, imm={imm_ok})"
                ));
            }
            // Memory metadata.
            if inst.op.is_memory() && inst.mem.is_none() {
                return err(format!("{at}: memory access without MemAccess metadata"));
            }
            if inst.op == Op::LdAddr && inst.mem.and_then(|m| m.region).is_none() {
                return err(format!("{at}: ldaddr without region"));
            }
            // Class checks for selected ops.
            match inst.op {
                Op::Ld | Op::St if inst.mem_base().class() != RegClass::Int => {
                    return err(format!("{at}: memory base must be an integer register"));
                }
                Op::Cmov | Op::FCmov if inst.srcs()[0].class() != RegClass::Int => {
                    return err(format!("{at}: select condition must be integer"));
                }
                _ => {}
            }
            // Locality hints only belong on loads.
            if inst.hint != crate::inst::LocalityHint::Unknown && !inst.op.is_load() {
                return err(format!("{at}: locality hint on non-load"));
            }
        }
        // Terminator targets in range.
        for s in block.term.successors() {
            if s.index() >= nblocks {
                return err(format!("{id}: terminator targets out-of-range block {s}"));
            }
        }
        if let Some(c) = block.term.cond_reg() {
            if c.class() != RegClass::Int {
                return err(format!("{id}: branch condition must be integer"));
            }
        }
    }

    // Counted-loop metadata sanity.
    for (i, l) in func.loops.iter().enumerate() {
        let in_range = |b: crate::block::BlockId| b.index() < nblocks;
        if !(in_range(l.header) && in_range(l.latch) && in_range(l.exit) && in_range(l.preheader)) {
            return err(format!("loop {i}: block id out of range"));
        }
        if l.counter.class() != RegClass::Int {
            return err(format!("loop {i}: counter must be integer"));
        }
        if l.step <= 0 {
            return err(format!("loop {i}: step must be positive"));
        }
        if let Bound::Reg(r) = l.bound {
            if r.class() != RegClass::Int {
                return err(format!("loop {i}: bound register must be integer"));
            }
        }
        match &func.block(l.latch).term {
            Terminator::Jmp(t) if *t == l.header => {}
            t => return err(format!("loop {i}: latch must jump to header, found {t:?}")),
        }
        if let Some(p) = l.parent {
            if p >= func.loops.len() {
                return err(format!("loop {i}: parent index out of range"));
            }
        }
    }
    Ok(())
}

/// Verifies a whole program (main function plus region references).
///
/// # Errors
///
/// Returns the first structural defect found.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    verify_function(program.main())?;
    let nregions = program.regions().len();
    for (id, block) in program.main().iter_blocks() {
        for inst in &block.insts {
            if let Some(m) = inst.mem {
                if let Some(r) = m.region {
                    if r.index() as usize >= nregions {
                        return err(format!("{id}: instruction references unknown {r:?}"));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::Inst;
    use crate::program::Program;

    #[test]
    fn accepts_well_formed_program() {
        let mut p = Program::new("t");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.load_f(base, 0).with_region(r).emit(&mut b);
        b.store(x, base, 8).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        assert!(verify_program(&p).is_ok());
    }

    #[test]
    fn rejects_missing_mem_metadata() {
        let mut f = Function::new("m");
        let base = f.new_reg(RegClass::Int);
        let x = f.new_reg(RegClass::Float);
        let e = f.entry();
        let mut ld = Inst::load(x, base, 0);
        ld.mem = None; // corrupt it
        f.block_mut(e).insts.push(ld);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_wrong_dst_class() {
        let mut f = Function::new("m");
        let i = f.new_reg(RegClass::Int);
        let x = f.new_reg(RegClass::Float);
        let e = f.entry();
        // add writing a float register is malformed.
        let mut bad = Inst::op(Op::Add, i, &[i, i]);
        bad.dst = Some(x);
        f.block_mut(e).insts.push(bad);
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn rejects_out_of_range_region() {
        let mut p = Program::new("t");
        let mut f = Function::new("main");
        let base = f.new_reg(RegClass::Int);
        let dst = f.new_reg(RegClass::Float);
        let e = f.entry();
        f.block_mut(e)
            .insts
            .push(Inst::load(dst, base, 0).with_region(crate::program::RegionId::new(3)));
        p.set_main(f);
        assert!(verify_program(&p).is_err());
    }

    #[test]
    fn rejects_bad_latch() {
        use crate::block::BlockId;
        use crate::func::{Bound, CountedLoop};
        let mut f = Function::new("m");
        let c = f.new_reg(RegClass::Int);
        f.loops.push(CountedLoop {
            header: BlockId::new(0),
            body: vec![],
            latch: BlockId::new(0), // entry ends in Ret, not Jmp header
            exit: BlockId::new(0),
            preheader: BlockId::new(0),
            counter: c,
            step: 1,
            bound: Bound::Imm(4),
            parent: None,
        });
        assert!(verify_function(&f).is_err());
    }
}
