//! Natural-loop discovery from back edges.
//!
//! Used to validate the frontend's [`crate::CountedLoop`] metadata and by
//! trace scheduling, which must not grow traces across loop back edges
//! (paper §5.2).

use crate::block::BlockId;
use crate::cfg::Cfg;
use crate::dom::Dominators;

/// A natural loop: a back edge `latch -> header` plus the set of blocks
/// that reach the latch without passing through the header.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge, dominates all members).
    pub header: BlockId,
    /// The source of the back edge.
    pub latch: BlockId,
    /// All member blocks, including header and latch.
    pub blocks: Vec<BlockId>,
    /// Index of the innermost enclosing loop in the forest, if any.
    pub parent: Option<usize>,
}

impl NaturalLoop {
    /// `true` if `b` belongs to the loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function plus a per-block innermost-loop map.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
    /// For each block, the index of its innermost loop (or `None`).
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Finds every natural loop of the CFG.
    ///
    /// Loops sharing a header are merged (as in classic loop analysis).
    #[must_use]
    pub fn new(cfg: &Cfg, dom: &Dominators) -> Self {
        let n = cfg.num_blocks();
        // Find back edges: b -> h with h dominating b.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for bi in 0..n {
            let b = BlockId::new(bi);
            if !cfg.is_reachable(b) {
                continue;
            }
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => by_header.push((s, vec![b])),
                    }
                }
            }
        }

        let mut loops = Vec::new();
        for (header, latches) in by_header {
            // Collect the natural loop body by walking predecessors from
            // each latch, stopping at the header.
            let mut members = vec![header];
            let mut stack = Vec::new();
            for &l in &latches {
                if !members.contains(&l) {
                    members.push(l);
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if !members.contains(&p) {
                        members.push(p);
                        stack.push(p);
                    }
                }
            }
            members.sort_by_key(|b| b.index());
            loops.push(NaturalLoop {
                header,
                latch: latches[0],
                blocks: members,
                parent: None,
            });
        }

        // Sort by size descending so parents precede children, then assign
        // parents: the smallest enclosing loop.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        let snapshot: Vec<(BlockId, Vec<BlockId>)> =
            loops.iter().map(|l| (l.header, l.blocks.clone())).collect();
        #[allow(clippy::needless_range_loop)] // parallel read of `snapshot`
        for i in 0..loops.len() {
            let header = loops[i].header;
            let mut best: Option<(usize, usize)> = None; // (index, size)
            for (j, (h, blocks)) in snapshot.iter().enumerate() {
                if j != i && *h != header && blocks.contains(&header) {
                    let sz = blocks.len();
                    if best.is_none_or(|(_, bs)| sz < bs) {
                        best = Some((j, sz));
                    }
                }
            }
            loops[i].parent = best.map(|(j, _)| j);
        }

        let mut innermost = vec![None; n];
        // Iterate loops from largest to smallest so smaller (inner) loops
        // overwrite their enclosing loops' claims.
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                innermost[b.index()] = Some(i);
            }
        }
        LoopForest { loops, innermost }
    }

    /// The discovered loops (outer loops first).
    #[must_use]
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Index of the innermost loop containing `b`, if any.
    #[must_use]
    pub fn innermost(&self, b: BlockId) -> Option<usize> {
        self.innermost[b.index()]
    }

    /// `true` if the edge `from -> to` is a loop back edge.
    #[must_use]
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loops
            .iter()
            .any(|l| l.header == to && l.contains(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BrCond, Terminator};
    use crate::func::Function;
    use crate::reg::RegClass;

    /// Two-deep nest:
    /// entry -> oh; oh -> ih | oexit; ih -> ibody | olatch; ibody -> ih;
    /// olatch -> oh.
    fn nest() -> (Function, Cfg, Dominators) {
        let mut f = Function::new("n");
        let oh = f.add_block(Block::new(Terminator::Ret));
        let ih = f.add_block(Block::new(Terminator::Ret));
        let ibody = f.add_block(Block::new(Terminator::Jmp(ih)));
        let olatch = f.add_block(Block::new(Terminator::Jmp(oh)));
        let oexit = f.add_block(Block::new(Terminator::Ret));
        let c = f.new_reg(RegClass::Int);
        f.block_mut(f.entry()).term = Terminator::Jmp(oh);
        f.block_mut(oh).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: ih,
            fall: oexit,
        };
        f.block_mut(ih).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: ibody,
            fall: olatch,
        };
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        (f, cfg, dom)
    }

    #[test]
    fn finds_nested_loops() {
        let (_f, cfg, dom) = nest();
        let forest = LoopForest::new(&cfg, &dom);
        assert_eq!(forest.loops().len(), 2);
        let outer = &forest.loops()[0];
        let inner = &forest.loops()[1];
        assert!(outer.blocks.len() > inner.blocks.len());
        assert_eq!(inner.parent, Some(0));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.header, BlockId::new(2));
        assert!(outer.contains(inner.header));
    }

    #[test]
    fn innermost_map_prefers_inner_loop() {
        let (_f, cfg, dom) = nest();
        let forest = LoopForest::new(&cfg, &dom);
        let ibody = BlockId::new(3);
        let olatch = BlockId::new(4);
        assert_eq!(forest.innermost(ibody), Some(1));
        assert_eq!(forest.innermost(olatch), Some(0));
        assert_eq!(forest.innermost(BlockId::new(5)), None); // oexit
    }

    #[test]
    fn back_edge_detection() {
        let (_f, cfg, dom) = nest();
        let forest = LoopForest::new(&cfg, &dom);
        assert!(forest.is_back_edge(BlockId::new(3), BlockId::new(2))); // ibody -> ih
        assert!(forest.is_back_edge(BlockId::new(4), BlockId::new(1))); // olatch -> oh
        assert!(!forest.is_back_edge(BlockId::new(1), BlockId::new(2)));
    }
}
