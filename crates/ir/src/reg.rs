//! Virtual and physical registers.

use std::fmt;

/// The register class an operand lives in.
///
/// The Alpha has separate integer and floating-point register files; the
/// scheduler's register-pressure heuristic and the register allocator both
/// treat the classes independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// 64-bit integer register (addresses, counters, conditions).
    Int,
    /// 64-bit floating-point register.
    Float,
}

impl RegClass {
    /// All register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// A short lowercase name used by the printer (`r` / `f`).
    #[must_use]
    pub fn prefix(self) -> char {
        match self {
            RegClass::Int => 'r',
            RegClass::Float => 'f',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => f.write_str("int"),
            RegClass::Float => f.write_str("float"),
        }
    }
}

/// A register operand: a class plus an index.
///
/// Indices `0..Reg::NUM_PHYS` denote *physical* registers (the state the
/// register allocator rewrites into); indices at or above
/// [`Reg::FIRST_VIRTUAL`] denote *virtual* registers as produced by the
/// frontend and the optimizer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    class: RegClass,
    index: u32,
}

impl Reg {
    /// Number of architectural registers per class (Alpha: r0–r30 usable;
    /// r31/f31 read as zero and are not modeled).
    pub const NUM_PHYS: u32 = 31;

    /// First index used for virtual registers.
    pub const FIRST_VIRTUAL: u32 = 1 << 16;

    /// Creates a virtual register. Used by [`crate::Function::new_reg`];
    /// prefer that method so indices stay unique.
    #[must_use]
    pub fn virt(class: RegClass, n: u32) -> Self {
        Reg {
            class,
            index: Self::FIRST_VIRTUAL + n,
        }
    }

    /// Creates a physical register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Reg::NUM_PHYS`.
    #[must_use]
    pub fn phys(class: RegClass, n: u32) -> Self {
        assert!(
            n < Self::NUM_PHYS,
            "physical register index {n} out of range"
        );
        Reg { class, index: n }
    }

    /// The register's class.
    #[must_use]
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The raw index (virtual indices include the [`Reg::FIRST_VIRTUAL`]
    /// offset).
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }

    /// `true` if this is a physical register.
    #[must_use]
    pub fn is_phys(self) -> bool {
        self.index < Self::FIRST_VIRTUAL
    }

    /// The virtual-register ordinal, if this register is virtual.
    #[must_use]
    pub fn virt_index(self) -> Option<u32> {
        self.index.checked_sub(Self::FIRST_VIRTUAL)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.virt_index() {
            write!(f, "%{}{}", self.class.prefix(), v)
        } else {
            write!(f, "${}{}", self.class.prefix(), self.index)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_and_physical_are_distinct() {
        let v = Reg::virt(RegClass::Int, 0);
        let p = Reg::phys(RegClass::Int, 0);
        assert!(!v.is_phys());
        assert!(p.is_phys());
        assert_ne!(v, p);
        assert_eq!(v.virt_index(), Some(0));
        assert_eq!(p.virt_index(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::virt(RegClass::Float, 3).to_string(), "%f3");
        assert_eq!(Reg::phys(RegClass::Int, 7).to_string(), "$r7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phys_out_of_range_panics() {
        let _ = Reg::phys(RegClass::Int, Reg::NUM_PHYS);
    }

    #[test]
    fn classes_differ() {
        assert_ne!(Reg::virt(RegClass::Int, 1), Reg::virt(RegClass::Float, 1));
    }
}
