//! Instruction opcodes and their architectural latencies.
//!
//! The opcode set is the Alpha-like subset used by the paper's workload:
//! single-cycle integer ALU operations, an 8-cycle integer multiply,
//! 2-cycle (L1-hit) loads, single-cycle stores, 4-cycle pipelined
//! floating-point operations, and 17/30-cycle floating-point divides
//! (paper Table 3). Branches live in block terminators, not in the
//! instruction list (see [`crate::Terminator`]).

use crate::reg::RegClass;
use std::fmt;

/// Latencies from Table 3 of the paper.
pub mod latency {
    /// Single-cycle integer operation.
    pub const INT_OP: u32 = 1;
    /// Integer multiply.
    pub const INT_MUL: u32 = 8;
    /// Load that hits in the first-level cache — the *optimistic* estimate a
    /// traditional scheduler uses for every load.
    pub const LOAD_HIT: u32 = 2;
    /// Store.
    pub const STORE: u32 = 1;
    /// Pipelined floating-point operation (excluding divide).
    pub const FP_OP: u32 = 4;
    /// Floating-point divide, 23-bit fraction (single precision).
    pub const FP_DIV_SINGLE: u32 = 17;
    /// Floating-point divide, 53-bit fraction (double precision).
    pub const FP_DIV_DOUBLE: u32 = 30;
    /// Branch resolution latency.
    pub const BRANCH: u32 = 2;
    /// The maximum possible load latency (a main-memory access); balanced
    /// load weights are capped here (paper §4.2, footnote 1).
    pub const MAX_LOAD: u32 = 50;
}

/// Broad instruction classes used for dynamic instruction accounting
/// (paper §4.3: long/short integer, long/short floating point, loads,
/// stores, branches, spills/restores are counted separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation ("short integer").
    IntAlu,
    /// Integer multiply ("long integer").
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Pipelined floating-point operation ("short floating point").
    FpOp,
    /// Floating-point divide ("long floating point").
    FpDiv,
}

/// An instruction opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    // --- integer, 1 cycle ---
    /// Integer add: `dst = a + b` (wrapping).
    Add,
    /// Integer subtract: `dst = a - b` (wrapping).
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left by the (immediate or register) amount, mod 64.
    Shl,
    /// Arithmetic shift right by the amount, mod 64.
    Shr,
    /// Integer compare equal: `dst = (a == b) as i64`.
    CmpEq,
    /// Integer signed compare less-than.
    CmpLt,
    /// Integer signed compare less-or-equal.
    CmpLe,
    /// Integer select: `dst = if cond != 0 { a } else { b }`.
    ///
    /// This models Alpha predication via `CMOV`; we fold the move/cmov pair
    /// into one 3-source select so that predicated code stays in
    /// single-assignment shape for renaming (see DESIGN.md).
    Cmov,
    /// Register copy (integer).
    Mov,
    /// Load integer immediate (`lda`-style): `dst = imm`.
    Li,
    /// Materialise the base address of a program region: `dst = &region`.
    /// The region is carried in the instruction's memory-access slot.
    LdAddr,

    // --- integer, 8 cycles ---
    /// Integer multiply.
    Mul,

    // --- memory ---
    /// Load 64 bits: `dst = mem[base + disp]`. Destination class selects an
    /// integer or floating-point load.
    Ld,
    /// Store 64 bits: `mem[base + disp] = val`.
    St,

    // --- floating point, 4 cycles ---
    /// Floating-point add.
    FAdd,
    /// Floating-point subtract.
    FSub,
    /// Floating-point multiply.
    FMul,
    /// Floating-point compare equal, writing 0/1 to an integer register.
    FCmpEq,
    /// Floating-point compare less-than, writing 0/1 to an integer register.
    FCmpLt,
    /// Floating-point compare less-or-equal, writing 0/1 to an integer register.
    FCmpLe,
    /// Floating-point select: `dst = if cond != 0 { a } else { b }`
    /// (cond is an integer register).
    FCmov,
    /// Register copy (floating point).
    FMov,
    /// Load floating-point immediate: `dst = fimm`.
    FLi,
    /// Convert integer to floating point.
    CvtIF,
    /// Convert floating point to integer (truncating).
    CvtFI,
    /// Floating-point negate.
    FNeg,
    /// Floating-point square root approximation (modeled with divide-single
    /// latency; stands in for the long pipelined operations in the numeric
    /// kernels).
    FSqrt,

    // --- floating point divides ---
    /// Floating-point divide, single precision (17 cycles).
    FDivS,
    /// Floating-point divide, double precision (30 cycles).
    FDivD,
}

impl Op {
    /// The fixed architectural latency in cycles (loads report the
    /// optimistic L1-hit latency; the simulator substitutes the dynamic
    /// memory-hierarchy latency at run time).
    #[must_use]
    pub fn latency(self) -> u32 {
        use latency::*;
        match self.class() {
            OpClass::IntAlu => INT_OP,
            OpClass::IntMul => INT_MUL,
            OpClass::Load => LOAD_HIT,
            OpClass::Store => STORE,
            OpClass::FpOp => FP_OP,
            OpClass::FpDiv => match self {
                Op::FDivS | Op::FSqrt => FP_DIV_SINGLE,
                _ => FP_DIV_DOUBLE,
            },
        }
    }

    /// The accounting class of the opcode.
    #[must_use]
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | CmpEq | CmpLt | CmpLe | Cmov | Mov | Li
            | LdAddr => OpClass::IntAlu,
            Mul => OpClass::IntMul,
            Ld => OpClass::Load,
            St => OpClass::Store,
            FAdd | FSub | FMul | FCmpEq | FCmpLt | FCmpLe | FCmov | FMov | FLi | CvtIF | CvtFI
            | FNeg => OpClass::FpOp,
            FSqrt | FDivS | FDivD => OpClass::FpDiv,
        }
    }

    /// `true` for opcodes that read or write memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// `true` for loads.
    #[must_use]
    pub fn is_load(self) -> bool {
        self == Op::Ld
    }

    /// `true` for stores.
    #[must_use]
    pub fn is_store(self) -> bool {
        self == Op::St
    }

    /// The register class of the destination, if the opcode defines one.
    ///
    /// [`Op::Ld`], [`Op::Mov`]-style copies and selects take their class
    /// from the destination register itself and return `None` here.
    #[must_use]
    pub fn fixed_dst_class(self) -> Option<RegClass> {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | CmpEq | CmpLt | CmpLe | Mov | Li | LdAddr
            | Mul | FCmpEq | FCmpLt | FCmpLe | CvtFI | Cmov => Some(RegClass::Int),
            FAdd | FSub | FMul | FCmov | FMov | FLi | CvtIF | FNeg | FSqrt | FDivS | FDivD => {
                Some(RegClass::Float)
            }
            Ld => None,
            St => None,
        }
    }

    /// The number of register sources the opcode takes when no immediate is
    /// used (the second integer source of binary ALU ops may be replaced by
    /// an immediate; see [`crate::Inst`]).
    #[must_use]
    pub fn num_srcs(self) -> usize {
        use Op::*;
        match self {
            Li | FLi | LdAddr => 0,
            Mov | FMov | CvtIF | CvtFI | FNeg | FSqrt | Ld => 1,
            Add | Sub | And | Or | Xor | Shl | Shr | CmpEq | CmpLt | CmpLe | Mul | FAdd | FSub
            | FMul | FCmpEq | FCmpLt | FCmpLe | FDivS | FDivD | St => 2,
            Cmov | FCmov => 3,
        }
    }

    /// Short mnemonic used by the printer.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            CmpEq => "cmpeq",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            Cmov => "cmov",
            Mov => "mov",
            Li => "li",
            LdAddr => "ldaddr",
            Mul => "mul",
            Ld => "ld",
            St => "st",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FCmpEq => "fcmpeq",
            FCmpLt => "fcmplt",
            FCmpLe => "fcmple",
            FCmov => "fcmov",
            FMov => "fmov",
            FLi => "fli",
            CvtIF => "cvtif",
            CvtFI => "cvtfi",
            FNeg => "fneg",
            FSqrt => "fsqrt",
            FDivS => "fdivs",
            FDivD => "fdivd",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table3() {
        assert_eq!(Op::Add.latency(), 1);
        assert_eq!(Op::Mul.latency(), 8);
        assert_eq!(Op::Ld.latency(), 2);
        assert_eq!(Op::St.latency(), 1);
        assert_eq!(Op::FAdd.latency(), 4);
        assert_eq!(Op::FDivS.latency(), 17);
        assert_eq!(Op::FDivD.latency(), 30);
    }

    #[test]
    fn classes_are_consistent() {
        assert!(Op::Ld.is_load());
        assert!(Op::St.is_store());
        assert!(Op::Ld.is_memory() && Op::St.is_memory());
        assert!(!Op::FAdd.is_memory());
        assert_eq!(Op::Mul.class(), OpClass::IntMul);
        assert_eq!(Op::FDivD.class(), OpClass::FpDiv);
    }

    #[test]
    fn fp_compares_write_int() {
        assert_eq!(Op::FCmpLt.fixed_dst_class(), Some(RegClass::Int));
        assert_eq!(Op::FAdd.fixed_dst_class(), Some(RegClass::Float));
        assert_eq!(Op::Ld.fixed_dst_class(), None);
    }

    #[test]
    fn src_counts() {
        assert_eq!(Op::Li.num_srcs(), 0);
        assert_eq!(Op::Ld.num_srcs(), 1);
        assert_eq!(Op::St.num_srcs(), 2);
        assert_eq!(Op::Cmov.num_srcs(), 3);
    }
}
