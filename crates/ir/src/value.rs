//! Run-time values and pure-operation evaluation, shared by the functional
//! interpreter and the timing simulator.

use crate::opcode::Op;
use crate::reg::RegClass;
use std::fmt;

/// A run-time value: a 64-bit integer or a 64-bit float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
}

impl Value {
    /// The zero value of a register class.
    #[must_use]
    pub fn zero(class: RegClass) -> Self {
        match class {
            RegClass::Int => Value::Int(0),
            RegClass::Float => Value::Float(0.0),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float.
    #[must_use]
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => panic!("expected integer value, found float {v}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    #[must_use]
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(v) => v,
            Value::Int(v) => panic!("expected float value, found integer {v}"),
        }
    }

    /// The 64-bit memory image of the value.
    #[must_use]
    pub fn to_bits(self) -> u64 {
        match self {
            Value::Int(v) => v as u64,
            Value::Float(v) => v.to_bits(),
        }
    }

    /// Reinterprets a 64-bit memory image in the given class.
    #[must_use]
    pub fn from_bits(class: RegClass, bits: u64) -> Self {
        match class {
            RegClass::Int => Value::Int(bits as i64),
            RegClass::Float => Value::Float(f64::from_bits(bits)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

/// Evaluates a pure (non-memory) operation.
///
/// `srcs` are the source register values; `imm` supplies the immediate
/// second operand of integer ALU ops or the [`Op::Li`] payload; `fimm`
/// supplies the [`Op::FLi`] payload.
///
/// # Panics
///
/// Panics if called on a memory opcode ([`Op::Ld`], [`Op::St`],
/// [`Op::LdAddr`]) or with mismatched operand classes.
#[must_use]
pub fn eval(op: Op, srcs: &[Value], imm: Option<i64>, fimm: f64) -> Value {
    use Op::*;
    let int2 = |f: fn(i64, i64) -> i64| {
        let a = srcs[0].as_int();
        let b = match imm {
            Some(v) => v,
            None => srcs[1].as_int(),
        };
        Value::Int(f(a, b))
    };
    let fp2 = |f: fn(f64, f64) -> f64| Value::Float(f(srcs[0].as_float(), srcs[1].as_float()));
    let fcmp =
        |f: fn(f64, f64) -> bool| Value::Int(i64::from(f(srcs[0].as_float(), srcs[1].as_float())));
    match op {
        Add => int2(i64::wrapping_add),
        Sub => int2(i64::wrapping_sub),
        And => int2(|a, b| a & b),
        Or => int2(|a, b| a | b),
        Xor => int2(|a, b| a ^ b),
        Shl => int2(|a, b| a.wrapping_shl(b as u32 & 63)),
        Shr => int2(|a, b| a.wrapping_shr(b as u32 & 63)),
        CmpEq => int2(|a, b| i64::from(a == b)),
        CmpLt => int2(|a, b| i64::from(a < b)),
        CmpLe => int2(|a, b| i64::from(a <= b)),
        Mul => int2(i64::wrapping_mul),
        Mov => srcs[0],
        Li => Value::Int(imm.expect("li without immediate")),
        Cmov | FCmov => {
            if srcs[0].as_int() != 0 {
                srcs[1]
            } else {
                srcs[2]
            }
        }
        FAdd => fp2(|a, b| a + b),
        FSub => fp2(|a, b| a - b),
        FMul => fp2(|a, b| a * b),
        FDivS | FDivD => fp2(|a, b| a / b),
        FCmpEq => fcmp(|a, b| a == b),
        FCmpLt => fcmp(|a, b| a < b),
        FCmpLe => fcmp(|a, b| a <= b),
        FMov => srcs[0],
        FLi => Value::Float(fimm),
        CvtIF => Value::Float(srcs[0].as_int() as f64),
        CvtFI => Value::Int(srcs[0].as_float() as i64),
        FNeg => Value::Float(-srcs[0].as_float()),
        FSqrt => Value::Float(srcs[0].as_float().abs().sqrt()),
        Ld | St | LdAddr => panic!("eval called on memory opcode {op}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ops() {
        let a = Value::Int(6);
        let b = Value::Int(7);
        assert_eq!(eval(Op::Add, &[a, b], None, 0.0), Value::Int(13));
        assert_eq!(eval(Op::Mul, &[a, b], None, 0.0), Value::Int(42));
        assert_eq!(eval(Op::Add, &[a], Some(10), 0.0), Value::Int(16));
        assert_eq!(eval(Op::CmpLt, &[a, b], None, 0.0), Value::Int(1));
        assert_eq!(eval(Op::Shl, &[a], Some(3), 0.0), Value::Int(48));
    }

    #[test]
    fn fp_ops() {
        let a = Value::Float(1.5);
        let b = Value::Float(0.5);
        assert_eq!(eval(Op::FAdd, &[a, b], None, 0.0), Value::Float(2.0));
        assert_eq!(eval(Op::FDivD, &[a, b], None, 0.0), Value::Float(3.0));
        assert_eq!(eval(Op::FCmpLt, &[b, a], None, 0.0), Value::Int(1));
        assert_eq!(
            eval(Op::FSqrt, &[Value::Float(4.0)], None, 0.0),
            Value::Float(2.0)
        );
    }

    #[test]
    fn selects() {
        let c1 = Value::Int(1);
        let c0 = Value::Int(0);
        let a = Value::Float(1.0);
        let b = Value::Float(2.0);
        assert_eq!(eval(Op::FCmov, &[c1, a, b], None, 0.0), a);
        assert_eq!(eval(Op::FCmov, &[c0, a, b], None, 0.0), b);
    }

    #[test]
    fn conversions_and_bits() {
        assert_eq!(
            eval(Op::CvtIF, &[Value::Int(3)], None, 0.0),
            Value::Float(3.0)
        );
        assert_eq!(
            eval(Op::CvtFI, &[Value::Float(3.9)], None, 0.0),
            Value::Int(3)
        );
        let v = Value::Float(2.5);
        assert_eq!(Value::from_bits(RegClass::Float, v.to_bits()), v);
        let v = Value::Int(-7);
        assert_eq!(Value::from_bits(RegClass::Int, v.to_bits()), v);
    }

    #[test]
    fn wrapping_behaviour() {
        let max = Value::Int(i64::MAX);
        assert_eq!(eval(Op::Add, &[max], Some(1), 0.0), Value::Int(i64::MIN));
    }
}
