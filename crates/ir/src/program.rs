//! Programs: a main function plus named, cache-line-aligned memory regions.

use crate::func::Function;
use std::fmt;

/// Cache-line size used for region alignment (Alpha 21164 first-level
/// cache: 32-byte lines; paper §3.3 "we align the arrays on cache-line
/// boundaries").
pub const LINE_ALIGN: u64 = 32;

/// Identifier of a memory region (array) within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        RegionId(u32::try_from(index).expect("region index overflow"))
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// A named, statically sized block of memory (an array).
///
/// Regions are laid out sequentially, each aligned to [`LINE_ALIGN`];
/// [`crate::Op::LdAddr`] materialises a region's base address.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    name: String,
    size: u64,
    init: Vec<u8>,
    observable: bool,
}

impl Region {
    /// Creates a zero-initialised region of `size` bytes.
    #[must_use]
    pub fn zeroed(name: impl Into<String>, size: u64) -> Self {
        Region {
            name: name.into(),
            size,
            init: Vec::new(),
            observable: true,
        }
    }

    /// Marks the region as *scratch*: excluded from the observable-memory
    /// checksum. Used for the register allocator's spill area, whose
    /// residue is not program output.
    #[must_use]
    pub fn hidden(mut self) -> Self {
        self.observable = false;
        self
    }

    /// `true` when the region participates in the observable-memory
    /// checksum.
    #[must_use]
    pub fn is_observable(&self) -> bool {
        self.observable
    }

    /// Creates a region initialised from 64-bit float values.
    #[must_use]
    pub fn from_f64s(name: impl Into<String>, values: &[f64]) -> Self {
        let mut init = Vec::with_capacity(values.len() * 8);
        for v in values {
            init.extend_from_slice(&v.to_le_bytes());
        }
        let size = init.len() as u64;
        Region {
            name: name.into(),
            size,
            init,
            observable: true,
        }
    }

    /// Creates a region initialised from 64-bit integer values.
    #[must_use]
    pub fn from_i64s(name: impl Into<String>, values: &[i64]) -> Self {
        let mut init = Vec::with_capacity(values.len() * 8);
        for v in values {
            init.extend_from_slice(&v.to_le_bytes());
        }
        let size = init.len() as u64;
        Region {
            name: name.into(),
            size,
            init,
            observable: true,
        }
    }

    /// The region's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The region's size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The initial contents (shorter than `size`: the tail is zero).
    #[must_use]
    pub fn init(&self) -> &[u8] {
        &self.init
    }
}

/// A whole program: one (fully inlined) main function and its memory
/// regions.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    regions: Vec<Region>,
    main: Function,
}

impl Program {
    /// Creates an empty program with a trivial main function.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            regions: Vec::new(),
            main: Function::new("main"),
        }
    }

    /// The program's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a zero-initialised region of `size` bytes.
    pub fn add_region(&mut self, name: impl Into<String>, size: u64) -> RegionId {
        self.push_region(Region::zeroed(name, size))
    }

    /// Adds a fully specified region.
    pub fn push_region(&mut self, region: Region) -> RegionId {
        let id = RegionId::new(self.regions.len());
        self.regions.push(region);
        id
    }

    /// The regions, in declaration order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// A region by id.
    #[must_use]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// Replaces the main function.
    pub fn set_main(&mut self, main: Function) {
        self.main = main;
    }

    /// The main function.
    #[must_use]
    pub fn main(&self) -> &Function {
        &self.main
    }

    /// The main function, mutably.
    pub fn main_mut(&mut self) -> &mut Function {
        &mut self.main
    }

    /// Base address of each region after sequential, line-aligned layout.
    /// Address 0 is reserved (null); the first region starts at
    /// [`LINE_ALIGN`].
    #[must_use]
    pub fn region_bases(&self) -> Vec<u64> {
        let mut bases = Vec::with_capacity(self.regions.len());
        let mut addr = LINE_ALIGN;
        for r in &self.regions {
            bases.push(addr);
            addr += r.size;
            addr = addr.div_ceil(LINE_ALIGN) * LINE_ALIGN;
        }
        bases
    }

    /// Total bytes of the laid-out address space.
    #[must_use]
    pub fn memory_size(&self) -> u64 {
        match (self.region_bases().last(), self.regions.last()) {
            (Some(base), Some(r)) => (base + r.size).div_ceil(LINE_ALIGN) * LINE_ALIGN,
            _ => LINE_ALIGN,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_aligned_and_disjoint() {
        let mut p = Program::new("t");
        let _a = p.add_region("a", 40); // straddles 2 lines
        let _b = p.add_region("b", 8);
        let bases = p.region_bases();
        assert_eq!(bases[0] % LINE_ALIGN, 0);
        assert_eq!(bases[1] % LINE_ALIGN, 0);
        assert!(bases[1] >= bases[0] + 40);
        assert!(p.memory_size() >= bases[1] + 8);
        assert!(bases[0] >= LINE_ALIGN, "address 0 is reserved");
    }

    #[test]
    fn f64_init_round_trips() {
        let r = Region::from_f64s("x", &[1.5, -2.0]);
        assert_eq!(r.size(), 16);
        let got = f64::from_le_bytes(r.init()[0..8].try_into().unwrap());
        assert_eq!(got, 1.5);
    }
}
