//! Functions: a block arena, an entry block, a virtual-register allocator,
//! and counted-loop metadata consumed by the loop optimizations.

use crate::block::{Block, BlockId, Terminator};
use crate::reg::{Reg, RegClass};

/// The upper bound of a counted loop: a loop-invariant register or a
/// compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Bound held in a loop-invariant integer register.
    Reg(Reg),
    /// Compile-time constant bound.
    Imm(i64),
}

/// Metadata describing a loop in the canonical *counted* shape the frontend
/// lowers `for` loops into:
///
/// ```text
/// preheader: ...; counter = init
/// header:    t = cmplt counter, bound        ; (exactly this test)
///            br t == 0 -> exit, fall -> first body block
/// body...:   loop body (may contain internal branches / nested loops)
/// latch:     counter = add counter, #step
///            jmp header
/// exit:
/// ```
///
/// The loop optimizations (unrolling, peeling, locality-driven transforms)
/// consume and re-validate this metadata rather than re-discovering
/// induction variables; [`crate::loops`] provides the generic natural-loop
/// view used for validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedLoop {
    /// Block evaluating the exit test.
    pub header: BlockId,
    /// Blocks strictly inside the loop, excluding `header` and `latch`,
    /// in layout order. Nested loops' blocks are included.
    pub body: Vec<BlockId>,
    /// The unique back-edge block; contains only the counter increment.
    pub latch: BlockId,
    /// The loop's single exit block (target of the header's exit branch).
    pub exit: BlockId,
    /// Block ending with a jump to `header`; loop-invariant setup lives
    /// here and the counter is initialised here.
    pub preheader: BlockId,
    /// The loop counter register (integer).
    pub counter: Reg,
    /// The (positive) constant step added in the latch.
    pub step: i64,
    /// Upper bound tested as `counter < bound`.
    pub bound: Bound,
    /// Index of the enclosing `CountedLoop` in [`Function::loops`], if any.
    pub parent: Option<usize>,
}

impl CountedLoop {
    /// All blocks of the loop (header, body, latch).
    #[must_use]
    pub fn all_blocks(&self) -> Vec<BlockId> {
        let mut v = Vec::with_capacity(self.body.len() + 2);
        v.push(self.header);
        v.extend_from_slice(&self.body);
        v.push(self.latch);
        v
    }
}

/// A function: the unit of compilation, scheduling and simulation.
///
/// The frontend inlines every procedure call, so a compiled
/// [`crate::Program`] contains exactly one function (see DESIGN.md for the
/// rationale); the type still supports arbitrary CFGs.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    blocks: Vec<Block>,
    entry: BlockId,
    next_vreg: [u32; 2],
    /// Counted-loop metadata, outermost-first within each nest.
    pub loops: Vec<CountedLoop>,
}

impl Function {
    /// Creates a function with a single empty entry block ending in `Ret`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            blocks: vec![Block::new(Terminator::Ret)],
            entry: BlockId::new(0),
            next_vreg: [0, 0],
            loops: Vec::new(),
        }
    }

    /// The function's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Sets the entry block.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn set_entry(&mut self, entry: BlockId) {
        assert!(entry.index() < self.blocks.len());
        self.entry = entry;
    }

    /// Appends a new block and returns its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// The blocks in layout (code-address) order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// A block by id.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// A block by id, mutably.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(id, block)` pairs in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// Allocates a fresh virtual register of `class`.
    pub fn new_reg(&mut self, class: RegClass) -> Reg {
        let slot = match class {
            RegClass::Int => 0,
            RegClass::Float => 1,
        };
        let n = self.next_vreg[slot];
        self.next_vreg[slot] += 1;
        Reg::virt(class, n)
    }

    /// Number of virtual registers allocated so far in `class`.
    #[must_use]
    pub fn vreg_count(&self, class: RegClass) -> u32 {
        self.next_vreg[match class {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }]
    }

    /// Total instruction count across all blocks (terminators excluded).
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// The innermost counted loops: loops no other counted loop names as
    /// parent.
    #[must_use]
    pub fn innermost_loops(&self) -> Vec<usize> {
        let mut has_child = vec![false; self.loops.len()];
        for l in &self.loops {
            if let Some(p) = l.parent {
                has_child[p] = true;
            }
        }
        (0..self.loops.len()).filter(|&i| !has_child[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registers_are_unique() {
        let mut f = Function::new("t");
        let a = f.new_reg(RegClass::Int);
        let b = f.new_reg(RegClass::Int);
        let c = f.new_reg(RegClass::Float);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(f.vreg_count(RegClass::Int), 2);
        assert_eq!(f.vreg_count(RegClass::Float), 1);
    }

    #[test]
    fn block_arena() {
        let mut f = Function::new("t");
        assert_eq!(f.blocks().len(), 1);
        let b = f.add_block(Block::new(Terminator::Jmp(f.entry())));
        assert_eq!(b.index(), 1);
        assert_eq!(f.block(b).term, Terminator::Jmp(BlockId::new(0)));
    }

    #[test]
    fn innermost_loop_detection() {
        let mut f = Function::new("t");
        let dummy = |parent| CountedLoop {
            header: BlockId::new(0),
            body: vec![],
            latch: BlockId::new(0),
            exit: BlockId::new(0),
            preheader: BlockId::new(0),
            counter: Reg::virt(RegClass::Int, 0),
            step: 1,
            bound: Bound::Imm(4),
            parent,
        };
        f.loops.push(dummy(None)); // outer
        f.loops.push(dummy(Some(0))); // inner
        assert_eq!(f.innermost_loops(), vec![1]);
    }
}
