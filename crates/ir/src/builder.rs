//! Convenience builder for constructing functions in tests, examples and
//! the frontend lowering.

use crate::block::{Block, BlockId, BrCond, Terminator};
use crate::func::Function;
use crate::inst::{Inst, LocalityHint};
use crate::opcode::Op;
use crate::program::RegionId;
use crate::reg::{Reg, RegClass};

/// Builder for a [`Function`]: tracks a current block and allocates
/// registers on demand.
///
/// # Example
///
/// ```
/// use bsched_ir::{FuncBuilder, Op};
///
/// let mut b = FuncBuilder::new("f");
/// let x = b.iconst(2);
/// let y = b.iconst(3);
/// let z = b.binop(Op::Add, x, y);
/// let _ = z;
/// b.ret();
/// let func = b.finish();
/// assert_eq!(func.inst_count(), 3);
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    func: Function,
    cur: BlockId,
}

impl FuncBuilder {
    /// Starts a function with an empty entry block.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let func = Function::new(name);
        let cur = func.entry();
        FuncBuilder { func, cur }
    }

    /// The block currently being appended to.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Direct access to the function under construction.
    #[must_use]
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction (used by the
    /// frontend to register loop metadata).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self, class: RegClass) -> Reg {
        self.func.new_reg(class)
    }

    /// Adds a new (empty, `Ret`-terminated) block without switching to it.
    pub fn add_block(&mut self) -> BlockId {
        self.func.add_block(Block::new(Terminator::Ret))
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(block.index() < self.func.blocks().len());
        self.cur = block;
    }

    /// Appends an instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        self.func.block_mut(self.cur).insts.push(inst);
    }

    /// Emits `dst = imm` and returns `dst`.
    pub fn iconst(&mut self, imm: i64) -> Reg {
        let dst = self.new_reg(RegClass::Int);
        self.push(Inst::li(dst, imm));
        dst
    }

    /// Emits `dst = fimm` and returns `dst`.
    pub fn fconst(&mut self, fimm: f64) -> Reg {
        let dst = self.new_reg(RegClass::Float);
        self.push(Inst::fli(dst, fimm));
        dst
    }

    /// Emits a region base-address load.
    pub fn load_region_addr(&mut self, region: RegionId) -> Reg {
        let dst = self.new_reg(RegClass::Int);
        self.push(Inst::ldaddr(dst, region));
        dst
    }

    /// Emits a binary (or comparison) operation, allocating the
    /// destination in the class the opcode dictates.
    pub fn binop(&mut self, op: Op, a: Reg, b: Reg) -> Reg {
        let class = op.fixed_dst_class().unwrap_or(a.class());
        let dst = self.new_reg(class);
        self.push(Inst::op(op, dst, &[a, b]));
        dst
    }

    /// Emits a unary operation.
    pub fn unop(&mut self, op: Op, a: Reg) -> Reg {
        let class = op.fixed_dst_class().unwrap_or(a.class());
        let dst = self.new_reg(class);
        self.push(Inst::op(op, dst, &[a]));
        dst
    }

    /// Emits a binary operation with an immediate second operand.
    pub fn binop_imm(&mut self, op: Op, a: Reg, imm: i64) -> Reg {
        let dst = self.new_reg(RegClass::Int);
        self.push(Inst::op_imm(op, dst, a, imm));
        dst
    }

    /// Emits a select `cond != 0 ? a : b`.
    pub fn select(&mut self, cond: Reg, a: Reg, b: Reg) -> Reg {
        let dst = self.new_reg(a.class());
        self.push(Inst::select(dst, cond, a, b));
        dst
    }

    /// Starts building a floating-point load.
    pub fn load_f(&mut self, base: Reg, disp: i64) -> LoadBuilder {
        let dst = self.new_reg(RegClass::Float);
        LoadBuilder {
            inst: Inst::load(dst, base, disp),
            dst,
        }
    }

    /// Starts building an integer load.
    pub fn load_i(&mut self, base: Reg, disp: i64) -> LoadBuilder {
        let dst = self.new_reg(RegClass::Int);
        LoadBuilder {
            inst: Inst::load(dst, base, disp),
            dst,
        }
    }

    /// Starts building a store.
    pub fn store(&self, val: Reg, base: Reg, disp: i64) -> StoreBuilder {
        StoreBuilder {
            inst: Inst::store(val, base, disp),
        }
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Jmp(target);
    }

    /// Terminates the current block with a conditional branch.
    pub fn br(&mut self, cond: Reg, when: BrCond, taken: BlockId, fall: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Br {
            cond,
            when,
            taken,
            fall,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self) {
        self.func.block_mut(self.cur).term = Terminator::Ret;
    }

    /// Finishes construction.
    #[must_use]
    pub fn finish(self) -> Function {
        self.func
    }
}

/// In-flight load created by [`FuncBuilder::load_f`]/[`FuncBuilder::load_i`].
#[derive(Debug)]
#[must_use = "call .emit(&mut builder) to append the load"]
pub struct LoadBuilder {
    inst: Inst,
    dst: Reg,
}

impl LoadBuilder {
    /// Attributes the load to a region.
    pub fn with_region(mut self, region: RegionId) -> Self {
        self.inst = self.inst.with_region(region);
        self
    }

    /// Sets a locality hint.
    pub fn hint(mut self, hint: LocalityHint) -> Self {
        self.inst.hint = hint;
        self
    }

    /// Appends the load and returns its destination register.
    pub fn emit(self, b: &mut FuncBuilder) -> Reg {
        b.push(self.inst);
        self.dst
    }
}

/// In-flight store created by [`FuncBuilder::store`].
#[derive(Debug)]
#[must_use = "call .emit(&mut builder) to append the store"]
pub struct StoreBuilder {
    inst: Inst,
}

impl StoreBuilder {
    /// Attributes the store to a region.
    pub fn with_region(mut self, region: RegionId) -> Self {
        self.inst = self.inst.with_region(region);
        self
    }

    /// Appends the store.
    pub fn emit(self, b: &mut FuncBuilder) {
        b.push(self.inst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_diamond() {
        let mut b = FuncBuilder::new("d");
        let t = b.add_block();
        let e = b.add_block();
        let j = b.add_block();
        let c = b.iconst(1);
        b.br(c, BrCond::NonZero, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        b.ret();
        let f = b.finish();
        assert_eq!(f.blocks().len(), 4);
        assert_eq!(f.block(t).term, Terminator::Jmp(j));
    }

    #[test]
    fn load_store_builders() {
        let mut p = crate::Program::new("t");
        let r = p.add_region("a", 64);
        let mut b = FuncBuilder::new("m");
        let base = b.load_region_addr(r);
        let x = b
            .load_f(base, 0)
            .with_region(r)
            .hint(LocalityHint::Miss)
            .emit(&mut b);
        b.store(x, base, 8).with_region(r).emit(&mut b);
        b.ret();
        let f = b.finish();
        let insts = &f.block(f.entry()).insts;
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[1].hint, LocalityHint::Miss);
        assert_eq!(insts[2].mem.unwrap().region, Some(r));
    }
}
