//! Functional (untimed) reference interpreter.
//!
//! Two roles in the reproduction:
//!
//! * **Correctness oracle**: every optimization and scheduling pass must
//!   leave the program's observable behaviour — the final memory image —
//!   unchanged. The pipeline runs each configuration through this
//!   interpreter and compares [`Outcome::checksum`] with the baseline.
//! * **Profiler**: basic-block and edge execution counts feed trace
//!   selection, mirroring the paper's use of profiling to guide the
//!   Multiflow trace picker (§4.2).

use crate::block::{BlockId, Terminator};
use crate::func::Function;
use crate::opcode::Op;
use crate::program::Program;
use crate::reg::{Reg, RegClass};
use crate::value::{self, Value};
use std::collections::HashMap;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The instruction budget was exhausted (runaway loop or miscompile).
    OutOfFuel {
        /// The budget that was exceeded.
        fuel: u64,
    },
    /// A store targeted an address outside the program's memory image.
    WildStore {
        /// The faulting address.
        addr: u64,
    },
    /// A sampled-simulation estimator produced a non-finite value for a
    /// metric. Surfaced as an error (rather than silently rounded) so
    /// the fuzzer can report estimator bugs.
    NonFiniteEstimate {
        /// Which metric went non-finite.
        metric: &'static str,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel { fuel } => write!(f, "instruction budget of {fuel} exhausted"),
            ExecError::WildStore { addr } => write!(f, "store outside memory image at {addr:#x}"),
            ExecError::NonFiniteEstimate { metric } => {
                write!(f, "sampled estimator produced a non-finite {metric}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Block and edge execution counts gathered during a run.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Executions of each block, indexed by block id.
    pub block_counts: Vec<u64>,
    /// Executions of each control-flow edge.
    pub edge_counts: HashMap<(BlockId, BlockId), u64>,
}

impl Profile {
    /// Execution count of `b` (0 if never reached).
    #[must_use]
    pub fn block(&self, b: BlockId) -> u64 {
        self.block_counts.get(b.index()).copied().unwrap_or(0)
    }

    /// Execution count of the edge `from -> to`.
    #[must_use]
    pub fn edge(&self, from: BlockId, to: BlockId) -> u64 {
        self.edge_counts.get(&(from, to)).copied().unwrap_or(0)
    }
}

/// The result of a successful run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// FNV-1a hash of the final memory image — the observable behaviour.
    pub checksum: u64,
    /// Number of instructions executed (terminators excluded).
    pub inst_count: u64,
    /// Number of branches executed.
    pub branch_count: u64,
    /// Execution profile.
    pub profile: Profile,
}

/// Register file sized for one function: physical slots first, then
/// virtual. Shared with the timing simulator in `bsched-sim`.
/// `Clone` so the sampled simulator can checkpoint architectural state
/// at interval boundaries.
#[derive(Debug, Clone)]
pub struct RegFile {
    ints: Vec<i64>,
    floats: Vec<f64>,
}

impl RegFile {
    /// Creates a zeroed register file sized for `func`.
    #[must_use]
    pub fn new(func: &Function) -> Self {
        let ni = Reg::NUM_PHYS as usize + func.vreg_count(RegClass::Int) as usize;
        let nf = Reg::NUM_PHYS as usize + func.vreg_count(RegClass::Float) as usize;
        RegFile {
            ints: vec![0; ni],
            floats: vec![0.0; nf],
        }
    }

    /// Dense slot index of a register (physical first, then virtual).
    #[must_use]
    pub fn slot(r: Reg) -> usize {
        match r.virt_index() {
            Some(v) => Reg::NUM_PHYS as usize + v as usize,
            None => r.index() as usize,
        }
    }

    /// Reads a register.
    #[must_use]
    pub fn get(&self, r: Reg) -> Value {
        match r.class() {
            RegClass::Int => Value::Int(self.ints[Self::slot(r)]),
            RegClass::Float => Value::Float(self.floats[Self::slot(r)]),
        }
    }

    /// Writes a register.
    pub fn set(&mut self, r: Reg, v: Value) {
        match r.class() {
            RegClass::Int => self.ints[Self::slot(r)] = v.as_int(),
            RegClass::Float => self.floats[Self::slot(r)] = v.as_float(),
        }
    }
}

/// Linear memory image with the program's regions laid out and
/// initialised. Shared with the timing simulator in `bsched-sim`.
#[derive(Debug, Clone)]
pub struct MemImage {
    /// The raw bytes of the laid-out address space.
    pub bytes: Vec<u8>,
    /// Base address of each region, by region index.
    pub region_bases: Vec<u64>,
    /// `(base, size)` of each *observable* region; only these bytes enter
    /// the checksum (scratch regions like the spill area are excluded).
    observable: Vec<(u64, u64)>,
}

impl MemImage {
    /// Lays out and initialises the program's regions.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let region_bases = program.region_bases();
        let mut bytes = vec![0u8; program.memory_size() as usize];
        let mut observable = Vec::new();
        for (region, &base) in program.regions().iter().zip(&region_bases) {
            let init = region.init();
            bytes[base as usize..base as usize + init.len()].copy_from_slice(init);
            if region.is_observable() {
                observable.push((base, region.size()));
            }
        }
        MemImage {
            bytes,
            region_bases,
            observable,
        }
    }

    /// Loads 8 bytes; addresses outside the image read as zero (this keeps
    /// speculative loads hoisted above their guards by trace scheduling
    /// well-defined — see DESIGN.md).
    #[must_use]
    pub fn load(&self, addr: u64) -> u64 {
        let a = addr as usize;
        match self.bytes.get(a..a + 8) {
            Some(s) => u64::from_le_bytes(s.try_into().unwrap()),
            None => 0,
        }
    }

    /// Stores 8 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::WildStore`] outside the image.
    pub fn store(&mut self, addr: u64, bits: u64) -> Result<(), ExecError> {
        let a = addr as usize;
        match self.bytes.get_mut(a..a + 8) {
            Some(s) => {
                s.copy_from_slice(&bits.to_le_bytes());
                Ok(())
            }
            None => Err(ExecError::WildStore { addr }),
        }
    }

    /// FNV-1a hash of the observable regions of the memory image.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &(base, size) in &self.observable {
            for &b in &self.bytes[base as usize..(base + size) as usize] {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// The interpreter. Construct once per program, then [`Interp::run`].
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    fuel: u64,
}

impl<'p> Interp<'p> {
    /// Default instruction budget (generous for the scaled-down kernels).
    pub const DEFAULT_FUEL: u64 = 500_000_000;

    /// Creates an interpreter for `program` with the default budget.
    #[must_use]
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            fuel: Self::DEFAULT_FUEL,
        }
    }

    /// Overrides the instruction budget.
    #[must_use]
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs the program's main function to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::OutOfFuel`] if the budget is exhausted and
    /// [`ExecError::WildStore`] on a store outside the memory image.
    pub fn run(&self) -> Result<Outcome, ExecError> {
        let func = self.program.main();
        let mut regs = RegFile::new(func);
        let mut mem = MemImage::new(self.program);
        let mut profile = Profile {
            block_counts: vec![0; func.blocks().len()],
            edge_counts: HashMap::new(),
        };
        let mut inst_count: u64 = 0;
        let mut branch_count: u64 = 0;
        let mut cur = func.entry();
        let bases = mem.region_bases.clone();

        loop {
            profile.block_counts[cur.index()] += 1;
            let block = func.block(cur);
            for inst in &block.insts {
                inst_count += 1;
                if inst_count > self.fuel {
                    return Err(ExecError::OutOfFuel { fuel: self.fuel });
                }
                step(inst, &mut regs, &mut mem, &bases)?;
            }
            let next = match &block.term {
                Terminator::Jmp(t) => *t,
                Terminator::Br {
                    cond,
                    when,
                    taken,
                    fall,
                } => {
                    branch_count += 1;
                    if when.holds(regs.get(*cond).as_int()) {
                        *taken
                    } else {
                        *fall
                    }
                }
                Terminator::Ret => {
                    return Ok(Outcome {
                        checksum: mem.checksum(),
                        inst_count,
                        branch_count,
                        profile,
                    });
                }
            };
            *profile.edge_counts.entry((cur, next)).or_insert(0) += 1;
            cur = next;
        }
    }
}

/// Executes one instruction against the register file and memory.
///
/// # Errors
///
/// Returns [`ExecError::WildStore`] when a store leaves the memory image.
///
/// # Panics
///
/// Panics on malformed instructions (run the verifier first).
pub fn step(
    inst: &crate::inst::Inst,
    regs: &mut RegFile,
    mem: &mut MemImage,
    region_bases: &[u64],
) -> Result<(), ExecError> {
    match inst.op {
        Op::Ld => {
            let base = regs.get(inst.mem_base()).as_int();
            let addr = base.wrapping_add(inst.mem_disp()) as u64;
            let dst = inst.dst.unwrap();
            regs.set(dst, Value::from_bits(dst.class(), mem.load(addr)));
        }
        Op::St => {
            let base = regs.get(inst.mem_base()).as_int();
            let addr = base.wrapping_add(inst.mem_disp()) as u64;
            let bits = regs.get(inst.srcs()[0]).to_bits();
            mem.store(addr, bits)?;
        }
        Op::LdAddr => {
            let region = inst
                .mem
                .and_then(|m| m.region)
                .expect("ldaddr without region");
            let base = region_bases[region.index() as usize];
            regs.set(inst.dst.unwrap(), Value::Int(base as i64));
        }
        _ => {
            let mut vals = [Value::Int(0); 3];
            for (slot, &s) in vals.iter_mut().zip(inst.srcs()) {
                *slot = regs.get(s);
            }
            let v = value::eval(inst.op, &vals[..inst.srcs().len()], inst.imm, inst.fimm);
            regs.set(inst.dst.unwrap(), v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BrCond};
    use crate::inst::Inst;

    /// sum the integers 0..10 into region "out".
    fn sum_program() -> Program {
        let mut p = Program::new("sum");
        let out = p.add_region("out", 8);
        let mut f = Function::new("main");
        let i = f.new_reg(RegClass::Int);
        let n = f.new_reg(RegClass::Int);
        let s = f.new_reg(RegClass::Int);
        let c = f.new_reg(RegClass::Int);
        let base = f.new_reg(RegClass::Int);

        let header = f.add_block(Block::new(Terminator::Ret));
        let body = f.add_block(Block::new(Terminator::Jmp(header)));
        let exit = f.add_block(Block::new(Terminator::Ret));

        let e = f.entry();
        f.block_mut(e).insts.extend([
            Inst::li(i, 0),
            Inst::li(n, 10),
            Inst::li(s, 0),
            Inst::ldaddr(base, out),
        ]);
        f.block_mut(e).term = Terminator::Jmp(header);
        f.block_mut(header)
            .insts
            .push(Inst::op(Op::CmpLt, c, &[i, n]));
        f.block_mut(header).term = Terminator::Br {
            cond: c,
            when: BrCond::Zero,
            taken: exit,
            fall: body,
        };
        f.block_mut(body).insts.extend([
            Inst::op(Op::Add, s, &[s, i]),
            Inst::op_imm(Op::Add, i, i, 1),
        ]);
        f.block_mut(exit)
            .insts
            .push(Inst::store(s, base, 0).with_region(out));
        p.set_main(f);
        p
    }

    #[test]
    fn sums_correctly_and_profiles() {
        let p = sum_program();
        let out = Interp::new(&p).run().unwrap();
        // 0+1+..+9 = 45; read it back out of a fresh image? Use checksum
        // equality with a hand-built expected image.
        let mut expected = MemImage::new(&p);
        expected.store(p.region_bases()[0], 45).unwrap();
        assert_eq!(out.checksum, expected.checksum());
        // header runs 11 times, body 10.
        assert_eq!(out.profile.block(BlockId::new(1)), 11);
        assert_eq!(out.profile.block(BlockId::new(2)), 10);
        assert_eq!(out.profile.edge(BlockId::new(1), BlockId::new(2)), 10);
        assert_eq!(out.branch_count, 11);
        assert!(out.inst_count > 20);
    }

    #[test]
    fn fuel_limit_detects_runaway() {
        let mut p = Program::new("spin");
        let mut f = Function::new("main");
        let e = f.entry();
        let r0 = f.new_reg(RegClass::Int);
        f.block_mut(e).insts.push(Inst::li(r0, 0));
        f.block_mut(e).term = Terminator::Jmp(e);
        p.set_main(f);
        let err = Interp::new(&p).with_fuel(100).run().unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel { fuel: 100 });
    }

    #[test]
    fn wild_load_reads_zero_wild_store_errors() {
        let mut p = Program::new("wild");
        let out = p.add_region("out", 8);
        let mut f = Function::new("main");
        let a = f.new_reg(RegClass::Int);
        let v = f.new_reg(RegClass::Int);
        let base = f.new_reg(RegClass::Int);
        let e = f.entry();
        f.block_mut(e).insts.extend([
            Inst::li(a, 1 << 40),
            Inst::load(v, a, 0), // wild load: reads 0
            Inst::ldaddr(base, out),
            Inst::store(v, base, 0).with_region(out),
        ]);
        p.set_main(f);
        let outcm = Interp::new(&p).run().unwrap();
        let expected = MemImage::new(&p);
        assert_eq!(outcm.checksum, expected.checksum(), "wild load read zero");

        // Now a wild store.
        let mut p2 = Program::new("wild2");
        let _ = p2.add_region("out", 8);
        let mut f2 = Function::new("main");
        let a2 = f2.new_reg(RegClass::Int);
        let e2 = f2.entry();
        f2.block_mut(e2)
            .insts
            .extend([Inst::li(a2, 1 << 40), Inst::store(a2, a2, 0)]);
        p2.set_main(f2);
        assert!(matches!(
            Interp::new(&p2).run(),
            Err(ExecError::WildStore { .. })
        ));
    }

    #[test]
    fn float_round_trip_through_memory() {
        let mut p = Program::new("f");
        let r = p.push_region(crate::program::Region::from_f64s("a", &[2.5, 4.0]));
        let mut f = Function::new("main");
        let base = f.new_reg(RegClass::Int);
        let x = f.new_reg(RegClass::Float);
        let y = f.new_reg(RegClass::Float);
        let z = f.new_reg(RegClass::Float);
        let e = f.entry();
        f.block_mut(e).insts.extend([
            Inst::ldaddr(base, r),
            Inst::load(x, base, 0).with_region(r),
            Inst::load(y, base, 8).with_region(r),
            Inst::op(Op::FMul, z, &[x, y]),
            Inst::store(z, base, 0).with_region(r),
        ]);
        p.set_main(f);
        let out = Interp::new(&p).run().unwrap();
        let mut expected = MemImage::new(&p);
        expected
            .store(p.region_bases()[0], (10.0f64).to_bits())
            .unwrap();
        assert_eq!(out.checksum, expected.checksum());
    }
}
