//! Pretty-printing for functions and programs.

use crate::block::Terminator;
use crate::func::Function;
use crate::program::Program;
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {} (entry {}):", self.name(), self.entry())?;
        for (id, block) in self.iter_blocks() {
            writeln!(f, "{id}:")?;
            for inst in &block.insts {
                writeln!(f, "    {inst}")?;
            }
            match &block.term {
                Terminator::Jmp(t) => writeln!(f, "    jmp {t}")?,
                Terminator::Br {
                    cond,
                    when,
                    taken,
                    fall,
                } => {
                    let sense = match when {
                        crate::block::BrCond::NonZero => "nz",
                        crate::block::BrCond::Zero => "z",
                    };
                    writeln!(f, "    br.{sense} {cond} -> {taken}, else {fall}")?;
                }
                Terminator::Ret => writeln!(f, "    ret")?,
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}:", self.name())?;
        for (i, r) in self.regions().iter().enumerate() {
            writeln!(f, "  region{} {} [{} bytes]", i, r.name(), r.size())?;
        }
        write!(f, "{}", self.main())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FuncBuilder;
    use crate::opcode::Op;
    use crate::program::Program;

    #[test]
    fn printer_produces_readable_text() {
        let mut p = Program::new("demo");
        let r = p.add_region("a", 32);
        let mut b = FuncBuilder::new("main");
        let base = b.load_region_addr(r);
        let x = b.load_f(base, 0).with_region(r).emit(&mut b);
        let y = b.binop(Op::FMul, x, x);
        b.store(y, base, 8).with_region(r).emit(&mut b);
        b.ret();
        p.set_main(b.finish());
        let text = p.to_string();
        assert!(text.contains("program demo"));
        assert!(text.contains("region0 a [32 bytes]"));
        assert!(text.contains("fmul"));
        assert!(text.contains("ret"));
    }
}
