//! The shared DAG-analysis kernel behind balanced-scheduling weights.
//!
//! The Kerns–Eggers weight computation asks, for every *contributor*
//! instruction, which loads it is independent of and how those loads
//! group into comparability components. Answering those questions by
//! walking the DAG per contributor is O(n·L) reachability probes plus an
//! O(k²) union-find per contributor — the dominant cost of balanced
//! scheduling on unrolled regions.
//!
//! [`DagAnalysis`] computes everything once per DAG, in load-slot space:
//!
//! * a **load index** mapping instruction indices to dense load slots;
//! * an **independence matrix** — for every instruction, a u64-blocked
//!   bitset over load slots of the loads independent of it, sliced from
//!   the DAG's transitive-reachability closures;
//! * a **comparability adjacency** — for every load, the bitset of loads
//!   serialised with it (the complement of its independence row);
//! * a memoizing **component-credit table**: the coverage credits for a
//!   given covered-load bitset are computed once (bitset BFS over the
//!   comparability adjacency) and replayed for every contributor sharing
//!   that covered set — on unrolled loop bodies most contributors do.
//!
//! One analysis is shared across contributors, weight policies, and —
//! through the process-wide structural cache (see [`cache_stats`]) —
//! across experiment cells that compile identical regions (e.g. the
//! TS/BS cell pairs of the experiment grid, whose code only diverges at
//! scheduling). `bsched-harness` surfaces the cache's hit rate in its run
//! report, next to the result-cache statistics.

use crate::dag::Dag;
use crate::inst::Inst;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Memo table from covered-load bitset to its component-credit vector.
type CreditMemo = HashMap<Box<[u64]>, Arc<Vec<f64>>>;

/// Words needed for a bitset over `n` bits.
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Sentinel slot for "not a load".
const NO_SLOT: u32 = u32::MAX;

/// Per-DAG analysis shared by the weight policies and the scheduler.
///
/// Built lazily (and at most once) per [`Dag`] via [`Dag::analysis`];
/// structurally identical DAGs share one instance through a process-wide
/// cache.
#[derive(Debug)]
pub struct DagAnalysis {
    /// Instruction index of each load slot, ascending program order.
    loads: Vec<u32>,
    /// Instruction index → load slot (or [`NO_SLOT`]).
    slot_of: Vec<u32>,
    /// Words per load-slot row.
    words: usize,
    /// `n × words`: row `i` holds the loads independent of instruction
    /// `i` (neither reaches the other in the DAG).
    indep: Vec<u64>,
    /// `L × words`: row `s` holds the loads *comparable* to (serialised
    /// with) the load in slot `s`.
    comp: Vec<u64>,
    /// Memoized component credits per covered-load bitset.
    credits: Mutex<CreditMemo>,
}

impl DagAnalysis {
    /// Computes the analysis for `dag` over `insts`.
    ///
    /// # Panics
    ///
    /// Panics if `dag.len() != insts.len()`.
    #[must_use]
    pub fn compute(dag: &Dag, insts: &[Inst]) -> Self {
        let n = insts.len();
        assert_eq!(dag.len(), n, "DAG does not match region");
        let loads: Vec<u32> = (0..n)
            .filter(|&i| insts[i].op.is_load())
            .map(|i| i as u32)
            .collect();
        let mut slot_of = vec![NO_SLOT; n];
        for (s, &l) in loads.iter().enumerate() {
            slot_of[l as usize] = s as u32;
        }
        let nl = loads.len();
        let words = words_for(nl).max(1);

        // Independence rows, sliced from the reachability closures: load
        // `l` is independent of instruction `i` when neither reaches the
        // other. One pass over (instruction × load slot).
        let mut indep = vec![0u64; n * words];
        for i in 0..n {
            let row = &mut indep[i * words..(i + 1) * words];
            for (s, &l) in loads.iter().enumerate() {
                let l = l as usize;
                if i != l && !dag.reaches(i, l) && !dag.reaches(l, i) {
                    row[s / 64] |= 1 << (s % 64);
                }
            }
        }

        // Comparability adjacency: the complement of a load's own
        // independence row, restricted to the other load slots.
        let mut comp = vec![0u64; nl * words];
        for (s, &l) in loads.iter().enumerate() {
            let src = &indep[(l as usize) * words..(l as usize + 1) * words];
            let row = &mut comp[s * words..(s + 1) * words];
            for w in 0..words {
                row[w] = !src[w];
            }
            // Mask off the self bit and the padding above `nl`.
            row[s / 64] &= !(1u64 << (s % 64));
            if !nl.is_multiple_of(64) {
                row[words - 1] &= (1u64 << (nl % 64)) - 1;
            }
        }

        DagAnalysis {
            loads,
            slot_of,
            words,
            indep,
            comp,
            credits: Mutex::new(HashMap::new()),
        }
    }

    /// Number of loads in the region.
    #[must_use]
    pub fn num_loads(&self) -> usize {
        self.loads.len()
    }

    /// Words per load-slot bitset row.
    #[must_use]
    pub fn row_words(&self) -> usize {
        self.words
    }

    /// Instruction indices of the loads, in program order (slot order).
    #[must_use]
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// The load slot of instruction `i`, if it is a load.
    #[must_use]
    pub fn slot_of(&self, i: usize) -> Option<usize> {
        match self.slot_of[i] {
            NO_SLOT => None,
            s => Some(s as usize),
        }
    }

    /// Bitset row (over load slots) of the loads independent of
    /// instruction `i`.
    #[must_use]
    pub fn independent_loads(&self, i: usize) -> &[u64] {
        &self.indep[i * self.words..(i + 1) * self.words]
    }

    /// Bitset row (over load slots) of the loads comparable to the load
    /// in slot `s`.
    #[must_use]
    pub fn comparable_loads(&self, s: usize) -> &[u64] {
        &self.comp[s * self.words..(s + 1) * self.words]
    }

    /// `true` if instruction `i` and the load in slot `s` are
    /// independent.
    #[must_use]
    pub fn independent_of_slot(&self, i: usize, s: usize) -> bool {
        self.independent_loads(i)[s / 64] >> (s % 64) & 1 == 1
    }

    /// The per-slot coverage credits of a covered-load bitset: every
    /// covered load in a comparability component of size `k` receives
    /// `1/k`. The result is memoized per distinct bitset, aligned with
    /// `covered`'s set bits in ascending slot order.
    ///
    /// # Panics
    ///
    /// Panics if `covered.len() != self.row_words()`.
    #[must_use]
    pub fn component_credits(&self, covered: &[u64]) -> Arc<Vec<f64>> {
        assert_eq!(covered.len(), self.words);
        if let Some(hit) = self
            .credits
            .lock()
            .expect("credit memo poisoned")
            .get(covered)
        {
            return Arc::clone(hit);
        }
        let shares = Arc::new(self.compute_credits(covered));
        self.credits
            .lock()
            .expect("credit memo poisoned")
            .insert(covered.into(), Arc::clone(&shares));
        shares
    }

    /// Uncached credit computation: bitset BFS over the comparability
    /// adjacency restricted to `covered`.
    fn compute_credits(&self, covered: &[u64]) -> Vec<f64> {
        let words = self.words;
        let total: usize = covered.iter().map(|w| w.count_ones() as usize).sum();
        // share[rank] for the rank-th set bit of `covered`.
        let mut shares = vec![0f64; total];
        // Rank lookup: slot -> dense rank within `covered`.
        let mut rank_of = HashMap::with_capacity(total);
        let mut rank = 0usize;
        for (w, &bits) in covered.iter().enumerate() {
            let mut b = bits;
            while b != 0 {
                let s = w * 64 + b.trailing_zeros() as usize;
                rank_of.insert(s, rank);
                rank += 1;
                b &= b - 1;
            }
        }

        let mut remaining: Vec<u64> = covered.to_vec();
        let mut members = vec![0u64; words];
        let mut frontier = vec![0u64; words];
        let mut next = vec![0u64; words];
        while let Some(seed) = first_set(&remaining) {
            for w in 0..words {
                members[w] = 0;
                frontier[w] = 0;
            }
            members[seed / 64] |= 1 << (seed % 64);
            frontier[seed / 64] |= 1 << (seed % 64);
            loop {
                next.iter_mut().for_each(|w| *w = 0);
                for (w, &bits) in frontier.iter().enumerate() {
                    let mut b = bits;
                    while b != 0 {
                        let s = w * 64 + b.trailing_zeros() as usize;
                        let adj = self.comparable_loads(s);
                        for x in 0..words {
                            next[x] |= adj[x];
                        }
                        b &= b - 1;
                    }
                }
                let mut grew = false;
                for w in 0..words {
                    next[w] &= covered[w] & !members[w];
                    if next[w] != 0 {
                        grew = true;
                    }
                    members[w] |= next[w];
                }
                if !grew {
                    break;
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            let size: u32 = members.iter().map(|w| w.count_ones()).sum();
            let share = 1.0 / f64::from(size);
            for (w, &bits) in members.iter().enumerate() {
                let mut b = bits;
                while b != 0 {
                    let s = w * 64 + b.trailing_zeros() as usize;
                    shares[rank_of[&s]] = share;
                    b &= b - 1;
                }
                remaining[w] &= !bits;
            }
        }
        shares
    }
}

/// Index of the lowest set bit across `words`, if any.
fn first_set(words: &[u64]) -> Option<usize> {
    for (w, &bits) in words.iter().enumerate() {
        if bits != 0 {
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
    }
    None
}

// ── Process-wide structural cache ───────────────────────────────────────

/// Structural key of a DAG for the cross-cell analysis cache: node
/// count, the load bitmap, and every edge. Edge kinds are excluded —
/// the analysis only consumes reachability.
fn structural_key(dag: &Dag, insts: &[Inst]) -> Vec<u64> {
    let n = dag.len();
    let mut key = Vec::with_capacity(n + words_for(n) + 2);
    key.push(n as u64);
    let mut word = 0u64;
    for (i, inst) in insts.iter().enumerate() {
        if inst.op.is_load() {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            key.push(word);
            word = 0;
        }
    }
    if !n.is_multiple_of(64) {
        key.push(word);
    }
    for i in 0..n {
        for &(t, _) in dag.succs(i) {
            key.push(((i as u64) << 32) | u64::from(t));
        }
    }
    key
}

/// Entry cap for the process-wide cache; beyond it new analyses are
/// still computed, just not retained (first-come retention — the grid's
/// block shapes recur, so early entries are the hot ones).
const CACHE_CAP: usize = 4096;

struct GlobalCache {
    map: Mutex<HashMap<Vec<u64>, Arc<DagAnalysis>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn global_cache() -> &'static GlobalCache {
    static CACHE: OnceLock<GlobalCache> = OnceLock::new();
    CACHE.get_or_init(|| GlobalCache {
        map: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// Looks up (or computes and caches) the analysis for a DAG by
/// structural identity. Used by [`Dag::analysis`]; exposed for tests.
#[must_use]
pub fn cached_analysis(dag: &Dag, insts: &[Inst]) -> Arc<DagAnalysis> {
    let cache = global_cache();
    let key = structural_key(dag, insts);
    if let Some(hit) = cache.map.lock().expect("analysis cache poisoned").get(&key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let analysis = Arc::new(DagAnalysis::compute(dag, insts));
    let mut map = cache.map.lock().expect("analysis cache poisoned");
    if map.len() < CACHE_CAP {
        map.insert(key, Arc::clone(&analysis));
    }
    analysis
}

/// Snapshot of the process-wide analysis cache: `(hits, misses,
/// entries)`. The harness prints this in its stderr run report.
#[must_use]
pub fn cache_stats() -> (u64, u64, usize) {
    let cache = global_cache();
    let entries = cache.map.lock().expect("analysis cache poisoned").len();
    (
        cache.hits.load(Ordering::Relaxed),
        cache.misses.load(Ordering::Relaxed),
        entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::opcode::Op;
    use crate::program::RegionId;
    use crate::reg::{Reg, RegClass};

    fn r(n: u32) -> Reg {
        Reg::virt(RegClass::Int, n)
    }
    fn f(n: u32) -> Reg {
        Reg::virt(RegClass::Float, n)
    }

    /// Figure 1: L0, L1 independent; L2 -> L3 serial; X1, X2 free.
    fn figure1() -> Vec<Inst> {
        let l2res = r(10);
        let l3base = r(11);
        vec![
            Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)),
            Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)),
            Inst::load(l2res, r(2), 0).with_region(RegionId::new(2)),
            Inst::op_imm(Op::Add, l3base, l2res, 8),
            Inst::load(f(3), l3base, 0).with_region(RegionId::new(3)),
            Inst::op(Op::FAdd, f(4), &[f(6), f(7)]),
            Inst::op(Op::FAdd, f(5), &[f(8), f(9)]),
        ]
    }

    #[test]
    fn load_index_maps_both_ways() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        assert_eq!(a.num_loads(), 4);
        assert_eq!(a.loads(), &[0, 1, 2, 4]);
        assert_eq!(a.slot_of(0), Some(0));
        assert_eq!(a.slot_of(4), Some(3));
        assert_eq!(a.slot_of(3), None);
        assert_eq!(a.slot_of(5), None);
    }

    #[test]
    fn independence_rows_match_dag_queries() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        for i in 0..insts.len() {
            for (s, &l) in a.loads().iter().enumerate() {
                assert_eq!(
                    a.independent_of_slot(i, s),
                    dag.independent(i, l as usize),
                    "mismatch at inst {i}, load slot {s}"
                );
            }
        }
    }

    #[test]
    fn comparability_adjacency_matches_dag_queries() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        for sa in 0..a.num_loads() {
            let row = a.comparable_loads(sa);
            for sb in 0..a.num_loads() {
                let bit = row[sb / 64] >> (sb % 64) & 1 == 1;
                let expect =
                    sa != sb && dag.comparable(a.loads()[sa] as usize, a.loads()[sb] as usize);
                assert_eq!(bit, expect, "mismatch at slots {sa}, {sb}");
            }
        }
    }

    #[test]
    fn component_credits_split_serial_pairs() {
        let insts = figure1();
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        // Cover all four loads: components {L0}, {L1}, {L2, L3}.
        let covered = vec![0b1111u64];
        let credits = a.component_credits(&covered);
        assert_eq!(credits.as_slice(), &[1.0, 1.0, 0.5, 0.5]);
        // Memoized: the same Arc comes back.
        let again = a.component_credits(&covered);
        assert!(Arc::ptr_eq(&credits, &again));
        // A sub-cover excluding L3 leaves L2 alone in its component.
        let partial = vec![0b0111u64];
        assert_eq!(a.component_credits(&partial).as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_and_loadless_regions() {
        let insts: Vec<Inst> = vec![];
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        assert_eq!(a.num_loads(), 0);

        let insts = vec![Inst::li(r(0), 1), Inst::op_imm(Op::Add, r(1), r(0), 1)];
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        assert_eq!(a.num_loads(), 0);
        assert!(a.independent_loads(0).iter().all(|&w| w == 0));
    }

    #[test]
    fn wide_region_crosses_word_boundaries() {
        // 70 independent loads + one FP op: exercises the 2-word rows.
        let mut insts = Vec::new();
        for k in 0..70u32 {
            insts.push(
                Inst::load(f(k), r(k % 4), i64::from(k) * 8).with_region(RegionId::new(0)),
            );
        }
        insts.push(Inst::op(Op::FAdd, f(100), &[f(101), f(102)]));
        let dag = Dag::new(&insts);
        let a = DagAnalysis::compute(&dag, &insts);
        assert_eq!(a.num_loads(), 70);
        assert_eq!(a.row_words(), 2);
        let covered: Vec<u64> = a.independent_loads(70).to_vec();
        assert_eq!(
            covered.iter().map(|w| w.count_ones()).sum::<u32>(),
            70,
            "the FP op covers every load"
        );
        let credits = a.component_credits(&covered);
        assert!(credits.iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn structural_cache_shares_identical_dags() {
        let insts = figure1();
        let d1 = Dag::new(&insts);
        let d2 = Dag::new(&insts);
        let a1 = cached_analysis(&d1, &insts);
        let a2 = cached_analysis(&d2, &insts);
        assert!(Arc::ptr_eq(&a1, &a2), "structurally equal DAGs share");
        // A different region misses.
        let other = vec![Inst::li(r(0), 1)];
        let d3 = Dag::new(&other);
        let a3 = cached_analysis(&d3, &other);
        assert_eq!(a3.num_loads(), 0);
        let (hits, misses, entries) = cache_stats();
        assert!(hits >= 1);
        assert!(misses >= 2);
        assert!(entries >= 2);
    }
}
