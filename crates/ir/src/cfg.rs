//! Control-flow graph view of a function: predecessor/successor lists and
//! reverse post-order.

use crate::block::BlockId;
use crate::func::Function;

/// Predecessors, successors and a reverse post-order for a function's
/// blocks. Snapshot semantics: rebuild after any CFG edit.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Computes the CFG of `func`.
    #[must_use]
    pub fn new(func: &Function) -> Self {
        let n = func.blocks().len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, block) in func.iter_blocks() {
            for s in block.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }

        // Iterative post-order DFS from the entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
        visited[func.entry().index()] = true;
        while let Some((b, i)) = stack.pop() {
            if i < succs[b.index()].len() {
                stack.push((b, i + 1));
                let s = succs[b.index()][i];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Successors of `b`.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    #[must_use]
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    #[must_use]
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order, or `None` if unreachable.
    #[must_use]
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// `true` if `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks in the underlying function.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BrCond, Terminator};
    use crate::func::Function;
    use crate::reg::RegClass;

    /// entry -> {then, else} -> join -> ret, with an unreachable block.
    fn diamond() -> Function {
        let mut f = Function::new("d");
        let join = f.add_block(Block::new(Terminator::Ret));
        let then_b = f.add_block(Block::new(Terminator::Jmp(join)));
        let else_b = f.add_block(Block::new(Terminator::Jmp(join)));
        let _unreach = f.add_block(Block::new(Terminator::Ret));
        let c = f.new_reg(RegClass::Int);
        f.block_mut(f.entry()).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: then_b,
            fall: else_b,
        };
        f
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(f.entry()).len(), 2);
        assert_eq!(cfg.preds(BlockId::new(1)).len(), 2); // join
        assert_eq!(cfg.preds(f.entry()).len(), 0);
    }

    #[test]
    fn rpo_orders_entry_first_join_last() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], f.entry());
        assert_eq!(*rpo.last().unwrap(), BlockId::new(1));
        assert_eq!(rpo.len(), 4); // unreachable block excluded
        assert!(!cfg.is_reachable(BlockId::new(4)));
        assert!(cfg.is_reachable(f.entry()));
    }

    #[test]
    fn rpo_respects_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        // Every edge u->v that is not a back edge must have rpo(u) < rpo(v).
        for b in cfg.rpo() {
            for s in cfg.succs(*b) {
                // no back edges in a diamond
                assert!(cfg.rpo_index(*b).unwrap() < cfg.rpo_index(*s).unwrap());
            }
        }
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn cfg_is_send_sync() {
        assert_send_sync::<Cfg>();
    }
}
