//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::block::BlockId;
use crate::cfg::Cfg;
use crate::func::Function;

/// Immediate-dominator tree over a function's reachable blocks.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b] = immediate dominator`; the entry points at itself;
    /// unreachable blocks hold `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `func` given its `cfg`.
    #[must_use]
    pub fn new(func: &Function, cfg: &Cfg) -> Self {
        let n = func.blocks().len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = func.entry();
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up by RPO index until the fingers meet.
            while a != b {
                while cfg.rpo_index(a).unwrap() > cfg.rpo_index(b).unwrap() {
                    a = idom[a.index()].unwrap();
                }
                while cfg.rpo_index(b).unwrap() > cfg.rpo_index(a).unwrap() {
                    b = idom[b.index()].unwrap();
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom != idom[b.index()] && new_idom.is_some() {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, entry }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            return None;
        }
        self.idom[b.index()]
    }

    /// `true` if `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BrCond, Terminator};
    use crate::func::Function;
    use crate::reg::RegClass;

    /// entry(0) -> then(2) -> join(1); entry -> else(3) -> join; join -> loopback? none.
    fn diamond() -> (Function, Cfg) {
        let mut f = Function::new("d");
        let join = f.add_block(Block::new(Terminator::Ret));
        let then_b = f.add_block(Block::new(Terminator::Jmp(join)));
        let else_b = f.add_block(Block::new(Terminator::Jmp(join)));
        let c = f.new_reg(RegClass::Int);
        f.block_mut(f.entry()).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: then_b,
            fall: else_b,
        };
        let cfg = Cfg::new(&f);
        (f, cfg)
    }

    #[test]
    fn diamond_dominators() {
        let (f, cfg) = diamond();
        let dom = Dominators::new(&f, &cfg);
        let entry = f.entry();
        let join = BlockId::new(1);
        let then_b = BlockId::new(2);
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(then_b), Some(entry));
        assert!(dom.dominates(entry, join));
        assert!(dom.dominates(join, join));
        assert!(!dom.dominates(then_b, join));
    }

    #[test]
    fn loop_dominators() {
        // entry(0) -> header(1); header -> body(2) | exit(3); body -> header.
        let mut f = Function::new("l");
        let header = f.add_block(Block::new(Terminator::Ret));
        let body = f.add_block(Block::new(Terminator::Jmp(header)));
        let exit = f.add_block(Block::new(Terminator::Ret));
        let c = f.new_reg(RegClass::Int);
        f.block_mut(f.entry()).term = Terminator::Jmp(header);
        f.block_mut(header).term = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: body,
            fall: exit,
        };
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        assert_eq!(dom.idom(header), Some(f.entry()));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, exit));
    }
}
