//! Basic blocks and their terminators.

use crate::inst::Inst;
use crate::reg::Reg;
use std::fmt;

/// Identifier of a basic block within its [`crate::Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a block id from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        BlockId(u32::try_from(index).expect("block index overflow"))
    }

    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// The sense of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrCond {
    /// Branch to `taken` when the condition register is non-zero.
    NonZero,
    /// Branch to `taken` when the condition register is zero.
    Zero,
}

impl BrCond {
    /// The opposite sense.
    #[must_use]
    pub fn invert(self) -> Self {
        match self {
            BrCond::NonZero => BrCond::Zero,
            BrCond::Zero => BrCond::NonZero,
        }
    }

    /// Evaluates the condition against a register value.
    #[must_use]
    pub fn holds(self, value: i64) -> bool {
        match self {
            BrCond::NonZero => value != 0,
            BrCond::Zero => value == 0,
        }
    }
}

/// How a basic block transfers control.
///
/// Branches live here rather than in the instruction list; the scheduler
/// keeps them as region boundaries and the simulator charges them the
/// branch latency of the paper's Table 3.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Two-way conditional branch on an integer register.
    Br {
        /// Condition register (integer).
        cond: Reg,
        /// Sense of the test.
        when: BrCond,
        /// Target when the test holds.
        taken: BlockId,
        /// Target when the test fails.
        fall: BlockId,
    },
    /// Function return; ends program execution.
    Ret,
}

impl Terminator {
    /// Successor block ids, in `(taken, fall)` order for branches.
    #[must_use]
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(t) => vec![*t],
            Terminator::Br { taken, fall, .. } => vec![*taken, *fall],
            Terminator::Ret => vec![],
        }
    }

    /// The condition register, if conditional.
    #[must_use]
    pub fn cond_reg(&self) -> Option<Reg> {
        match self {
            Terminator::Br { cond, .. } => Some(*cond),
            _ => None,
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jmp(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Terminator::Br { taken, fall, .. } => {
                if *taken == from {
                    *taken = to;
                }
                if *fall == from {
                    *fall = to;
                }
            }
            Terminator::Ret => {}
        }
    }
}

/// A basic block: a straight-line instruction list plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The instructions, in program order.
    pub insts: Vec<Inst>,
    /// The control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block ending in `term`.
    #[must_use]
    pub fn new(term: Terminator) -> Self {
        Block {
            insts: Vec::new(),
            term,
        }
    }

    /// Number of instructions (terminator excluded).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` when the block holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{Reg, RegClass};

    #[test]
    fn successors_and_retarget() {
        let c = Reg::virt(RegClass::Int, 0);
        let mut t = Terminator::Br {
            cond: c,
            when: BrCond::NonZero,
            taken: BlockId::new(1),
            fall: BlockId::new(2),
        };
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(2)]);
        t.retarget(BlockId::new(2), BlockId::new(5));
        assert_eq!(t.successors(), vec![BlockId::new(1), BlockId::new(5)]);
        assert_eq!(t.cond_reg(), Some(c));
        assert_eq!(Terminator::Ret.successors(), Vec::<BlockId>::new());
    }

    #[test]
    fn brcond_semantics() {
        assert!(BrCond::NonZero.holds(3));
        assert!(!BrCond::NonZero.holds(0));
        assert!(BrCond::Zero.holds(0));
        assert_eq!(BrCond::NonZero.invert(), BrCond::Zero);
    }
}
