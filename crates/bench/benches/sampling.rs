//! Sampled-simulation speed and accuracy: [`SimMode::Sampled`] against
//! the exact block-compiled engine on the same compiled programs.
//!
//! Per-kernel cases time representative (kernel, options) cells under
//! both modes with the calibrated microbench harness. `--grid` adds the
//! headline case: full simulation passes over the complete
//! `all_experiments` grid (17 kernels × 15 configurations = 255 cells,
//! compile excluded) — the pass the ≥3× acceptance target is about.
//!
//! Accuracy is measured on **every** cell the bench touches, against
//! the exact engine as oracle: per-cell relative errors on CPI, load
//! interlock, and L1D misses (stall/miss denominators floored per
//! `bsched_verify::SAMPLING_FLOOR_FRAC`), aggregated as mean and max.
//! The committed bounds — mean CPI error ≤ `SAMPLING_CPI_MEAN_TOL`,
//! max ≤ `SAMPLING_CPI_TOL` — are asserted outright, so the bench
//! doubles as the release-mode error harness behind `BENCH_pr8.json`.
//! Exact-by-construction observables (instruction counts, checksum) are
//! asserted bit-identical on every cell.
//!
//! Sampled timing splits one-time plan construction (profile, k-means,
//! checkpoints; cached process-wide) from the warm per-run replay:
//! `plan_ns` records the cold pass, `sampled_ns` the warm passes a
//! sweep actually repeats. Grid passes interleave exact → sampled
//! within each repetition and the ratios use per-arm minima, so a burst
//! of host contention inflates both arms of one repetition instead of
//! poisoning a single mode's numbers.
//!
//! Flags (same contract as `benches/simulator.rs`):
//!
//! * `--grid` — also measure the full-grid passes (slow; used to
//!   produce the committed `BENCH_pr8.json`);
//! * `--json PATH` — write the measurements as JSON;
//! * `--check BASELINE` — compare per-case exact:sampled speedups
//!   against a recorded JSON and exit 1 on regression (ratios, not wall
//!   times, so the check is machine-independent; min-based when the
//!   baseline records `speedup_min`);
//! * `--check-ratio R` — floor for `--check` as a fraction of the
//!   recorded speedup (default `0.9`).

use bsched_bench::microbench::bench;
use bsched_pipeline::{standard_grid, CompileOptions, Experiment, SchedulerKind};
use bsched_sim::{MachineSpec, SampleConfig, SimConfig, SimEngine, SimMode, SimResult, Simulator};
use bsched_verify::{
    sampling_rel_err, SAMPLING_CPI_MEAN_TOL, SAMPLING_CPI_TOL, SAMPLING_FLOOR_FRAC,
};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Per-cell relative errors of the sampled estimate vs the exact run.
struct CellErr {
    cpi: f64,
    interlock: f64,
    miss: f64,
}

/// Compares one cell's sampled run against its exact oracle: asserts
/// the exact-by-construction observables bit-identical and returns the
/// relative errors of the estimates.
fn cell_err(name: &str, exact: &SimResult, sampled: &SimResult) -> CellErr {
    assert_eq!(
        exact.metrics.insts, sampled.metrics.insts,
        "{name}: sampled instruction counts must be exact"
    );
    assert_eq!(
        exact.checksum, sampled.checksum,
        "{name}: sampled checksum must be exact"
    );
    let cycles_floor = (exact.metrics.cycles as f64 * SAMPLING_FLOOR_FRAC) as u64;
    let reads_floor = (exact.metrics.mem.total_reads() as f64 * SAMPLING_FLOOR_FRAC) as u64;
    let misses = |r: &SimResult| r.metrics.mem.total_reads() - r.metrics.mem.l1d_hits;
    CellErr {
        cpi: sampling_rel_err(sampled.metrics.cycles, exact.metrics.cycles, 1),
        interlock: sampling_rel_err(
            sampled.metrics.load_interlock,
            exact.metrics.load_interlock,
            cycles_floor,
        ),
        miss: sampling_rel_err(misses(sampled), misses(exact), reads_floor),
    }
}

/// One cell (or cell sweep) measured exactly and sampled.
struct Case {
    name: String,
    cells: usize,
    insts: u64,
    sampled_insts: u64,
    exact_ns: u128,
    sampled_ns: u128,
    exact_min_ns: u128,
    sampled_min_ns: u128,
    /// One-time plan construction (cold first sampled pass).
    plan_ns: u128,
    cpi_mean_err: f64,
    cpi_max_err: f64,
    interlock_max_err: f64,
    miss_max_err: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.exact_ns as f64 / self.sampled_ns.max(1) as f64
    }

    /// Speedup from the fastest observed times — far less sensitive to
    /// scheduling noise than medians (interference only adds time).
    fn speedup_min(&self) -> f64 {
        self.exact_min_ns as f64 / self.sampled_min_ns.max(1) as f64
    }

    fn with_errs(mut self, errs: &[CellErr]) -> Case {
        let n = errs.len().max(1) as f64;
        self.cpi_mean_err = errs.iter().map(|e| e.cpi).sum::<f64>() / n;
        self.cpi_max_err = errs.iter().map(|e| e.cpi).fold(0.0, f64::max);
        self.interlock_max_err = errs.iter().map(|e| e.interlock).fold(0.0, f64::max);
        self.miss_max_err = errs.iter().map(|e| e.miss).fold(0.0, f64::max);
        self
    }

    /// The committed accuracy bounds; the bench fails outright when a
    /// configuration change pushes estimates past them. The mean bound
    /// is a sweep-level criterion — single-cell cases only get the
    /// per-cell max bound.
    fn assert_within_bounds(&self) {
        assert!(
            self.cpi_max_err <= SAMPLING_CPI_TOL,
            "{}: max CPI error {:.2}% exceeds the {:.0}% bound",
            self.name,
            self.cpi_max_err * 100.0,
            SAMPLING_CPI_TOL * 100.0
        );
        assert!(
            self.cells == 1 || self.cpi_mean_err <= SAMPLING_CPI_MEAN_TOL,
            "{}: mean CPI error {:.2}% exceeds the {:.0}% bound",
            self.name,
            self.cpi_mean_err * 100.0,
            SAMPLING_CPI_MEAN_TOL * 100.0
        );
    }
}

fn run(program: &bsched_ir::Program, sim: SimConfig, mode: SimMode) -> SimResult {
    Simulator::for_machine(program, &MachineSpec::custom(sim))
        .with_engine(SimEngine::BlockCompiled)
        .with_mode(mode)
        .run()
        .expect("simulates")
}

fn print_case(case: &Case) {
    println!(
        "  {:<28} speedup {:>6.1}x  cpi err mean {:.2}% max {:.2}%  \
         ({} of {} insts simulated)",
        case.name,
        case.speedup(),
        case.cpi_mean_err * 100.0,
        case.cpi_max_err * 100.0,
        case.sampled_insts,
        case.insts,
    );
}

fn measure_cell(name: &str, program: &bsched_ir::Program, sim: SimConfig, mode: SimMode) -> Case {
    let exact_result = run(program, sim, SimMode::Exact);
    // Cold: builds the plan (profile + k-means + checkpoints).
    let cold = Instant::now();
    let sampled_result = run(program, sim, mode);
    let plan_ns = cold.elapsed().as_nanos();
    let errs = [cell_err(name, &exact_result, &sampled_result)];

    let exact = bench(&format!("sample/exact/{name}"), || {
        run(program, sim, SimMode::Exact)
    });
    let sampled = bench(&format!("sample/sampled/{name}"), || {
        run(program, sim, mode)
    });
    let case = Case {
        name: name.to_string(),
        cells: 1,
        insts: exact_result.metrics.insts.total(),
        sampled_insts: sampled_result.sample.expect("sampled run").sampled_insts,
        exact_ns: exact.median.as_nanos(),
        sampled_ns: sampled.median.as_nanos(),
        exact_min_ns: exact.min.as_nanos(),
        sampled_min_ns: sampled.min.as_nanos(),
        plan_ns,
        cpi_mean_err: 0.0,
        cpi_max_err: 0.0,
        interlock_max_err: 0.0,
        miss_max_err: 0.0,
    }
    .with_errs(&errs);
    print_case(&case);
    case.assert_within_bounds();
    case
}

/// Full simulation passes over the standard 255-cell grid, exact vs
/// sampled. Every cell is compiled and its sampling plan built up front
/// (the cold pass is reported as `plan_ns`); the timed passes run only
/// the simulator.
fn measure_grid(mode: SimMode) -> Case {
    let mut cells = Vec::new();
    for k in bsched_workloads::all_kernels() {
        for cfg in standard_grid() {
            let options = cfg.options();
            let compiled = Experiment::builder()
                .program(k.name, k.program())
                .compile_options(options)
                .build()
                .expect("cell builds")
                .compile()
                .expect("cell compiles");
            cells.push((format!("{}/{}", k.name, options.label()), compiled.program, options.sim));
        }
    }

    // Cold sampled pass: plan construction for every cell, plus the
    // per-cell accuracy comparison against the exact oracle.
    let mut insts = 0;
    let mut sampled_insts = 0;
    let mut errs = Vec::with_capacity(cells.len());
    let cold = Instant::now();
    for (name, program, sim) in &cells {
        let exact = run(program, *sim, SimMode::Exact);
        let sampled = run(program, *sim, mode);
        let e = cell_err(name, &exact, &sampled);
        if e.cpi > SAMPLING_CPI_TOL {
            println!(
                "    out-of-bound cell {name}: cpi err {:.2}% \
                 ({} est vs {} exact cycles, {:?})",
                e.cpi * 100.0,
                sampled.metrics.cycles,
                exact.metrics.cycles,
                sampled.sample.expect("sampled run"),
            );
        }
        errs.push(e);
        insts += exact.metrics.insts.total();
        sampled_insts += sampled.sample.expect("sampled run").sampled_insts;
    }
    let plan_ns = cold.elapsed().as_nanos();

    let passes: usize = std::env::var("BENCH_GRID_PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| (1..=100).contains(&n))
        .unwrap_or(5);
    let pass = |m: SimMode| -> Duration {
        let start = Instant::now();
        for (_, program, sim) in &cells {
            std::hint::black_box(run(program, *sim, m));
        }
        start.elapsed()
    };
    // Interleaved repetitions: contention bursts hit one repetition's
    // two arms together rather than one mode's whole sweep.
    let (mut exact, mut sampled) = (Vec::new(), Vec::new());
    for _ in 0..passes {
        exact.push(pass(SimMode::Exact));
        sampled.push(pass(mode));
    }
    exact.sort();
    sampled.sort();
    let case = Case {
        name: format!("grid/all_experiments_{}", cells.len()),
        cells: cells.len(),
        insts,
        sampled_insts,
        exact_ns: exact[passes / 2].as_nanos(),
        sampled_ns: sampled[passes / 2].as_nanos(),
        exact_min_ns: exact[0].as_nanos(),
        sampled_min_ns: sampled[0].as_nanos(),
        plan_ns,
        cpi_mean_err: 0.0,
        cpi_max_err: 0.0,
        interlock_max_err: 0.0,
        miss_max_err: 0.0,
    }
    .with_errs(&errs);
    print_case(&case);
    println!(
        "    exact {:.3}s/pass, sampled {:.3}s/pass warm ({passes} passes each), \
         plan build {:.3}s once",
        case.exact_min_ns as f64 / 1e9,
        case.sampled_min_ns as f64 / 1e9,
        case.plan_ns as f64 / 1e9,
    );
    println!(
        "    interlock err max {:.2}%, l1d-miss err max {:.2}% (floored denominators)",
        case.interlock_max_err * 100.0,
        case.miss_max_err * 100.0,
    );
    case.assert_within_bounds();
    case
}

fn to_json(cases: &[Case]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sampling\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"cells\": {}, \"insts\": {}, \"sampled_insts\": {}, \
             \"exact_ns\": {}, \"sampled_ns\": {}, \"speedup\": {:.2}, \
             \"exact_min_ns\": {}, \"sampled_min_ns\": {}, \"speedup_min\": {:.2}, \
             \"plan_ns\": {}, \"cpi_mean_err\": {:.5}, \"cpi_max_err\": {:.5}, \
             \"interlock_max_err\": {:.5}, \"miss_max_err\": {:.5}}}{comma}",
            c.name,
            c.cells,
            c.insts,
            c.sampled_insts,
            c.exact_ns,
            c.sampled_ns,
            c.speedup(),
            c.exact_min_ns,
            c.sampled_min_ns,
            c.speedup_min(),
            c.plan_ns,
            c.cpi_mean_err,
            c.cpi_max_err,
            c.interlock_max_err,
            c.miss_max_err,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// `(name, median speedup, min-based speedup if recorded)` per case.
fn parse_baseline(json: &str) -> Vec<(String, f64, Option<f64>)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    json.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|l| {
            let name = field(l, "name")?;
            let speedup = field(l, "speedup")?.parse().ok()?;
            let speedup_min = field(l, "speedup_min").and_then(|v| v.parse().ok());
            Some((name, speedup, speedup_min))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires an argument");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let json_path = flag_value("--json");
    let check_path = flag_value("--check");
    let check_ratio: f64 = flag_value("--check-ratio").map_or(0.9, |v| {
        let r = v.parse().unwrap_or(f64::NAN);
        if !(r > 0.0 && r <= 1.0) {
            eprintln!("--check-ratio requires a number in (0, 1], got {v}");
            std::process::exit(2);
        }
        r
    });
    let mode = SimMode::Sampled(
        flag_value("--sample").map_or_else(SampleConfig::default, |v| {
            v.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        }),
    );

    println!("sampling (exact block engine vs sampled mode, {mode:?}):");
    let mut cases = Vec::new();
    for (kernel, options) in [
        ("su2cor", CompileOptions::new(SchedulerKind::Balanced)),
        (
            "tomcatv",
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(8),
        ),
        ("ARC2D", CompileOptions::new(SchedulerKind::Traditional)),
    ] {
        let name = format!("{kernel}/{}", options.label());
        let compiled = Experiment::builder()
            .kernel(kernel)
            .compile_options(options)
            .build()
            .expect("kernel exists")
            .compile()
            .expect("compiles");
        cases.push(measure_cell(&name, &compiled.program, options.sim, mode));
    }

    if args.iter().any(|a| a == "--grid") {
        println!("full grid (simulation only, compile excluded):");
        cases.push(measure_grid(mode));
    }

    if let Some(path) = json_path {
        match std::fs::write(&path, to_json(&cases)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        for (name, base_median, base_min) in parse_baseline(&baseline) {
            let Some(case) = cases.iter().find(|c| c.name == name) else {
                continue;
            };
            let (now, base) = match base_min {
                Some(b) => (case.speedup_min(), b),
                None => (case.speedup(), base_median),
            };
            if now < base * check_ratio {
                eprintln!(
                    "REGRESSION: sampling/{name} speedup {now:.1}x is more than {:.0}% \
                     below the recorded {base:.1}x",
                    (1.0 - check_ratio) * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check vs {path}: ok");
    }
}
