//! Cost of the individual optimization passes on a representative kernel.

use bsched_opt::{
    apply_locality, local_cse, predicate_function, trace_schedule, unroll_function, EdgeProfile,
    LocalityOptions, TraceOptions, UnrollLimits,
};
use bsched_workloads::kernel_by_name;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let src = kernel_by_name("hydro2d").expect("kernel exists").program();
    c.bench_function("passes/local_cse", |b| {
        b.iter_batched(
            || src.clone(),
            |mut p| local_cse(p.main_mut()),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("passes/predication", |b| {
        let src = kernel_by_name("doduc").expect("kernel exists").program();
        b.iter_batched(
            || src.clone(),
            |mut p| predicate_function(p.main_mut()),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("passes/unroll4", |b| {
        b.iter_batched(
            || {
                let mut p = src.clone();
                local_cse(p.main_mut());
                p
            },
            |mut p| unroll_function(p.main_mut(), &UnrollLimits::for_factor(4)).len(),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("passes/locality", |b| {
        b.iter_batched(
            || {
                let mut p = src.clone();
                local_cse(p.main_mut());
                p
            },
            |mut p| apply_locality(p.main_mut(), &LocalityOptions::default()),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("passes/trace_schedule", |b| {
        let profile = EdgeProfile::collect(&src).expect("profiles");
        b.iter_batched(
            || src.clone(),
            |mut p| trace_schedule(p.main_mut(), &profile, &TraceOptions::default()),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
