//! Cost of the individual optimization passes on a representative kernel.
//!
//! Pass inputs are rebuilt per call (the passes mutate in place), so the
//! clone cost is included — identical across passes, and small next to
//! the pass work itself.

use bsched_bench::microbench::bench;
use bsched_core::{schedule_function, SchedulerKind, WeightConfig};
use bsched_ir::{Dag, DagAnalysis};
use bsched_opt::{
    apply_locality, local_cse, predicate_function, trace_schedule, unroll_function, EdgeProfile,
    LocalityOptions, TraceOptions, UnrollLimits,
};
use bsched_workloads::kernel_by_name;

fn main() {
    let src = kernel_by_name("hydro2d").expect("kernel exists").program();
    println!("passes:");
    bench("passes/local_cse", || {
        let mut p = src.clone();
        local_cse(p.main_mut());
        p
    });
    {
        let doduc = kernel_by_name("doduc").expect("kernel exists").program();
        bench("passes/predication", || {
            let mut p = doduc.clone();
            predicate_function(p.main_mut());
            p
        });
    }
    {
        let mut pre = src.clone();
        local_cse(pre.main_mut());
        bench("passes/unroll4", || {
            let mut p = pre.clone();
            unroll_function(p.main_mut(), &UnrollLimits::for_factor(4)).len()
        });
        bench("passes/locality", || {
            let mut p = pre.clone();
            apply_locality(p.main_mut(), &LocalityOptions::default())
        });
    }
    {
        let profile = EdgeProfile::collect(&src).expect("profiles");
        bench("passes/trace_schedule", || {
            let mut p = src.clone();
            trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
            p
        });
    }
    {
        // The shared DAG analysis (independence matrix + comparability
        // adjacency) on the kernel's largest block, and the scheduling
        // pass that consumes it.
        let mut pre = src.clone();
        local_cse(pre.main_mut());
        unroll_function(pre.main_mut(), &UnrollLimits::for_factor(8));
        let insts = pre
            .main()
            .blocks()
            .iter()
            .max_by_key(|b| b.len())
            .map(|b| b.insts.clone())
            .unwrap_or_default();
        let dag = Dag::new(&insts);
        bench(&format!("passes/dag_analysis/{}", insts.len()), || {
            DagAnalysis::compute(&dag, &insts)
        });
        bench("passes/schedule_balanced", || {
            let mut p = pre.clone();
            schedule_function(p.main_mut(), &WeightConfig::new(SchedulerKind::Balanced));
            p
        });
    }
}
