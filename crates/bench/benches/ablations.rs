//! Ablations over the design choices DESIGN.md calls out. Each ablation
//! prints the simulated-cycle outcome (the quantity of interest); the
//! headline configuration is also timed by the microbench helper.

use bsched_bench::microbench::bench;
use bsched_pipeline::{CompileOptions, Experiment, SchedulerKind};
use bsched_sim::SimConfig;

fn cycles(name: &str, opts: &CompileOptions) -> u64 {
    Experiment::builder()
        .kernel(name)
        .compile_options(*opts)
        .build()
        .expect("kernel exists")
        .run()
        .expect("pipeline succeeds")
        .metrics
        .cycles
}

fn main() {
    // 1. Weight cap (paper: 50 = max memory latency).
    println!("\nweight_cap ablation (hydro2d, balanced):");
    for cap in [2u32, 4, 10, 50] {
        let n = cycles(
            "hydro2d",
            &CompileOptions::new(SchedulerKind::Balanced).with_weight_cap(cap),
        );
        println!("  cap {cap:3}: {n} cycles");
    }

    // 2. MSHR sweep: with one MSHR the cache blocks and balanced
    // scheduling's advantage should collapse.
    println!("mshr sweep (dnasa7):");
    for mshrs in [1usize, 2, 6] {
        let sim = SimConfig::default().with_mshrs(mshrs);
        let bs = cycles(
            "dnasa7",
            &CompileOptions::new(SchedulerKind::Balanced).with_sim(sim),
        );
        let ts = cycles(
            "dnasa7",
            &CompileOptions::new(SchedulerKind::Traditional).with_sim(sim),
        );
        println!(
            "  {mshrs} MSHR(s): BS {bs}, TS {ts}, BS:TS {:.3}",
            ts as f64 / bs as f64
        );
    }

    // 3. Predication on/off: a single-conditional loop unrolls only once
    // the branch is converted to cmov (paper §4.2 footnote 2).
    println!("predication ablation (conditional reduction, balanced + LU4):");
    let prog = {
        use bsched_workloads::lang::ast::{CmpOp, Expr, Index, Stmt};
        use bsched_workloads::lang::{ArrayInit, Kernel};
        let mut k = Kernel::new("cond");
        let a = k.array("a", 2048, ArrayInit::Random(7));
        let out = k.array("out", 8, ArrayInit::Zero);
        let i = k.int_var("i");
        let s = k.float_var("s");
        k.push(k.assign(s, Expr::Float(0.0)));
        let body = vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::load(a, Index::of(i)), Expr::Float(0.5)),
            then_: vec![k.assign(s, Expr::Var(s) + Expr::load(a, Index::of(i)))],
            else_: vec![k.assign(s, Expr::Var(s) - Expr::load(a, Index::of(i)))],
        }];
        k.push(k.for_loop(i, Expr::Int(0), Expr::Int(2048), body));
        k.push(k.store(out, Index::constant(0), Expr::Var(s)));
        k.lower()
    };
    let run_cond = |opts: CompileOptions| {
        Experiment::builder()
            .program("cond", prog.clone())
            .compile_options(opts)
            .build()
            .expect("program supplied")
            .run()
            .expect("pipeline succeeds")
    };
    let with_pred = run_cond(CompileOptions::new(SchedulerKind::Balanced).with_unroll(4));
    let without = run_cond(
        CompileOptions::new(SchedulerKind::Balanced)
            .with_unroll(4)
            .without_predication(),
    );
    println!(
        "  predicated: {} cycles ({} loops unrolled), unpredicated: {} cycles ({} loops unrolled)",
        with_pred.metrics.cycles,
        with_pred.compile.unrolled_loops,
        without.metrics.cycles,
        without.compile.unrolled_loops
    );

    // 4. Tie-break heuristic order (paper §4.2's three heuristics).
    println!("tie-break heuristic ablation (dnasa7, balanced):");
    for (label, tb) in [
        (
            "pressure-first (paper)",
            bsched_pipeline::TieBreak::Standard,
        ),
        ("exposed-first", bsched_pipeline::TieBreak::ExposedFirst),
        (
            "program order only",
            bsched_pipeline::TieBreak::ProgramOrder,
        ),
    ] {
        let n = cycles(
            "dnasa7",
            &CompileOptions::new(SchedulerKind::Balanced)
                .with_unroll(4)
                .with_tie_break(tb),
        );
        println!("  {label}: {n} cycles");
    }

    // 5. Unrolled-body budget (paper: 64 at factor 4).
    println!("unroll budget ablation (tomcatv, balanced + LU4):");
    for budget in [32usize, 64, 128, 256] {
        let n = cycles(
            "tomcatv",
            &CompileOptions::new(SchedulerKind::Balanced)
                .with_unroll(4)
                .with_unroll_budget(budget),
        );
        println!("  budget {budget:3}: {n} cycles");
    }

    // 6. Selective scheduling under locality analysis: transformations
    // with and without the hit-aware weights.
    println!("selective scheduling ablation (tomcatv, balanced + LA):");
    let sel = cycles(
        "tomcatv",
        &CompileOptions::new(SchedulerKind::Balanced).with_locality(),
    );
    let nosel = cycles(
        "tomcatv",
        &CompileOptions::new(SchedulerKind::Balanced)
            .with_locality()
            .without_selective(),
    );
    println!("  selective: {sel} cycles, plain balanced on transformed code: {nosel} cycles");

    // 7. Write-buffer depth (infinite = the paper's store accounting).
    println!("write-buffer ablation (swm256, balanced + LU4):");
    {
        let inf = cycles(
            "swm256",
            &CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
        );
        println!("  infinite: {inf} cycles");
        for n in [1u32, 2, 6] {
            let mut sim = SimConfig::default();
            sim.mem = sim.mem.with_write_buffer(n);
            let c = cycles(
                "swm256",
                &CompileOptions::new(SchedulerKind::Balanced)
                    .with_unroll(4)
                    .with_sim(sim),
            );
            println!("  {n} entries: {c} cycles");
        }
    }

    // 8. I-fetch modeling (the Kerns–Eggers perfect-I-cache assumption).
    println!("ifetch ablation (ARC2D, balanced):");
    let on = cycles("ARC2D", &CompileOptions::new(SchedulerKind::Balanced));
    let off = cycles(
        "ARC2D",
        &CompileOptions::new(SchedulerKind::Balanced)
            .with_sim(SimConfig::default().with_ifetch(false)),
    );
    println!("  modeled: {on}, perfect I-cache: {off}\n");

    bench("ablations/weight_cap_50", || {
        cycles("hydro2d", &CompileOptions::new(SchedulerKind::Balanced))
    });
}
