//! Full pipeline (compile + verify + simulate) per kernel and headline
//! configuration.

use bsched_pipeline::{compile_and_run, CompileOptions, SchedulerKind};
use bsched_workloads::kernel_by_name;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for name in ["su2cor", "tomcatv", "spice2g6"] {
        let p = kernel_by_name(name).expect("kernel exists").program();
        for (label, opts) in [
            ("BS", CompileOptions::new(SchedulerKind::Balanced)),
            ("TS", CompileOptions::new(SchedulerKind::Traditional)),
            (
                "BS+LU4",
                CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            ),
        ] {
            g.bench_with_input(BenchmarkId::new(label, name), &p, |b, p| {
                b.iter(|| compile_and_run(p, &opts).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
