//! Full pipeline (compile + verify + simulate) per kernel and headline
//! configuration.

use bsched_bench::microbench::bench;
use bsched_pipeline::{CompileOptions, Experiment, SchedulerKind};

fn main() {
    println!("end_to_end:");
    for name in ["su2cor", "tomcatv", "spice2g6"] {
        for (label, opts) in [
            ("BS", CompileOptions::new(SchedulerKind::Balanced)),
            ("TS", CompileOptions::new(SchedulerKind::Traditional)),
            (
                "BS+LU4",
                CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            ),
        ] {
            let session = Experiment::builder()
                .kernel(name)
                .compile_options(opts)
                .build()
                .expect("kernel exists");
            bench(&format!("end_to_end/{label}/{name}"), || {
                session.run().unwrap()
            });
        }
    }
}
