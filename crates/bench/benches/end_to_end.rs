//! Full pipeline (compile + verify + simulate) per kernel and headline
//! configuration.

use bsched_bench::microbench::bench;
use bsched_pipeline::{compile_and_run, CompileOptions, SchedulerKind};
use bsched_workloads::kernel_by_name;

fn main() {
    println!("end_to_end:");
    for name in ["su2cor", "tomcatv", "spice2g6"] {
        let p = kernel_by_name(name).expect("kernel exists").program();
        for (label, opts) in [
            ("BS", CompileOptions::new(SchedulerKind::Balanced)),
            ("TS", CompileOptions::new(SchedulerKind::Traditional)),
            (
                "BS+LU4",
                CompileOptions::new(SchedulerKind::Balanced).with_unroll(4),
            ),
        ] {
            bench(&format!("end_to_end/{label}/{name}"), || {
                compile_and_run(&p, &opts).unwrap()
            });
        }
    }
}
