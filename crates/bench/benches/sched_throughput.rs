//! Scheduling throughput: list-scheduler cost, balanced vs traditional,
//! over region sizes.

use bsched_bench::microbench::bench;
use bsched_core::{schedule_order, SchedulerKind, WeightConfig};
use bsched_ir::{Inst, Op, Reg, RegClass, RegionId};

fn region(n_iters: u32) -> Vec<Inst> {
    let r = |n| Reg::virt(RegClass::Int, n);
    let f = |n| Reg::virt(RegClass::Float, n);
    let mut insts = Vec::new();
    for k in 0..n_iters {
        insts.push(Inst::load(f(k * 3), r(k % 4), i64::from(k) * 8).with_region(RegionId::new(0)));
        insts.push(Inst::op(Op::FMul, f(k * 3 + 1), &[f(k * 3), f(k * 3)]));
        insts.push(Inst::op(Op::FAdd, f(k * 3 + 2), &[f(k * 3 + 1), f(k * 3)]));
        insts.push(
            Inst::store(f(k * 3 + 2), r(k % 4), i64::from(k) * 8 + 8192)
                .with_region(RegionId::new(0)),
        );
    }
    insts
}

fn main() {
    println!("sched_throughput:");
    for size in [8u32, 32, 128] {
        let insts = region(size);
        for kind in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
            bench(
                &format!("sched_throughput/{}/{}", kind.label(), insts.len()),
                || schedule_order(&insts, &WeightConfig::new(kind)),
            );
        }
    }
}
