//! Regenerates the paper's headline comparison (the Table 8 "no
//! optimizations" and "LU 4" rows) under Criterion timing, and prints the
//! measured speedups so `cargo bench` reproduces the numbers end to end.

use bsched_bench::Grid;
use bsched_pipeline::table::mean;
use bsched_pipeline::ConfigKind;
use criterion::{criterion_group, criterion_main, Criterion};

fn headline() -> (f64, f64) {
    let mut grid = Grid::new();
    let mut base = Vec::new();
    let mut lu4 = Vec::new();
    for kernel in grid.kernel_names() {
        let bs0 = grid.bs(&kernel, ConfigKind::Base);
        let ts0 = grid.ts(&kernel, ConfigKind::Base);
        base.push(bs0.speedup_over(&ts0));
        let bs4 = grid.bs(&kernel, ConfigKind::Lu(4));
        let ts4 = grid.ts(&kernel, ConfigKind::Lu(4));
        lu4.push(bs4.speedup_over(&ts4));
    }
    (mean(&base), mean(&lu4))
}

fn bench(c: &mut Criterion) {
    let (s0, s4) = headline();
    println!("\nheadline BS:TS speedups — no optimizations: {s0:.2}, LU4: {s4:.2}");
    println!("(paper: 1.05 and 1.12)\n");
    assert!(s0 > 1.0, "balanced must beat traditional on average");
    assert!(s4 >= s0 - 0.02, "unrolling must not shrink the advantage");

    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table8_headline_grid", |b| b.iter(headline));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
