//! Regenerates the paper's headline comparison (the Table 8 "no
//! optimizations" and "LU 4" rows) under microbench timing, and prints
//! the measured speedups so `cargo bench` reproduces the numbers end to
//! end. The grid runs through the harness engine, so the timed portion
//! after the first pass measures the memoized path.

use bsched_bench::microbench::bench;
use bsched_bench::Grid;
use bsched_pipeline::table::mean;
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind};

fn headline(grid: &Grid) -> (f64, f64) {
    let mut base = Vec::new();
    let mut lu4 = Vec::new();
    for kernel in grid.kernel_names() {
        let bs0 = grid.bs(&kernel, ConfigKind::Base);
        let ts0 = grid.ts(&kernel, ConfigKind::Base);
        base.push(bs0.speedup_over(&ts0));
        let bs4 = grid.bs(&kernel, ConfigKind::Lu(4));
        let ts4 = grid.ts(&kernel, ConfigKind::Lu(4));
        lu4.push(bs4.speedup_over(&ts4));
    }
    (mean(&base), mean(&lu4))
}

fn main() {
    let grid = Grid::new();
    let configs: Vec<ExperimentConfig> = [SchedulerKind::Traditional, SchedulerKind::Balanced]
        .into_iter()
        .flat_map(|scheduler| {
            [ConfigKind::Base, ConfigKind::Lu(4)]
                .into_iter()
                .map(move |kind| ExperimentConfig { scheduler, kind })
        })
        .collect();
    grid.prefetch(&configs);

    let (s0, s4) = headline(&grid);
    println!("\nheadline BS:TS speedups — no optimizations: {s0:.2}, LU4: {s4:.2}");
    println!("(paper: 1.05 and 1.12)\n");
    assert!(s0 > 1.0, "balanced must beat traditional on average");
    assert!(s4 >= s0 - 0.02, "unrolling must not shrink the advantage");

    bench("tables/table8_headline_grid", || headline(&grid));
}
