//! Raw timing-simulator throughput (simulated instructions per host
//! second) on a compiled kernel.

use bsched_bench::microbench::{bench, fmt_duration};
use bsched_pipeline::{Experiment, SchedulerKind};
use bsched_sim::{SimConfig, Simulator};

fn main() {
    let compiled = Experiment::builder()
        .kernel("su2cor")
        .scheduler(SchedulerKind::Balanced)
        .build()
        .expect("kernel exists")
        .compile()
        .expect("compiles");
    let sim0 = Simulator::new(&compiled.program, SimConfig::default())
        .run()
        .expect("runs");
    let insts = sim0.metrics.insts.total();

    println!("simulator ({insts} simulated instructions per run):");
    let m = bench("simulator/su2cor_balanced", || {
        Simulator::new(&compiled.program, SimConfig::default())
            .run()
            .unwrap()
    });
    let per_inst = m.median / u32::try_from(insts.max(1)).unwrap_or(u32::MAX);
    println!(
        "  throughput: {:.1} Minst/s ({} per instruction)",
        insts as f64 / m.median.as_secs_f64() / 1e6,
        fmt_duration(per_inst)
    );
}
