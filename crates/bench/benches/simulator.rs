//! Timing-simulator throughput: the **interpreting** engine against the
//! **block-compiled** engine on the same compiled programs.
//!
//! Per-kernel cases time representative (kernel, options) cells through
//! both engines with the calibrated microbench harness. `--grid` adds
//! the headline case: full simulation passes over the complete
//! `all_experiments` grid (17 kernels × 15 configurations = 255 cells,
//! compile excluded) per engine — the number the ≥10× target is about.
//! Engine bit-identity (metrics and checksum) is asserted on every cell
//! measured, so the bench doubles as an equivalence check.
//!
//! The grid case also times a **functional floor**: pure functional
//! execution (`bsched_ir::interp::Interp`) of every cell with no timing
//! model at all. Both engines contain that work verbatim — it is the
//! irreducible cost of *running* the programs — so the simulator
//! speedup proper is the ratio of what each engine adds on top:
//!
//! ```text
//! timing-engine speedup = (T_interp − T_func) / (T_block − T_func)
//! ```
//!
//! the same overhead-over-emulation metric DBT-based timing simulators
//! report (see DESIGN.md §12). The raw wall-clock times and the plain
//! end-to-end ratio are recorded alongside it. Grid passes interleave
//! interpret → block → functional within each repetition and the ratios
//! use per-arm minima, so a burst of host contention inflates all three
//! arms of one repetition instead of poisoning a single engine's
//! numbers.
//!
//! Flags (same contract as `benches/weights.rs`):
//!
//! * `--grid` — also measure the full-grid passes (slow; used to
//!   produce the committed `BENCH_pr7.json`);
//! * `--json PATH` — write the measurements as JSON;
//! * `--check BASELINE` — compare per-case interp:block speedups
//!   against a recorded JSON and exit 1 on regression (ratios, not wall
//!   times, so the check is machine-independent; min-based when the
//!   baseline records `speedup_min`);
//! * `--check-ratio R` — floor for `--check` as a fraction of the
//!   recorded speedup (default `0.9`; `scripts/ci.sh` passes a generous
//!   machine-independent floor — the gate catches the block engine
//!   silently degenerating toward 1×, not scheduler jitter).

use bsched_bench::microbench::bench;
use bsched_pipeline::{standard_grid, CompileOptions, Experiment, SchedulerKind};
use bsched_sim::{MachineSpec, SimConfig, SimEngine, SimResult, Simulator};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One compiled cell (or cell sweep) measured under both engines.
struct Case {
    name: String,
    insts: u64,
    loads: u64,
    interp_ns: u128,
    block_ns: u128,
    interp_min_ns: u128,
    block_min_ns: u128,
    /// Functional-floor pass times (grid case only).
    func_ns: Option<u128>,
    func_min_ns: Option<u128>,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.interp_ns as f64 / self.block_ns.max(1) as f64
    }

    /// Speedup from the fastest observed times — far less sensitive to
    /// scheduling noise than medians (interference only adds time).
    fn speedup_min(&self) -> f64 {
        self.interp_min_ns as f64 / self.block_min_ns.max(1) as f64
    }

    /// Timing-engine speedup over the functional floor (min-based):
    /// `(interp − func) / (block − func)`.
    fn overhead_speedup_min(&self) -> Option<f64> {
        let func = self.func_min_ns?;
        let interp = self.interp_min_ns.saturating_sub(func);
        let block = self.block_min_ns.saturating_sub(func).max(1);
        Some(interp as f64 / block as f64)
    }
}

fn compile_cell(kernel: &str, options: CompileOptions) -> (bsched_ir::Program, SimConfig) {
    let compiled = Experiment::builder()
        .kernel(kernel)
        .compile_options(options)
        .build()
        .expect("kernel exists")
        .compile()
        .expect("compiles");
    (compiled.program, options.sim)
}

fn run(program: &bsched_ir::Program, sim: SimConfig, engine: SimEngine) -> SimResult {
    Simulator::for_machine(program, &MachineSpec::custom(sim))
        .with_engine(engine)
        .run()
        .expect("simulates")
}

fn print_case(case: &Case) {
    println!(
        "  {:<28} speedup {:>6.1}x  ({} insts, {} loads)",
        case.name,
        case.speedup(),
        case.insts,
        case.loads
    );
}

fn measure_cell(name: &str, program: &bsched_ir::Program, sim: SimConfig) -> Case {
    let interp_result = run(program, sim, SimEngine::Interpret);
    let block_result = run(program, sim, SimEngine::BlockCompiled);
    assert_eq!(
        interp_result.metrics, block_result.metrics,
        "{name}: engines diverged"
    );
    assert_eq!(interp_result.checksum, block_result.checksum, "{name}");

    let interp = bench(&format!("sim/interp/{name}"), || {
        run(program, sim, SimEngine::Interpret)
    });
    let block = bench(&format!("sim/block/{name}"), || {
        run(program, sim, SimEngine::BlockCompiled)
    });
    let case = Case {
        name: name.to_string(),
        insts: interp_result.metrics.insts.total(),
        loads: interp_result.metrics.insts.loads,
        interp_ns: interp.median.as_nanos(),
        block_ns: block.median.as_nanos(),
        interp_min_ns: interp.min.as_nanos(),
        block_min_ns: block.min.as_nanos(),
        func_ns: None,
        func_min_ns: None,
    };
    print_case(&case);
    case
}

/// Full simulation passes over the standard 255-cell grid, per engine.
/// Every cell is compiled up front; the timed passes run only the
/// simulator.
fn measure_grid() -> Case {
    let mut cells = Vec::new();
    for k in bsched_workloads::all_kernels() {
        for cfg in standard_grid() {
            let options = cfg.options();
            let compiled = Experiment::builder()
                .program(k.name, k.program())
                .compile_options(options)
                .build()
                .expect("cell builds")
                .compile()
                .expect("cell compiles");
            cells.push((compiled.program, options.sim));
        }
    }

    // Bit-identity across the whole grid, plus the instruction totals.
    let mut insts = 0;
    let mut loads = 0;
    for (program, sim) in &cells {
        let a = run(program, *sim, SimEngine::Interpret);
        let b = run(program, *sim, SimEngine::BlockCompiled);
        assert_eq!(a.metrics, b.metrics, "{}: engines diverged", program.name());
        assert_eq!(a.checksum, b.checksum, "{}", program.name());
        insts += a.metrics.insts.total();
        loads += a.metrics.insts.loads;
    }

    let passes: usize = std::env::var("BENCH_GRID_PASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| (1..=100).contains(&n))
        .unwrap_or(5);
    let engine_pass = |engine: SimEngine| -> Duration {
        let start = Instant::now();
        for (program, sim) in &cells {
            std::hint::black_box(run(program, *sim, engine));
        }
        start.elapsed()
    };
    let func_pass = || -> Duration {
        let start = Instant::now();
        for (program, _) in &cells {
            std::hint::black_box(
                bsched_ir::interp::Interp::new(program)
                    .run()
                    .expect("cell executes"),
            );
        }
        start.elapsed()
    };
    // Interleaved repetitions: contention bursts hit one repetition's
    // three arms together rather than one engine's whole sweep.
    let (mut interp, mut block, mut func) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..passes {
        interp.push(engine_pass(SimEngine::Interpret));
        block.push(engine_pass(SimEngine::BlockCompiled));
        func.push(func_pass());
    }
    interp.sort();
    block.sort();
    func.sort();
    let case = Case {
        name: format!("grid/all_experiments_{}", cells.len()),
        insts,
        loads,
        interp_ns: interp[passes / 2].as_nanos(),
        block_ns: block[passes / 2].as_nanos(),
        interp_min_ns: interp[0].as_nanos(),
        block_min_ns: block[0].as_nanos(),
        func_ns: Some(func[passes / 2].as_nanos()),
        func_min_ns: Some(func[0].as_nanos()),
    };
    print_case(&case);
    println!(
        "    interp {:.2}s/pass, block {:.2}s/pass, functional floor {:.2}s/pass \
         ({passes} passes each)",
        case.interp_min_ns as f64 / 1e9,
        case.block_min_ns as f64 / 1e9,
        case.func_min_ns.unwrap_or(0) as f64 / 1e9,
    );
    if let Some(s) = case.overhead_speedup_min() {
        println!("    timing-engine speedup over the functional floor: {s:.1}x");
    }
    case
}

fn to_json(cases: &[Case]) -> String {
    let mut out = String::from("{\n  \"bench\": \"simulator\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let mut floor = String::new();
        if let (Some(f), Some(fm), Some(s)) = (c.func_ns, c.func_min_ns, c.overhead_speedup_min())
        {
            let _ = write!(
                floor,
                ", \"functional_ns\": {f}, \"functional_min_ns\": {fm}, \
                 \"overhead_speedup_min\": {s:.2}"
            );
        }
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"insts\": {}, \"loads\": {}, \
             \"interp_ns\": {}, \"block_ns\": {}, \"speedup\": {:.2}, \
             \"interp_min_ns\": {}, \"block_min_ns\": {}, \"speedup_min\": {:.2}{floor}}}{comma}",
            c.name,
            c.insts,
            c.loads,
            c.interp_ns,
            c.block_ns,
            c.speedup(),
            c.interp_min_ns,
            c.block_min_ns,
            c.speedup_min()
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// `(name, median speedup, min-based speedup if recorded)` per case.
fn parse_baseline(json: &str) -> Vec<(String, f64, Option<f64>)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    json.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|l| {
            let name = field(l, "name")?;
            let speedup = field(l, "speedup")?.parse().ok()?;
            let speedup_min = field(l, "speedup_min").and_then(|v| v.parse().ok());
            Some((name, speedup, speedup_min))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires an argument");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let json_path = flag_value("--json");
    let check_path = flag_value("--check");
    let check_ratio: f64 = flag_value("--check-ratio").map_or(0.9, |v| {
        let r = v.parse().unwrap_or(f64::NAN);
        if !(r > 0.0 && r <= 1.0) {
            eprintln!("--check-ratio requires a number in (0, 1], got {v}");
            std::process::exit(2);
        }
        r
    });

    println!("simulator (interpreting engine vs block-compiled engine):");
    let mut cases = Vec::new();
    for (kernel, options) in [
        ("su2cor", CompileOptions::new(SchedulerKind::Balanced)),
        (
            "tomcatv",
            CompileOptions::new(SchedulerKind::Balanced).with_unroll(8),
        ),
        ("ARC2D", CompileOptions::new(SchedulerKind::Traditional)),
    ] {
        let name = format!("{kernel}/{}", options.label());
        let (program, sim) = compile_cell(kernel, options);
        cases.push(measure_cell(&name, &program, sim));
    }

    if args.iter().any(|a| a == "--grid") {
        println!("full grid (simulation only, compile excluded):");
        cases.push(measure_grid());
    }

    if let Some(path) = json_path {
        match std::fs::write(&path, to_json(&cases)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        for (name, base_median, base_min) in parse_baseline(&baseline) {
            let Some(case) = cases.iter().find(|c| c.name == name) else {
                continue;
            };
            let (now, base) = match base_min {
                Some(b) => (case.speedup_min(), b),
                None => (case.speedup(), base_median),
            };
            if now < base * check_ratio {
                eprintln!(
                    "REGRESSION: sim/{name} speedup {now:.1}x is more than {:.0}% \
                     below the recorded {base:.1}x",
                    (1.0 - check_ratio) * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check vs {path}: ok");
    }
}
