//! Raw timing-simulator throughput (simulated instructions per host
//! second) on a compiled kernel.

use bsched_pipeline::{compile, CompileOptions, SchedulerKind};
use bsched_sim::{SimConfig, Simulator};
use bsched_workloads::kernel_by_name;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let p = kernel_by_name("su2cor").expect("kernel exists").program();
    let compiled = compile(&p, &CompileOptions::new(SchedulerKind::Balanced)).expect("compiles");
    let sim0 = Simulator::new(&compiled.program, SimConfig::default())
        .run()
        .expect("runs");
    let insts = sim0.metrics.insts.total();

    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("su2cor_balanced", |b| {
        b.iter(|| {
            Simulator::new(&compiled.program, SimConfig::default())
                .run()
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
