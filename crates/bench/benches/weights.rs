//! Cost of the balanced load-weight computation as region size grows,
//! with a **naive** arm (the retained per-contributor reference walk,
//! [`compute_weights_reference`]) against the **kernel** arm (the bitset
//! DAG-analysis fast path, [`compute_weights`]) on the same regions.
//!
//! Regions come from two sources: synthetic wide load/FP regions, and
//! the largest scheduled blocks of real suite kernels compiled at
//! unroll factor 8 — the shapes where the paper's balanced weights
//! dominate compile time.
//!
//! Flags:
//!
//! * `--e2e` — also time the full pipeline (compile + verify +
//!   simulate) with the weight kernel against the same pipeline forced
//!   through the naive reference (`reference_weights`);
//! * `--json PATH` — also write the measurements as JSON (the committed
//!   `BENCH_pr2.json` is produced this way by `scripts/ci.sh`);
//! * `--check BASELINE` — after measuring, compare per-case
//!   naive:kernel speedups against a previously recorded JSON and fail
//!   (exit 1) if any case regressed past the threshold (10 % by
//!   default). Speedup ratios, not wall times, are compared so the
//!   check is machine-independent; when the baseline records
//!   `speedup_min` (fastest-observed ratio, stable to ~1% under
//!   scheduling noise) that is compared, otherwise the median ratio;
//!   whole-pipeline `e2e/` cases are recorded but exempt (the weight
//!   share of a full run varies with simulator load);
//! * `--check-ratio R` — floor for `--check` as a fraction of the
//!   recorded speedup (default `0.9`). The CI tracing-overhead smoke
//!   uses `0.97`: with the recorder compiled in but disabled, the
//!   kernel must keep ≥ 97 % of its recorded speedup.

use bsched_bench::microbench::bench;
use bsched_core::{compute_weights, compute_weights_reference, SchedulerKind, WeightConfig};
use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};
use bsched_pipeline::{CompileOptions, Experiment};
use std::fmt::Write as _;

/// One region measured under both arms.
struct Case {
    name: String,
    insts: usize,
    loads: usize,
    naive_ns: u128,
    kernel_ns: u128,
    naive_min_ns: u128,
    kernel_min_ns: u128,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.naive_ns as f64 / self.kernel_ns.max(1) as f64
    }

    /// Speedup from fastest observed times. Minimums are far less
    /// sensitive to scheduling noise than medians (interference only
    /// ever adds time), so `--check` prefers this ratio whenever the
    /// baseline recorded minimums too.
    fn speedup_min(&self) -> f64 {
        self.naive_min_ns as f64 / self.kernel_min_ns.max(1) as f64
    }
}

fn synthetic_region(n_loads: u32) -> Vec<Inst> {
    let r = |n| Reg::virt(RegClass::Int, n);
    let f = |n| Reg::virt(RegClass::Float, n);
    let mut insts = Vec::new();
    for k in 0..n_loads {
        insts.push(Inst::load(f(k * 2), r(k % 8), i64::from(k) * 8).with_region(RegionId::new(0)));
        insts.push(Inst::op(Op::FAdd, f(k * 2 + 1), &[f(k * 2), f(k * 2)]));
    }
    insts
}

/// The largest scheduled block of `kernel` compiled at unroll factor 8.
fn unroll8_region(kernel: &str) -> Vec<Inst> {
    let compiled = Experiment::builder()
        .kernel(kernel)
        .compile_options(CompileOptions::new(SchedulerKind::Balanced).with_unroll(8))
        .build()
        .expect("kernel exists")
        .compile()
        .expect("compiles");
    compiled
        .program
        .main()
        .blocks()
        .iter()
        .max_by_key(|b| b.len())
        .map(|b| b.insts.clone())
        .unwrap_or_default()
}

fn measure(name: &str, insts: &[Inst]) -> Case {
    let dag = Dag::new(insts);
    let loads = insts.iter().filter(|i| i.op.is_load()).count();
    let config = WeightConfig::new(SchedulerKind::Balanced);
    let naive = bench(&format!("weights/naive/{name}"), || {
        compute_weights_reference(insts, &dag, &config)
    });
    let kernel = bench(&format!("weights/kernel/{name}"), || {
        compute_weights(insts, &dag, &config)
    });
    let case = Case {
        name: name.to_string(),
        insts: insts.len(),
        loads,
        naive_ns: naive.median.as_nanos(),
        kernel_ns: kernel.median.as_nanos(),
        naive_min_ns: naive.min.as_nanos(),
        kernel_min_ns: kernel.min.as_nanos(),
    };
    println!(
        "  {:<44} speedup {:>8.1}x  ({} insts, {} loads)",
        case.name,
        case.speedup(),
        case.insts,
        case.loads
    );
    case
}

fn to_json(cases: &[Case]) -> String {
    let mut out = String::from("{\n  \"bench\": \"weights\",\n  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"insts\": {}, \"loads\": {}, \
             \"naive_ns\": {}, \"kernel_ns\": {}, \"speedup\": {:.2}, \
             \"naive_min_ns\": {}, \"kernel_min_ns\": {}, \"speedup_min\": {:.2}}}{comma}",
            c.name,
            c.insts,
            c.loads,
            c.naive_ns,
            c.kernel_ns,
            c.speedup(),
            c.naive_min_ns,
            c.kernel_min_ns,
            c.speedup_min()
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `(name, speedup)` pairs back out of [`to_json`]'s output.
/// `(name, median speedup, min-based speedup if recorded)` per case.
fn parse_baseline(json: &str) -> Vec<(String, f64, Option<f64>)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    json.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|l| {
            let name = field(l, "name")?;
            let speedup = field(l, "speedup")?.parse().ok()?;
            let speedup_min = field(l, "speedup_min").and_then(|v| v.parse().ok());
            Some((name, speedup, speedup_min))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("{flag} requires a path argument");
                    std::process::exit(2);
                })
                .clone()
        })
    };
    let json_path = flag_value("--json");
    let check_path = flag_value("--check");
    let check_ratio: f64 = flag_value("--check-ratio").map_or(0.9, |v| {
        let r = v.parse().unwrap_or(f64::NAN);
        if !(r > 0.0 && r <= 1.0) {
            eprintln!("--check-ratio requires a number in (0, 1], got {v}");
            std::process::exit(2);
        }
        r
    });

    println!("weights (naive reference vs bitset kernel, balanced):");
    let mut cases = Vec::new();
    for n in [8u32, 32, 96] {
        let insts = synthetic_region(n);
        cases.push(measure(&format!("synth/{}", insts.len()), &insts));
    }
    for kernel in ["tomcatv", "su2cor"] {
        let insts = unroll8_region(kernel);
        cases.push(measure(&format!("unroll8/{kernel}/{}", insts.len()), &insts));
    }

    if args.iter().any(|a| a == "--e2e") {
        // The whole scheduling pass (liveness + per-block weights +
        // list scheduling over every block of the compiled function),
        // with the weights forced through either arm.
        println!("end-to-end (whole scheduling pass, naive weights vs kernel):");
        for kernel in ["tomcatv", "su2cor"] {
            let compiled = Experiment::builder()
                .kernel(kernel)
                .compile_options(
                    CompileOptions::new(SchedulerKind::Balanced)
                        .with_unroll(8)
                        .with_trace(),
                )
                .build()
                .expect("kernel exists")
                .compile()
                .expect("compiles");
            let func = compiled.program.main();
            let insts = func.inst_count();
            let run = |reference: bool| {
                let config = WeightConfig::new(SchedulerKind::Balanced).with_reference(reference);
                bench(
                    &format!(
                        "e2e/{}/{kernel}_bs_lu8t",
                        if reference { "naive" } else { "kernel" }
                    ),
                    || {
                        let mut f = func.clone();
                        bsched_core::schedule_function(&mut f, &config);
                        f
                    },
                )
            };
            let naive = run(true);
            let fast = run(false);
            let case = Case {
                name: format!("e2e/{kernel}_bs_lu8t"),
                insts,
                loads: 0,
                naive_ns: naive.median.as_nanos(),
                kernel_ns: fast.median.as_nanos(),
                naive_min_ns: naive.min.as_nanos(),
                kernel_min_ns: fast.min.as_nanos(),
            };
            println!("  {:<44} speedup {:>8.2}x", case.name, case.speedup());
            cases.push(case);
        }
    }

    if let Some(path) = json_path {
        match std::fs::write(&path, to_json(&cases)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        for (name, base_median, base_min) in parse_baseline(&baseline) {
            if name.starts_with("e2e/") {
                continue;
            }
            let Some(case) = cases.iter().find(|c| c.name == name) else {
                continue;
            };
            // Min-based ratios when the baseline has them (stable to
            // ~1% on a noisy machine); median ratios otherwise (the
            // PR 2 baseline predates the min fields).
            let (now, base) = match base_min {
                Some(b) => (case.speedup_min(), b),
                None => (case.speedup(), base_median),
            };
            if now < base * check_ratio {
                eprintln!(
                    "REGRESSION: weights/{name} speedup {now:.1}x is more than {:.0}% \
                     below the recorded {base:.1}x",
                    (1.0 - check_ratio) * 100.0
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check vs {path}: ok");
    }
}
