//! Cost of the balanced load-weight computation (transitive closure +
//! coverage components) as region size grows.

use bsched_bench::microbench::bench;
use bsched_core::{compute_weights, SchedulerKind, WeightConfig};
use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};

fn region(n_loads: u32) -> Vec<Inst> {
    let r = |n| Reg::virt(RegClass::Int, n);
    let f = |n| Reg::virt(RegClass::Float, n);
    let mut insts = Vec::new();
    for k in 0..n_loads {
        insts.push(Inst::load(f(k * 2), r(k % 8), i64::from(k) * 8).with_region(RegionId::new(0)));
        insts.push(Inst::op(Op::FAdd, f(k * 2 + 1), &[f(k * 2), f(k * 2)]));
    }
    insts
}

fn main() {
    println!("weights:");
    for n in [8u32, 32, 96] {
        let insts = region(n);
        let dag = Dag::new(&insts);
        for kind in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
            bench(&format!("weights/{}/{}", kind.label(), insts.len()), || {
                compute_weights(&insts, &dag, &WeightConfig::new(kind))
            });
        }
    }
}
