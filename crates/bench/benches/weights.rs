//! Cost of the balanced load-weight computation (transitive closure +
//! coverage components) as region size grows.

use bsched_core::{compute_weights, SchedulerKind, WeightConfig};
use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn region(n_loads: u32) -> Vec<Inst> {
    let r = |n| Reg::virt(RegClass::Int, n);
    let f = |n| Reg::virt(RegClass::Float, n);
    let mut insts = Vec::new();
    for k in 0..n_loads {
        insts.push(Inst::load(f(k * 2), r(k % 8), i64::from(k) * 8).with_region(RegionId::new(0)));
        insts.push(Inst::op(Op::FAdd, f(k * 2 + 1), &[f(k * 2), f(k * 2)]));
    }
    insts
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("weights");
    for n in [8u32, 32, 96] {
        let insts = region(n);
        let dag = Dag::new(&insts);
        for kind in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
            g.bench_with_input(
                BenchmarkId::new(kind.label(), insts.len()),
                &insts,
                |b, insts| b.iter(|| compute_weights(insts, &dag, &WeightConfig::new(kind))),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
