//! Test-first contract for `bsched-trace` observability:
//!
//! * **Heisenberg property** — tracing on vs off produces byte-identical
//!   compiled schedules, simulator metrics, and table stdout (seeded
//!   config sampling, per the `weight_props` idiom).
//! * **Conservation** — the simulator's per-load-site stall attribution
//!   sums exactly to the aggregate `load_interlock` metric on every cell
//!   of the 2-kernel verify-gate grid.
//! * **Schema** — the `--trace-json` export matches a golden snapshot
//!   (`tests/golden/trace_trfd.txt`, refresh with `UPDATE_GOLDEN=1`), and
//!   a schema-version bump makes old readers fail loudly, not silently.
//! * **Atomic reports** — under high `BSCHED_JOBS` the stderr run report
//!   is one untorn block.

use bsched_pipeline::{resolve_kernel, standard_grid, Experiment};
use bsched_trace::{points, ParsedTrace, TraceReadError, TraceReport, TRACE_SCHEMA_VERSION};
use bsched_util::Prng;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;

/// Serializes tests that toggle the process-global trace enable flag
/// (in-process `capture` / `Experiment::trace` users). Subprocess tests
/// don't need it.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn all_experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_all_experiments"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bsched-trace-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir.join(name)
}

/// Tracing is observability, not an optimization axis: with the trace
/// recorder on, every sampled grid cell must produce the byte-identical
/// compiled program and simulator metrics it produces with tracing off.
#[test]
fn tracing_on_vs_off_schedules_and_metrics_are_byte_identical() {
    let _serial = TEST_LOCK.lock().unwrap();
    let grid = standard_grid();
    let mut rng = Prng::new(0xB5ED_7ACE);
    for kernel in ["TRFD", "ARC2D"] {
        let program = resolve_kernel(kernel).expect("kernel resolves");
        // Seeded sample keeps the debug-profile runtime modest while
        // still crossing schedulers and optimization combinations.
        for _ in 0..4 {
            let cfg = grid[rng.index(grid.len())];
            let build = |traced: bool| {
                Experiment::builder()
                    .program(kernel, program.clone())
                    .compile_options(cfg.options())
                    .trace(traced)
                    .build()
                    .expect("session builds")
            };
            let off = build(false).run().expect("untraced run");
            let on = build(true).run().expect("traced run");
            assert_eq!(
                format!("{:?}", off.metrics),
                format!("{:?}", on.metrics),
                "{kernel}/{:?} {}: tracing changed simulator metrics",
                cfg.scheduler,
                cfg.kind.label()
            );
            let off_prog = format!("{:?}", build(false).compile().expect("compiles").program);
            let on_prog = format!("{:?}", build(true).compile().expect("compiles").program);
            assert_eq!(
                off_prog,
                on_prog,
                "{kernel}/{:?} {}: tracing changed the compiled schedule",
                cfg.scheduler,
                cfg.kind.label()
            );
        }
    }
    bsched_trace::clear();
}

/// The attribution conservation law: per-site `interlock + mshr_stall`
/// summed over every `sim.load_site` event equals the simulator's
/// aggregate `load_interlock` — on every cell of the ARC2D,TRFD ×
/// 15-config verify-gate grid, exactly, in u64 arithmetic.
#[test]
fn load_interlock_attribution_is_conserved_across_the_grid() {
    let _serial = TEST_LOCK.lock().unwrap();
    for kernel in ["ARC2D", "TRFD"] {
        let program = resolve_kernel(kernel).expect("kernel resolves");
        for cfg in standard_grid() {
            let session = Experiment::builder()
                .program(kernel, program.clone())
                .compile_options(cfg.options())
                .build()
                .expect("session builds");
            let (run, events) = bsched_trace::capture(|| session.run().expect("cell runs"));
            let cell = format!("{kernel}/{:?} {}", cfg.scheduler, cfg.kind.label());
            let attributed: u64 = events
                .iter()
                .filter(|e| e.id == points::SIM_LOAD_SITE)
                .map(|e| {
                    e.arg("interlock").expect("interlock arg")
                        + e.arg("mshr_stall").expect("mshr_stall arg")
                })
                .sum();
            assert_eq!(
                attributed, run.metrics.load_interlock,
                "{cell}: per-site attribution does not sum to the aggregate"
            );
            // The sim.run span must report the same aggregate the
            // metrics carry — one simulated run per cell.
            let runs: Vec<_> = events.iter().filter(|e| e.id == points::SIM_RUN).collect();
            assert_eq!(runs.len(), 1, "{cell}: expected exactly one sim.run span");
            assert_eq!(
                runs[0].arg("load_interlock"),
                Some(run.metrics.load_interlock),
                "{cell}: sim.run span disagrees with metrics"
            );
        }
    }
}

/// `--trace-json` is a stable, versioned contract: the normalized event
/// stream for the single-threaded TRFD grid matches a golden snapshot.
#[test]
fn trace_json_export_matches_golden_snapshot() {
    let root = workspace_root();
    let trace_path = temp_path("golden_probe.json");
    let out = all_experiments()
        .args(["--kernels", "TRFD", "--trace-json"])
        .arg(&trace_path)
        .env("BSCHED_JOBS", "1")
        .env("BSCHED_NO_CACHE", "1")
        .current_dir(&root)
        .output()
        .expect("all_experiments spawns");
    assert!(
        out.status.success(),
        "traced run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let parsed = ParsedTrace::parse(&text).expect("current reader parses current schema");
    let lines = parsed.normalized().to_lines();

    let golden = root.join("tests/golden/trace_trfd.txt");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::write(&golden, &lines).expect("golden refreshes");
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; capture it with UPDATE_GOLDEN=1 \
             cargo test -p bsched-bench --test trace_tests",
            golden.display()
        )
    });
    assert_eq!(
        lines, want,
        "normalized --trace-json stream diverged from tests/golden/trace_trfd.txt; \
         if the schema or instrumentation change is intentional, refresh with UPDATE_GOLDEN=1"
    );
}

/// Bumping the schema version must make old readers fail loudly: a
/// reader built for version N refuses version N+1 with an explicit
/// mismatch error, never a silently misread trace.
#[test]
fn schema_version_bump_fails_loudly_for_old_readers() {
    let current = TraceReport::new(Vec::new()).to_json_string();
    assert!(ParsedTrace::parse(&current).is_ok());
    let needle = format!("\"schema\":{TRACE_SCHEMA_VERSION}");
    assert!(current.contains(&needle), "export carries its version");
    let bumped = current.replace(
        &needle,
        &format!("\"schema\":{}", TRACE_SCHEMA_VERSION + 1),
    );
    match ParsedTrace::parse(&bumped) {
        Err(TraceReadError::SchemaMismatch { found, expected }) => {
            assert_eq!(found, u64::from(TRACE_SCHEMA_VERSION) + 1);
            assert_eq!(expected, TRACE_SCHEMA_VERSION);
            let msg = TraceReadError::SchemaMismatch { found, expected }.to_string();
            assert!(
                msg.contains("refusing to parse"),
                "mismatch must be loud: {msg}"
            );
        }
        other => panic!("bumped schema must be rejected, got {other:?}"),
    }
}

/// Tracing must not perturb the deliverable: stdout of a traced run is
/// byte-identical to an untraced one.
#[test]
fn tracing_flags_leave_table_stdout_byte_identical() {
    let root = workspace_root();
    let run = |extra: &[&str]| {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .args(extra)
            .env("BSCHED_JOBS", "2")
            .env("BSCHED_NO_CACHE", "1")
            .current_dir(&root)
            .output()
            .expect("all_experiments spawns");
        assert!(
            out.status.success(),
            "run {extra:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let plain = run(&[]);
    let json_path = temp_path("stdout_probe.json");
    let traced = run(&[
        "--trace-summary",
        "--trace-json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(
        plain, traced,
        "tracing flags changed table stdout — observability must be stdout-invisible"
    );
}

/// The run report (and trace summary) reach stderr as one atomic write:
/// under high `BSCHED_JOBS` every stderr line still starts with a known
/// report prefix — no torn or interleaved lines.
#[test]
fn run_report_is_not_torn_under_parallel_jobs() {
    let root = workspace_root();
    let out = all_experiments()
        .args(["--kernels", "ARC2D,TRFD", "--trace-summary"])
        .env("BSCHED_JOBS", "8")
        .env("BSCHED_NO_CACHE", "1")
        .current_dir(&root)
        .output()
        .expect("all_experiments spawns");
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).expect("stderr is UTF-8");
    let cells_lines = err.lines().filter(|l| l.starts_with("cells: ")).count();
    assert_eq!(cells_lines, 1, "exactly one untorn cells: line\n{err}");
    let report_headers = err
        .lines()
        .filter(|l| *l == "── bsched-harness run report ──")
        .count();
    assert_eq!(report_headers, 1, "exactly one report header\n{err}");
    // Every line must match a known report/summary shape — a torn write
    // would leave a fragment matching none of these.
    let known = |l: &str| {
        l.is_empty()
            || l.starts_with("── ")
            || l.starts_with("cells: ")
            || l.starts_with("verification: ")
            || l.starts_with("engine: ")
            || l.starts_with("pool: ")
            || l.starts_with("dag-analysis cache: ")
            || l == "slowest cells:"
            || l.starts_with("  ")
            || l.starts_with("wrote ")
            || l.starts_with("passes ")
            || l.starts_with("scheduler: ")
            || l.starts_with("load sites: ")
            || l.starts_with("cells traced: ")
            || l.starts_with("violations traced: ")
    };
    for line in err.lines() {
        assert!(known(line), "unrecognized (torn?) stderr line: {line:?}\n{err}");
    }
}

/// Warm-cache property at the CLI level: tracing flags are not part of
/// the cell cache key, so a cache populated by an untraced run is fully
/// hit by a traced one — and the tables still agree byte-for-byte.
#[test]
fn tracing_flags_leave_cache_keys_unchanged() {
    let root = workspace_root();
    let cache = temp_path("warm_cache");
    let run = |extra: &[&str]| {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .args(extra)
            .env("BSCHED_JOBS", "2")
            .env("BSCHED_CACHE_DIR", &cache)
            .current_dir(&root)
            .output()
            .expect("all_experiments spawns");
        assert!(
            out.status.success(),
            "run {extra:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (out.stdout, String::from_utf8(out.stderr).expect("UTF-8"))
    };
    let (cold_stdout, cold_stderr) = run(&[]);
    assert!(
        cold_stderr.contains("15 executed"),
        "cold run must execute the grid:\n{cold_stderr}"
    );
    let chrome_path = temp_path("warm_probe.chrome.json");
    let (warm_stdout, warm_stderr) = run(&[
        "--trace-summary",
        "--trace-chrome",
        chrome_path.to_str().unwrap(),
    ]);
    assert!(
        warm_stderr.contains("15 disk hits") && warm_stderr.contains("0 executed"),
        "traced warm run must hit the cache populated without tracing:\n{warm_stderr}"
    );
    assert_eq!(cold_stdout, warm_stdout, "cache hits must reproduce the table");
}
