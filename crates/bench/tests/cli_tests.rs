//! CLI-contract tests for `all_experiments`, `optimality`, and
//! `machines`: argument validation must fail fast (exit code 2) with
//! actionable messages, before any cell executes.

use std::process::Command;

fn all_experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_all_experiments"))
}

fn optimality() -> Command {
    Command::new(env!("CARGO_BIN_EXE_optimality"))
}

fn machines() -> Command {
    Command::new(env!("CARGO_BIN_EXE_machines"))
}

#[test]
fn empty_kernels_value_is_rejected_with_the_valid_choices() {
    for arg in ["--kernels=", "--kernels= "] {
        let out = all_experiments().arg(arg).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{arg:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("at least one kernel name"),
            "{arg:?}: {err}"
        );
        assert!(err.contains("TRFD"), "{arg:?} must list valid kernels: {err}");
        assert!(out.stdout.is_empty(), "{arg:?} must not start the grid");
    }
    // Space-separated form with an empty value.
    let out = all_experiments().args(["--kernels", ""]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one kernel name"));
}

#[test]
fn missing_kernels_value_is_rejected() {
    let out = all_experiments().arg("--kernels").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--kernels"));
}

#[test]
fn unknown_kernel_names_are_rejected() {
    for args in [vec!["--kernels", "nonesuch"], vec!["--kernels=TRFD,nonesuch"]] {
        let out = all_experiments().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("nonesuch"), "{args:?}: {err}");
        assert!(err.contains("TRFD"), "{args:?} must list valid kernels: {err}");
    }
}

#[test]
fn bad_fuzz_values_are_rejected() {
    for args in [vec!["--fuzz", "banana"], vec!["--fuzz-seed=xyz"]] {
        let out = all_experiments().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn unwritable_trace_paths_are_rejected_before_any_cell_runs() {
    for flag in ["--trace-json", "--trace-chrome"] {
        let bad = "/nonexistent-bsched-dir/trace.json";
        for args in [vec![flag, bad], vec![&format!("{flag}={bad}")[..]]] {
            let out = all_experiments().args(&args).output().unwrap();
            assert_eq!(out.status.code(), Some(2), "{args:?}");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(err.contains("cannot write"), "{args:?}: {err}");
            assert!(err.contains(flag), "{args:?} must name the flag: {err}");
            assert!(out.stdout.is_empty(), "{args:?} must not start the grid");
        }
    }
}

#[test]
fn missing_trace_path_values_are_rejected() {
    for flag in ["--trace-json", "--trace-chrome"] {
        let out = all_experiments().arg(flag).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag}");
        assert!(String::from_utf8_lossy(&out.stderr).contains(flag));
    }
}

#[test]
fn invalid_bsched_jobs_fails_loudly_instead_of_degrading() {
    for bad in ["32x", "abc", "0", "-3", ""] {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .env("BSCHED_JOBS", bad)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "BSCHED_JOBS={bad:?} must exit 2, not fall back silently"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid BSCHED_JOBS"), "{bad:?}: {err}");
        assert!(
            err.contains("positive integer"),
            "{bad:?} must say what a valid value is: {err}"
        );
        assert!(out.stdout.is_empty(), "{bad:?} must not start the grid");
    }
    // A valid value still works end to end.
    let out = all_experiments()
        .args(["--kernels", "TRFD"])
        .env("BSCHED_JOBS", "2")
        .env("BSCHED_NO_CACHE", "1")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "BSCHED_JOBS=2 must run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn empty_bsched_cache_dir_fails_loudly_instead_of_caching_nowhere() {
    for bad in ["", "   "] {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .env("BSCHED_CACHE_DIR", bad)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "BSCHED_CACHE_DIR={bad:?} must exit 2, not fall back silently"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid BSCHED_CACHE_DIR"), "{bad:?}: {err}");
        assert!(
            err.contains("unset the variable"),
            "{bad:?} must tell the user the remedy: {err}"
        );
        assert!(out.stdout.is_empty(), "{bad:?} must not start the grid");
    }
}

#[test]
fn unknown_engine_names_are_rejected_with_the_valid_choices() {
    for args in [vec!["--engine", "bogus"], vec!["--engine=bogus"]] {
        let out = all_experiments().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("bogus"), "{args:?}: {err}");
        assert!(
            err.contains("interpret") && err.contains("block"),
            "{args:?} must list valid engines: {err}"
        );
        assert!(out.stdout.is_empty(), "{args:?} must not start the grid");
    }
    let out = all_experiments().arg("--engine").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--engine"));
}

#[test]
fn invalid_bsched_sim_engine_fails_loudly_instead_of_degrading() {
    for bad in ["bogus", "interpreter9000", ""] {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .env("BSCHED_SIM_ENGINE", bad)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "BSCHED_SIM_ENGINE={bad:?} must exit 2, not fall back silently"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid BSCHED_SIM_ENGINE"), "{bad:?}: {err}");
        assert!(
            err.contains("interpret") && err.contains("block"),
            "{bad:?} must list valid engines: {err}"
        );
        assert!(out.stdout.is_empty(), "{bad:?} must not start the grid");
    }
}

#[test]
fn invalid_sample_specs_are_rejected_with_the_valid_format() {
    for arg in ["--sample=bogus", "--sample=k=0", "--sample=interval=0", "--sample="] {
        let out = all_experiments().arg(arg).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{arg:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--sample"), "{arg:?} must name the flag: {err}");
        assert!(
            err.contains("comma-separated k=") && err.contains("interval="),
            "{arg:?} must list the valid spec: {err}"
        );
        assert!(out.stdout.is_empty(), "{arg:?} must not start the grid");
    }
}

#[test]
fn invalid_bsched_sample_fails_loudly_instead_of_degrading() {
    for bad in ["nope", "k=0", "reps=0", "k=banana"] {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .env("BSCHED_SAMPLE", bad)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "BSCHED_SAMPLE={bad:?} must exit 2, not fall back to exact mode silently"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("invalid BSCHED_SAMPLE"), "{bad:?}: {err}");
        assert!(
            err.contains("comma-separated k=") && err.contains("interval="),
            "{bad:?} must list the valid spec: {err}"
        );
        assert!(out.stdout.is_empty(), "{bad:?} must not start the grid");
    }
}

/// The mode axis is execution-only and *not* metrics-invariant, so
/// sampled runs must live entirely outside the exact-result cache: a
/// warm exact cache must not answer a sampled run, and a sampled run
/// must not poison the cache for the exact run that follows it.
#[test]
fn sampled_runs_never_touch_the_exact_result_cache() {
    let cache = std::env::temp_dir().join(format!("bsched-sample-cache-{}", std::process::id()));
    let run = |extra: &[&str]| {
        let mut cmd = all_experiments();
        cmd.args(["--kernels", "TRFD"])
            .args(extra)
            .env("BSCHED_JOBS", "2")
            .env("BSCHED_CACHE_DIR", &cache);
        cmd.output().unwrap()
    };
    let warm = run(&[]);
    let sampled = run(&["--sample"]);
    let exact_again = run(&[]);
    std::fs::remove_dir_all(&cache).ok();
    for (name, out) in [("warm", &warm), ("sampled", &sampled), ("exact-again", &exact_again)] {
        assert!(
            out.status.success(),
            "{name} run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let err = String::from_utf8_lossy(&sampled.stderr);
    assert!(
        err.contains("0 memory hits, 0 disk hits, 15 executed (0% cache hits)"),
        "the sampled run must not be answered from the exact-warmed cache: {err}"
    );
    assert!(err.contains("sampling: "), "sampled report section missing: {err}");
    assert!(err.contains("mode: sampled("), "sampled mode line missing: {err}");
    // The sampled run left no droppings: the follow-up exact run is
    // answered entirely from the original warm entries and prints the
    // same bytes.
    let err = String::from_utf8_lossy(&exact_again.stderr);
    assert!(
        err.contains(" 0 executed (100% cache hits)"),
        "the exact re-run must still fully hit the warm cache: {err}"
    );
    assert_eq!(
        warm.stdout, exact_again.stdout,
        "the sampled run must not alter cached exact results"
    );
    assert_ne!(
        sampled.stdout, warm.stdout,
        "sanity: the sampled table is an estimate, not a cache readback"
    );
}

/// The engine axis is execution-only: it is not part of any cache key,
/// so a cache warmed under one engine must be answered entirely from
/// disk under the other — and print the same bytes.
#[test]
fn cache_warmed_under_one_engine_fully_hits_under_the_other() {
    let cache = std::env::temp_dir().join(format!("bsched-engine-cache-{}", std::process::id()));
    let run = |engine: &str| {
        all_experiments()
            .args(["--kernels", "TRFD", "--engine", engine])
            .env("BSCHED_JOBS", "2")
            .env("BSCHED_CACHE_DIR", &cache)
            .output()
            .unwrap()
    };
    let warm = run("interpret");
    let reuse = run("block");
    std::fs::remove_dir_all(&cache).ok();
    assert!(warm.status.success(), "{}", String::from_utf8_lossy(&warm.stderr));
    assert!(reuse.status.success(), "{}", String::from_utf8_lossy(&reuse.stderr));
    assert_eq!(
        warm.stdout, reuse.stdout,
        "engines must print byte-identical tables"
    );
    let err = String::from_utf8_lossy(&reuse.stderr);
    assert!(
        err.contains(" 0 executed (100% cache hits)"),
        "the block run must be answered entirely from the interpret-warmed cache: {err}"
    );
}

#[test]
fn trace_summary_composes_with_verify_and_kernels() {
    let out = all_experiments()
        .args(["--kernels", "TRFD", "--verify", "--trace-summary"])
        .env("BSCHED_JOBS", "2")
        .env("BSCHED_NO_CACHE", "1")
        .current_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "verified traced run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("verification:") && err.contains("0 violations"),
        "--verify report missing: {err}"
    );
    assert!(
        err.contains("── bsched-trace summary"),
        "--trace-summary section missing: {err}"
    );
}

#[test]
fn unknown_machine_specs_are_rejected_with_the_valid_choices() {
    for args in [vec!["--machine", "nonesuch"], vec!["--machine=nonesuch"]] {
        let out = all_experiments().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--machine"), "{args:?} must name the flag: {err}");
        assert!(err.contains("nonesuch"), "{args:?}: {err}");
        assert!(
            err.contains("alpha21164") && err.contains("wide4"),
            "{args:?} must list valid machines: {err}"
        );
        assert!(out.stdout.is_empty(), "{args:?} must not start the grid");
    }
    let out = all_experiments().arg("--machine").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--machine"));
}

#[test]
fn malformed_machine_modifiers_are_rejected_with_the_valid_grammar() {
    for (arg, needle) in [
        ("--machine=alpha21164+bp=bogus", "valid predictors"),
        ("--machine=alpha21164+iw=0", "issue width"),
        ("--machine=alpha21164+mshrs=0", "at least one MSHR"),
        ("--machine=alpha21164+ports=9", "memory ports"),
        ("--machine=alpha21164+frob=1", "unknown key \"frob\""),
    ] {
        let out = all_experiments().arg(arg).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{arg:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{arg:?}: {err}");
        assert!(
            err.contains("NAME[+bp="),
            "{arg:?} must show the spec grammar: {err}"
        );
        assert!(out.stdout.is_empty(), "{arg:?} must not start the grid");
    }
}

#[test]
fn invalid_bsched_machine_fails_loudly_instead_of_degrading() {
    for bad in ["nonesuch", "alpha21164+ports=9", "alpha21164+mshrs=0"] {
        let out = all_experiments()
            .args(["--kernels", "TRFD"])
            .env("BSCHED_MACHINE", bad)
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "BSCHED_MACHINE={bad:?} must exit 2, not fall back to the default machine"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("BSCHED_MACHINE"), "{bad:?}: {err}");
        assert!(out.stdout.is_empty(), "{bad:?} must not start the grid");
    }
}

/// `--machine` beats `BSCHED_MACHINE`, and both re-target the grid to
/// the same bytes; a valid override runs end to end.
#[test]
fn machine_flag_beats_the_environment_and_retargets_the_grid() {
    let run = |args: &[&str], env_machine: Option<&str>| {
        let mut cmd = all_experiments();
        cmd.args(["--kernels", "TRFD"])
            .args(args)
            .env("BSCHED_JOBS", "2")
            .env("BSCHED_NO_CACHE", "1");
        if let Some(m) = env_machine {
            cmd.env("BSCHED_MACHINE", m);
        }
        cmd.output().unwrap()
    };
    let default = run(&[], None);
    let flagged = run(&["--machine", "wide4"], None);
    let enved = run(&[], Some("wide4"));
    // The flag wins even over an invalid environment value.
    let beats = run(&["--machine", "wide4"], Some("nonesuch"));
    for (name, out) in [
        ("default", &default),
        ("flagged", &flagged),
        ("enved", &enved),
        ("beats", &beats),
    ] {
        assert!(
            out.status.success(),
            "{name} run failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    assert_eq!(flagged.stdout, enved.stdout, "flag and env must agree");
    assert_eq!(flagged.stdout, beats.stdout, "the flag must beat the env");
    assert_ne!(
        default.stdout, flagged.stdout,
        "wide4 must actually change the table"
    );
    let err = String::from_utf8_lossy(&flagged.stderr);
    assert!(err.contains("machine: wide4"), "stderr must name the machine: {err}");
}

#[test]
fn machines_binary_rejects_bad_specs_kernels_and_flags() {
    for (args, needle) in [
        (vec!["--machines", "nonesuch"], "valid machines"),
        (vec!["--machines=alpha21164+bp=bogus"], "valid predictors"),
        (vec!["--machines="], "at least one machine spec"),
        (vec!["--kernels", "nonesuch"], "TRFD"),
        (vec!["--engine", "bogus"], "interpret"),
        (vec!["--frobnicate"], "--frobnicate"),
    ] {
        let out = machines().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(out.stdout.is_empty(), "{args:?} must not start the grid");
    }
}

#[test]
fn machines_check_fails_on_missing_or_disjoint_baselines() {
    let out = machines()
        .args(["--kernels", "TRFD", "--machines", "alpha21164", "--check"])
        .arg("/nonexistent-bsched-dir/baseline.json")
        .env("BSCHED_NO_CACHE", "1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("could not read baseline"));
}

#[test]
fn optimality_rejects_invalid_budgets_before_searching() {
    for args in [vec!["--budget", "banana"], vec!["--budget=-5"], vec!["--budget=1.5"]] {
        let out = optimality().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--budget"), "{args:?} must name the flag: {err}");
        assert!(
            err.contains("search nodes"),
            "{args:?} must say what a valid value is: {err}"
        );
        assert!(out.stdout.is_empty(), "{args:?} must not start compiling");
    }
    let out = optimality().arg("--budget").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget"));
}

#[test]
fn optimality_rejects_unknown_schedulers_with_the_valid_choices() {
    for args in [vec!["--schedulers", "bogus"], vec!["--schedulers=TS,bogus"], vec!["--schedulers="]] {
        let out = optimality().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("TS") && err.contains("BS") && err.contains("BS+LA"),
            "{args:?} must list the valid schedulers: {err}"
        );
        assert!(out.stdout.is_empty(), "{args:?} must not start compiling");
    }
}

#[test]
fn optimality_rejects_unknown_kernels_and_flags() {
    let out = optimality().args(["--kernels", "nonesuch"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("nonesuch"), "{err}");
    assert!(err.contains("TRFD"), "must list valid kernels: {err}");

    let out = optimality().arg("--frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--frobnicate"));
}
