//! Golden-snapshot tests over the table/figure binaries' stdout.
//!
//! The binaries' stdout is the paper reproduction's deliverable and is
//! deterministic by construction (run reports and diagnostics go to
//! stderr). These tests pin the exact bytes: any change — an intended
//! formatting tweak or an accidental numeric drift — shows up as a
//! diff against `tests/golden/<binary>.txt` at the workspace root.
//!
//! Every binary runs twice, once per simulation engine
//! (`BSCHED_SIM_ENGINE=interpret` and `=block`), with the cache
//! disabled so both engines genuinely execute; both runs must match
//! the same snapshot byte for byte.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bsched-bench --test golden_stdout
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run_under(name: &str, exe: &str, root: &PathBuf, engine: &str) -> String {
    let out = Command::new(exe)
        .current_dir(root)
        .env("BSCHED_SIM_ENGINE", engine)
        .env("BSCHED_NO_CACHE", "1")
        .output()
        .unwrap_or_else(|e| panic!("{name} failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{name} under {engine} exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn check(name: &str, exe: &str) {
    let root = workspace_root();
    let golden = root.join("tests/golden").join(format!("{name}.txt"));
    let stdout = run_under(name, exe, &root, "interpret");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &stdout).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; capture it with UPDATE_GOLDEN=1 \
             cargo test -p bsched-bench --test golden_stdout",
            golden.display()
        )
    });
    assert_eq!(
        stdout, want,
        "{name} stdout diverged from tests/golden/{name}.txt; if the \
         change is intentional, refresh with UPDATE_GOLDEN=1"
    );
    let block = run_under(name, exe, &root, "block");
    assert_eq!(
        block, want,
        "{name} under the block-compiled engine diverged from \
         tests/golden/{name}.txt — the engines must be byte-identical"
    );
}

macro_rules! golden {
    ($name:ident) => {
        #[test]
        fn $name() {
            check(
                stringify!($name),
                env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
            );
        }
    };
}

golden!(table4);
golden!(table5);
golden!(table6);
golden!(table7);
golden!(table8);
golden!(table9);
golden!(sec55);
golden!(superscalar);

/// Like [`run_under`] with explicit extra args and env (for the
/// sampled-mode snapshots below).
fn run_with(name: &str, exe: &str, root: &PathBuf, args: &[&str], envs: &[(&str, &str)]) -> String {
    let mut cmd = Command::new(exe);
    cmd.current_dir(root).args(args).env("BSCHED_NO_CACHE", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("{name} failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn check_against(name: &str, root: &Path, stdout: &str) -> String {
    let golden = root.join("tests/golden").join(format!("{name}.txt"));
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, stdout).unwrap();
        return stdout.to_string();
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; capture it with UPDATE_GOLDEN=1 \
             cargo test -p bsched-bench --test golden_stdout",
            golden.display()
        )
    });
    assert_eq!(
        stdout, &want,
        "{name} stdout diverged from tests/golden/{name}.txt; if the \
         change is intentional, refresh with UPDATE_GOLDEN=1"
    );
    want
}

/// Sampled estimates are deterministic (seeded clustering, deterministic
/// replay), so sampled stdout is snapshot-able like everything else —
/// and must not depend on whether the mode came from the flag or the
/// environment, or on which exact engine backs the plan build.
#[test]
fn all_experiments_sampled() {
    let root = workspace_root();
    let exe = env!("CARGO_BIN_EXE_all_experiments");
    let args = ["--sample", "--kernels", "TRFD,ARC2D"];
    let flagged = run_with("all_experiments_sampled", exe, &root, &args, &[]);
    let want = check_against("all_experiments_sampled", &root, &flagged);
    let from_env = run_with(
        "all_experiments_sampled (env)",
        exe,
        &root,
        &["--kernels", "TRFD,ARC2D"],
        &[("BSCHED_SAMPLE", "1")],
    );
    assert_eq!(from_env, want, "BSCHED_SAMPLE=1 must match --sample byte for byte");
    let interp = run_with(
        "all_experiments_sampled (interpret)",
        exe,
        &root,
        &args,
        &[("BSCHED_SIM_ENGINE", "interpret")],
    );
    assert_eq!(interp, want, "sampled stdout must not depend on the exact engine");
}

/// The optimality table never simulates — its numbers come from the
/// compiler's audited schedules and the node-budgeted exact search, so
/// stdout is deterministic across machines and build profiles. A small
/// kernel and budget keep the debug-build search fast while still
/// exercising both the proven and the budget-fallback paths.
#[test]
fn optimality() {
    let root = workspace_root();
    let exe = env!("CARGO_BIN_EXE_optimality");
    let args = ["--kernels", "TRFD", "--budget", "500"];
    let stdout = run_with("optimality", exe, &root, &args, &[]);
    check_against("optimality", &root, &stdout);
    // The scheduler filter subsets the same bytes: every BS-arm row of
    // the full table, and nothing else.
    let bs_only = run_with(
        "optimality (BS only)",
        exe,
        &root,
        &["--kernels", "TRFD", "--budget", "500", "--schedulers", "BS"],
        &[],
    );
    for line in bs_only.lines().skip(1) {
        assert!(
            stdout.contains(line),
            "filtered row missing from the full table: {line}"
        );
        assert!(line.contains(" BS "), "non-BS row under --schedulers BS: {line}");
    }
}

/// With sampling compiled in but *disabled*, exact stdout is pinned: the
/// mode axis must be invisible until asked for, in any spelling of
/// "off".
#[test]
fn all_experiments_exact_stdout_is_unchanged_with_sampling_disabled() {
    let root = workspace_root();
    let exe = env!("CARGO_BIN_EXE_all_experiments");
    let args = ["--kernels", "TRFD,ARC2D"];
    let plain = run_with("all_experiments_exact", exe, &root, &args, &[]);
    let want = check_against("all_experiments_exact", &root, &plain);
    for off in ["0", "off", "false", ""] {
        let disabled = run_with(
            "all_experiments_exact (disabled)",
            exe,
            &root,
            &args,
            &[("BSCHED_SAMPLE", off)],
        );
        assert_eq!(
            disabled, want,
            "BSCHED_SAMPLE={off:?} must leave exact stdout byte-identical"
        );
    }
}
