//! Golden-snapshot tests over the table/figure binaries' stdout.
//!
//! The binaries' stdout is the paper reproduction's deliverable and is
//! deterministic by construction (run reports and diagnostics go to
//! stderr). These tests pin the exact bytes: any change — an intended
//! formatting tweak or an accidental numeric drift — shows up as a
//! diff against `tests/golden/<binary>.txt` at the workspace root.
//!
//! Every binary runs twice, once per simulation engine
//! (`BSCHED_SIM_ENGINE=interpret` and `=block`), with the cache
//! disabled so both engines genuinely execute; both runs must match
//! the same snapshot byte for byte.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p bsched-bench --test golden_stdout
//! ```

use std::path::PathBuf;
use std::process::Command;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn run_under(name: &str, exe: &str, root: &PathBuf, engine: &str) -> String {
    let out = Command::new(exe)
        .current_dir(root)
        .env("BSCHED_SIM_ENGINE", engine)
        .env("BSCHED_NO_CACHE", "1")
        .output()
        .unwrap_or_else(|e| panic!("{name} failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{name} under {engine} exited with {:?}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn check(name: &str, exe: &str) {
    let root = workspace_root();
    let golden = root.join("tests/golden").join(format!("{name}.txt"));
    let stdout = run_under(name, exe, &root, "interpret");
    if std::env::var("UPDATE_GOLDEN").as_deref() == Ok("1") {
        std::fs::create_dir_all(golden.parent().unwrap()).unwrap();
        std::fs::write(&golden, &stdout).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; capture it with UPDATE_GOLDEN=1 \
             cargo test -p bsched-bench --test golden_stdout",
            golden.display()
        )
    });
    assert_eq!(
        stdout, want,
        "{name} stdout diverged from tests/golden/{name}.txt; if the \
         change is intentional, refresh with UPDATE_GOLDEN=1"
    );
    let block = run_under(name, exe, &root, "block");
    assert_eq!(
        block, want,
        "{name} under the block-compiled engine diverged from \
         tests/golden/{name}.txt — the engines must be byte-identical"
    );
}

macro_rules! golden {
    ($name:ident) => {
        #[test]
        fn $name() {
            check(
                stringify!($name),
                env!(concat!("CARGO_BIN_EXE_", stringify!($name))),
            );
        }
    };
}

golden!(table4);
golden!(table5);
golden!(table6);
golden!(table7);
golden!(table8);
golden!(table9);
golden!(sec55);
golden!(superscalar);
