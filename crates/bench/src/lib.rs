//! `bsched-bench` — shared plumbing for the table/figure regeneration
//! binaries and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bsched_ir::Program;
use bsched_pipeline::{ConfigKind, ExperimentConfig, Runner, SchedulerKind};
use bsched_sim::SimMetrics;
use bsched_workloads::all_kernels;

/// A memoizing grid runner over the 17-kernel workload.
pub struct Grid {
    programs: Vec<(String, Program)>,
    runner: Runner,
}

impl Default for Grid {
    fn default() -> Self {
        Self::new()
    }
}

impl Grid {
    /// Lowers every kernel once.
    #[must_use]
    pub fn new() -> Self {
        let programs = all_kernels()
            .iter()
            .map(|k| (k.name.to_string(), k.program()))
            .collect();
        Grid {
            programs,
            runner: Runner::new(),
        }
    }

    /// The kernel names, in paper order.
    #[must_use]
    pub fn kernel_names(&self) -> Vec<String> {
        self.programs.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Runs (memoized) one kernel under one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails — the workload is expected to compile
    /// under every configuration.
    pub fn metrics(&mut self, kernel: &str, config: ExperimentConfig) -> SimMetrics {
        let program = &self
            .programs
            .iter()
            .find(|(n, _)| n == kernel)
            .unwrap_or_else(|| panic!("unknown kernel {kernel}"))
            .1;
        self.runner
            .run(kernel, program, config)
            .unwrap_or_else(|e| panic!("{kernel} under {:?} failed: {e}", config.kind))
            .metrics
            .clone()
    }

    /// Convenience: balanced-scheduling metrics for a configuration kind.
    pub fn bs(&mut self, kernel: &str, kind: ConfigKind) -> SimMetrics {
        self.metrics(
            kernel,
            ExperimentConfig {
                scheduler: SchedulerKind::Balanced,
                kind,
            },
        )
    }

    /// Convenience: traditional-scheduling metrics for a configuration
    /// kind.
    pub fn ts(&mut self, kernel: &str, kind: ConfigKind) -> SimMetrics {
        self.metrics(
            kernel,
            ExperimentConfig {
                scheduler: SchedulerKind::Traditional,
                kind,
            },
        )
    }
}

/// Percentage decrease from `from` to `to` (positive = improvement).
#[must_use]
pub fn pct_decrease(from: u64, to: u64) -> f64 {
    if from == 0 {
        0.0
    } else {
        (from as f64 - to as f64) / from as f64
    }
}
