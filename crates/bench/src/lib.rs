//! `bsched-bench` — shared plumbing for the table/figure regeneration
//! binaries and the std-only microbenches.
//!
//! The [`Grid`] wraps the [`bsched_harness::Engine`]: every lookup is
//! answered from the engine's memoized store, and binaries call
//! [`Grid::prefetch`] up front so the whole deduplicated cell set runs
//! in parallel on the work-stealing pool (with the on-disk cache making
//! warm re-runs nearly free).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microbench;

use bsched_harness::{Engine, EngineConfig, ExperimentCell, RunReport};
use bsched_pipeline::{CompileOptions, ConfigKind, ExperimentConfig, SchedulerKind};
use bsched_sim::{MachineSpec, SimConfig, SimMetrics};

/// A harness-backed grid runner over the 17-kernel workload.
pub struct Grid {
    engine: Engine,
    machine: Option<MachineSpec>,
}

impl Default for Grid {
    fn default() -> Self {
        Self::new()
    }
}

impl Grid {
    /// Lowers every kernel once and configures the engine from the
    /// environment (`BSCHED_JOBS`, `BSCHED_NO_CACHE`, `BSCHED_CACHE_DIR`,
    /// and `BSCHED_MACHINE` — see [`Grid::with_machine`]).
    ///
    /// A malformed `BSCHED_MACHINE` reports the shared spec-grammar
    /// error and exits with status 2, like every other env knob.
    #[must_use]
    pub fn new() -> Self {
        let machine = MachineSpec::from_env()
            .unwrap_or_else(|e| bsched_util::spec::exit2("BSCHED_MACHINE", &e));
        Grid {
            engine: Engine::with_standard_kernels(EngineConfig::from_env()),
            machine,
        }
    }

    /// A grid over an explicit engine (tests use this to control the
    /// worker count and cache directory). No machine override.
    #[must_use]
    pub fn with_engine(engine: Engine) -> Self {
        Grid {
            engine,
            machine: None,
        }
    }

    /// Re-targets the grid at `machine`: every configuration that does
    /// not explicitly pick a non-default machine runs on it instead of
    /// the paper's `alpha21164`. Configurations whose options already
    /// set a custom `sim` (machine-sweep binaries like `superscalar`)
    /// keep their explicit choice.
    #[must_use]
    pub fn with_machine(mut self, machine: MachineSpec) -> Self {
        self.machine = Some(machine);
        self
    }

    /// The machine override, when one is active (from
    /// [`Grid::with_machine`] or `BSCHED_MACHINE`).
    #[must_use]
    pub fn machine(&self) -> Option<&MachineSpec> {
        self.machine.as_ref()
    }

    /// Applies the machine override to one option set: default-machine
    /// options are re-targeted, explicitly-machined options pass through.
    #[must_use]
    pub fn resolve_options(&self, o: &CompileOptions) -> CompileOptions {
        match &self.machine {
            Some(m) if o.sim == SimConfig::alpha21164() => o.with_sim(m.config()),
            _ => *o,
        }
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The kernel names, in paper order.
    #[must_use]
    pub fn kernel_names(&self) -> Vec<String> {
        self.engine.kernel_names()
    }

    /// Runs the full (kernel × configuration) product through the engine
    /// in one parallel batch. Call this before the serial table-formatting
    /// loops so every cell is computed on the pool rather than one by one.
    ///
    /// # Panics
    ///
    /// Panics if any cell fails — the workload is expected to compile
    /// under every configuration.
    pub fn prefetch(&self, configs: &[ExperimentConfig]) {
        let opts: Vec<CompileOptions> = configs.iter().map(ExperimentConfig::options).collect();
        self.prefetch_options(&opts);
    }

    /// Like [`Grid::prefetch`] for raw compile options (the §5.5 and
    /// superscalar studies build options directly).
    ///
    /// # Panics
    ///
    /// Panics if any cell fails.
    pub fn prefetch_options(&self, opts: &[CompileOptions]) {
        let mut cells = Vec::with_capacity(self.kernel_names().len() * opts.len());
        for kernel in self.kernel_names() {
            for o in opts {
                cells.push(ExperimentCell::new(&kernel, self.resolve_options(o)));
            }
        }
        self.prefetch_cells(&cells);
    }

    /// Runs an explicit cell set in one parallel batch (for studies over
    /// a kernel subset, like §5.5).
    ///
    /// # Panics
    ///
    /// Panics if any cell fails.
    pub fn prefetch_cells(&self, cells: &[ExperimentCell]) {
        self.engine
            .run(cells)
            .unwrap_or_else(|e| panic!("experiment grid failed: {e}"));
    }

    /// Runs (memoized) one kernel under one configuration.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails — the workload is expected to compile
    /// under every configuration.
    pub fn metrics(&self, kernel: &str, config: ExperimentConfig) -> SimMetrics {
        self.metrics_for(kernel, &config.options())
    }

    /// Runs (memoized) one kernel under raw compile options.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails.
    pub fn metrics_for(&self, kernel: &str, opts: &CompileOptions) -> SimMetrics {
        let cell = ExperimentCell::new(kernel, self.resolve_options(opts));
        self.engine
            .metrics(&cell)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convenience: balanced-scheduling metrics for a configuration kind.
    #[must_use]
    pub fn bs(&self, kernel: &str, kind: ConfigKind) -> SimMetrics {
        self.metrics(
            kernel,
            ExperimentConfig {
                scheduler: SchedulerKind::Balanced,
                kind,
            },
        )
    }

    /// Convenience: traditional-scheduling metrics for a configuration
    /// kind.
    #[must_use]
    pub fn ts(&self, kernel: &str, kind: ConfigKind) -> SimMetrics {
        self.metrics(
            kernel,
            ExperimentConfig {
                scheduler: SchedulerKind::Traditional,
                kind,
            },
        )
    }

    /// The engine's run report (printed to stderr by the binaries so
    /// stdout stays byte-deterministic).
    #[must_use]
    pub fn report(&self) -> RunReport {
        self.engine.report()
    }
}

/// Percentage decrease from `from` to `to` (positive = improvement).
#[must_use]
pub fn pct_decrease(from: u64, to: u64) -> f64 {
    if from == 0 {
        0.0
    } else {
        (from as f64 - to as f64) / from as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_grid() -> Grid {
        let config = EngineConfig {
            jobs: 1,
            disk_cache: false,
            ..EngineConfig::default()
        };
        Grid::with_engine(Engine::with_standard_kernels(config))
    }

    #[test]
    fn machine_override_retargets_default_options_only() {
        let wide: MachineSpec = "wide4".parse().unwrap();
        let grid = quiet_grid().with_machine(wide.clone());
        // Default-machine options follow the override.
        let o = CompileOptions::new(SchedulerKind::Balanced);
        assert_eq!(grid.resolve_options(&o).sim, wide.config());
        // Explicitly-machined options keep their choice.
        let explicit = o.with_sim(SimConfig::default().with_mshrs(1));
        assert_eq!(grid.resolve_options(&explicit).sim.mem.mshrs, 1);
        // No override: options pass through untouched.
        let plain = quiet_grid();
        assert_eq!(plain.resolve_options(&o).sim, SimConfig::alpha21164());
        assert!(plain.machine().is_none());
    }
}
