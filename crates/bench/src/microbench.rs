//! A tiny std-only microbenchmark helper for the `cargo bench` targets.
//!
//! Each target is a plain `harness = false` binary; the helper
//! auto-calibrates an iteration count so every sample runs long enough
//! to measure, takes a handful of samples, and reports the median —
//! robust against one-off scheduling noise without any external
//! dependency.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark — 11 unless overridden with
/// `BENCH_SAMPLES` (3..=501). CI's tight tracing-overhead gate runs
/// with more samples so the min estimator converges despite
/// scheduling noise.
fn samples() -> usize {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| (3..=501).contains(n))
        .unwrap_or(11)
}

/// Target wall time per sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Measurement outcome of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median wall time of one call.
    pub median: Duration,
    /// Fastest observed per-call time.
    pub min: Duration,
    /// Calls per sample after calibration.
    pub iters: u64,
}

/// Runs `f` under the calibrate/sample/median procedure and prints a
/// one-line summary (`name ... median min iters`).
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    // Calibration: time a single call, then pick an iteration count that
    // fills the target sample duration (at least one call per sample).
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let n = samples();
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        samples.push(t0.elapsed() / u32::try_from(iters).expect("iters fits in u32"));
    }
    samples.sort();
    let m = Measurement {
        median: samples[n / 2],
        min: samples[0],
        iters,
    };
    println!(
        "{name:<48} {:>12}  (min {}, {} iters/sample)",
        fmt_duration(m.median),
        fmt_duration(m.min),
        m.iters
    );
    m
}

/// Formats a duration with an adaptive unit.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("noop", || 1 + 1);
        assert!(m.iters >= 1);
        assert!(m.min <= m.median);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(123)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(123)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(123)).ends_with("s"));
    }
}
