//! Regenerates the paper's Table 3: processor latencies.

use bsched_ir::opcode::latency;
use bsched_pipeline::Table;

fn main() {
    let mut t = Table::new(
        "Table 3: Processor latencies",
        &["Instruction type", "Latency (cycles)"],
    );
    t.row(vec!["integer op".into(), latency::INT_OP.to_string()]);
    t.row(vec![
        "integer multiply".into(),
        latency::INT_MUL.to_string(),
    ]);
    t.row(vec!["load (L1 hit)".into(), latency::LOAD_HIT.to_string()]);
    t.row(vec!["store".into(), latency::STORE.to_string()]);
    t.row(vec![
        "FP op (excluding divide)".into(),
        latency::FP_OP.to_string(),
    ]);
    t.row(vec![
        "FP div (23 bit fraction)".into(),
        latency::FP_DIV_SINGLE.to_string(),
    ]);
    t.row(vec![
        "FP div (53 bit fraction)".into(),
        latency::FP_DIV_DOUBLE.to_string(),
    ]);
    t.row(vec!["branch".into(), latency::BRANCH.to_string()]);
    t.row(vec![
        "max load (memory)".into(),
        latency::MAX_LOAD.to_string(),
    ]);
    println!("{t}");
}
