//! Regenerates the paper's Table 2: memory hierarchy parameters.

use bsched_mem::MemConfig;
use bsched_pipeline::Table;

fn main() {
    let c = MemConfig::alpha21164();
    let mut t = Table::new(
        "Table 2: Memory hierarchy parameters (Alpha 21164-like)",
        &[
            "Level",
            "Size",
            "Line",
            "Assoc",
            "Load-use latency (cycles)",
        ],
    );
    let row = |name: &str, cc: bsched_mem::CacheConfig| {
        vec![
            name.to_string(),
            format!("{} KB", cc.size / 1024),
            format!("{} B", cc.line),
            format!("{}-way", cc.assoc),
            cc.latency.to_string(),
        ]
    };
    t.row(row("L1 data (lockup-free)", c.l1d));
    t.row(row("L1 instruction", c.icache));
    t.row(row("L2 unified", c.l2));
    if let Some(l3) = c.l3 {
        t.row(row("L3 board", l3));
    }
    t.row(vec![
        "Main memory".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        c.mem_latency.to_string(),
    ]);
    println!("{t}");
    println!("MSHRs (MAF entries): {}", c.mshrs);
    println!(
        "Data TLB: {} entries, {} B pages, {}-cycle refill",
        c.dtb_entries, c.page_size, c.tlb_miss_penalty
    );
    println!("Instruction TLB: {} entries", c.itb_entries);
}
