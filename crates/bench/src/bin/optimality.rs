//! The optimality-bound table: how close each heuristic scheduler comes
//! to the exact branch-and-bound optimum, kernel by kernel.
//!
//! For every kernel × optimization combination of the standard grid the
//! binary compiles the program twice per row: once under the heuristic
//! arm being judged and once under [`SchedulerKind::Exact`] with the
//! chosen node budget. Both compiles run identical pre-schedule passes,
//! so their regions align instruction for instruction; every heuristic
//! order is then costed under the plain balanced weight model — the
//! exact issue-span clock the search minimizes — and reported as a
//! percentage of the exact bound (100 = the heuristic matched the
//! proven optimum on every region; lower = headroom left on the table).
//! Every audited region, heuristic and exact alike, passes the
//! `bsched-verify` legality checker; any violation exits 1.
//!
//! Stdout is deterministic byte for byte: the budget's unit is search
//! nodes (never wall clock), so the table is machine-independent and
//! snapshot-tested like the paper tables.
//!
//! Flags:
//!
//! * `--kernels NAME,...` — restrict to a kernel subset (exit 2 with
//!   the valid choices on unknown names);
//! * `--budget N` — exact-search node budget per region (default
//!   `bsched_core::DEFAULT_EXACT_BUDGET`; exit 2 on non-numbers);
//! * `--schedulers LIST` — restrict the judged arms to a subset of
//!   `TS,BS,BS+LA` (exit 2 with the valid choices on unknown names);
//! * `--csv` — also write `results/optimality.csv`;
//! * `--json PATH` — write per-kernel search-cost numbers (regions,
//!   proven, nodes, costs) as JSON;
//! * `--check BASELINE` — compare search cost against a recorded JSON:
//!   the proven fraction must not fall below, nor the node count rise
//!   above, `--check-ratio R` (default 0.9) of the baseline; exit 1 on
//!   regression.

use bsched_core::{
    compute_weights, schedule_cost, SchedulerKind, WeightConfig,
};
use bsched_ir::Dag;
use bsched_pipeline::{resolve_kernel, standard_grid, Experiment, ExperimentConfig};
use bsched_verify::validate_region_schedule;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One judged row: a heuristic arm on one kernel × combo, against the
/// exact bound of the same combo.
struct Row {
    kernel: String,
    config: String,
    arm: &'static str,
    arm_cost: u64,
    exact: bsched_core::ExactStats,
}

impl Row {
    fn pct(&self) -> f64 {
        if self.arm_cost == 0 {
            return 100.0;
        }
        100.0 * self.exact.exact_cost as f64 / self.arm_cost as f64
    }
}

/// The effective heuristic arm of a grid entry: locality analysis
/// promotes balanced scheduling to its selective variant, so the LA
/// rows judge `BS+LA` rather than plain `BS`.
fn arm_label(cfg: &ExperimentConfig) -> &'static str {
    if cfg.scheduler == SchedulerKind::Balanced && cfg.options().locality {
        "BS+LA"
    } else {
        cfg.scheduler.label()
    }
}

const VALID_ARMS: [&str; 3] = ["TS", "BS", "BS+LA"];

struct Cli {
    csv: bool,
    budget: u64,
    filter: Option<Vec<String>>,
    arms: Option<Vec<String>>,
    json: Option<String>,
    check: Option<String>,
    check_ratio: f64,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        csv: false,
        budget: bsched_core::DEFAULT_EXACT_BUDGET,
        filter: None,
        arms: None,
        json: None,
        check: None,
        check_ratio: 0.9,
    };
    let value = |i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let number = |v: &str, flag: &str| -> u64 {
        v.trim().parse().unwrap_or_else(|_| {
            eprintln!("{flag} requires a non-negative number of search nodes, got {v:?}");
            std::process::exit(2);
        })
    };
    let kernel_list = |raw: &str| -> Vec<String> {
        if raw.trim().is_empty() {
            eprintln!(
                "--kernels requires at least one kernel name; valid kernels: {}",
                bsched_workloads::all_kernels()
                    .iter()
                    .map(|k| k.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
        raw.split(',').map(str::to_string).collect()
    };
    let arm_list = |raw: &str| -> Vec<String> {
        let arms: Vec<String> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        for a in &arms {
            if !VALID_ARMS.contains(&a.as_str()) {
                eprintln!(
                    "--schedulers: unknown scheduler {a:?}; valid schedulers: {}",
                    VALID_ARMS.join(", ")
                );
                std::process::exit(2);
            }
        }
        if arms.is_empty() {
            eprintln!(
                "--schedulers requires at least one scheduler; valid schedulers: {}",
                VALID_ARMS.join(", ")
            );
            std::process::exit(2);
        }
        arms
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--csv" {
            cli.csv = true;
        } else if a == "--budget" {
            cli.budget = number(&value(i, "--budget"), "--budget");
            i += 1;
        } else if let Some(v) = a.strip_prefix("--budget=") {
            cli.budget = number(v, "--budget");
        } else if a == "--kernels" {
            cli.filter = Some(kernel_list(&value(i, "--kernels")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--kernels=") {
            cli.filter = Some(kernel_list(v));
        } else if a == "--schedulers" {
            cli.arms = Some(arm_list(&value(i, "--schedulers")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--schedulers=") {
            cli.arms = Some(arm_list(v));
        } else if a == "--json" {
            cli.json = Some(value(i, "--json"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--json=") {
            cli.json = Some(v.to_string());
        } else if a == "--check" {
            cli.check = Some(value(i, "--check"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--check=") {
            cli.check = Some(v.to_string());
        } else if a == "--check-ratio" || a.starts_with("--check-ratio=") {
            let v = a
                .strip_prefix("--check-ratio=")
                .map(str::to_string)
                .unwrap_or_else(|| {
                    let v = value(i, "--check-ratio");
                    i += 1;
                    v
                });
            let r: f64 = v.parse().unwrap_or(f64::NAN);
            if !(r > 0.0 && r <= 1.0) {
                eprintln!("--check-ratio requires a number in (0, 1], got {v:?}");
                std::process::exit(2);
            }
            cli.check_ratio = r;
        } else {
            eprintln!("unknown flag {a:?}");
            std::process::exit(2);
        }
        i += 1;
    }
    cli
}

/// Compiles a kernel under `opts` and returns the audit, with every
/// region proven legal (exit 1 otherwise — the table must never be
/// built on an illegal schedule).
fn audited_legal(
    kernel: &str,
    opts: bsched_pipeline::CompileOptions,
) -> bsched_core::ScheduleAudit {
    let session = Experiment::builder()
        .kernel(kernel)
        .compile_options(opts)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("{kernel}: build failed: {e}");
            std::process::exit(1);
        });
    let (_, audit) = session.compile_audited().unwrap_or_else(|e| {
        eprintln!("{kernel}: compile failed: {e}");
        std::process::exit(1);
    });
    for (ri, region) in audit.regions.iter().enumerate() {
        let violations = validate_region_schedule(region);
        if !violations.is_empty() {
            eprintln!("{kernel}/{}: region {ri} illegal: {violations:?}", opts.label());
            std::process::exit(1);
        }
    }
    audit
}

/// Costs a heuristic audit's emitted orders under the plain balanced
/// weight model — the model the exact search optimizes — summed over
/// all regions.
fn arm_cost(audit: &bsched_core::ScheduleAudit) -> u64 {
    let balanced = WeightConfig::new(SchedulerKind::Balanced);
    audit
        .regions
        .iter()
        .map(|r| {
            let dag = Dag::new(&r.insts);
            let weights = compute_weights(&r.insts, &dag, &balanced);
            schedule_cost(&dag, &weights, &r.order)
        })
        .sum()
}

/// `(name, proven_frac, nodes)` per baseline case.
fn parse_baseline(json: &str) -> Vec<(String, f64, u64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    json.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|l| {
            let name = field(l, "name")?;
            let proven_frac = field(l, "proven_frac")?.parse().ok()?;
            let nodes = field(l, "nodes")?.parse().ok()?;
            Some((name, proven_frac, nodes))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    let kernels: Vec<String> = match &cli.filter {
        None => bsched_workloads::all_kernels().iter().map(|k| k.name.to_string()).collect(),
        Some(want) => {
            for w in want {
                if let Err(e) = resolve_kernel(w) {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            bsched_workloads::all_kernels()
                .iter()
                .map(|k| k.name.to_string())
                .filter(|k| want.contains(k))
                .collect()
        }
    };
    let grid: Vec<ExperimentConfig> = standard_grid()
        .into_iter()
        .filter(|cfg| {
            cli.arms
                .as_ref()
                .is_none_or(|arms| arms.iter().any(|a| a == arm_label(cfg)))
        })
        .collect();

    // Exact bounds are per (kernel, optimization combo) — rows judging
    // different arms on the same combo share one search.
    let mut rows: Vec<Row> = Vec::new();
    let mut per_kernel: BTreeMap<String, bsched_core::ExactStats> = BTreeMap::new();
    for kernel in &kernels {
        let mut bounds: BTreeMap<String, bsched_core::ExactStats> = BTreeMap::new();
        for cfg in &grid {
            let combo = cfg.kind.label();
            let exact = *bounds.entry(combo.clone()).or_insert_with(|| {
                let opts = cfg
                    .kind
                    .options(SchedulerKind::Exact)
                    .with_exact_budget(cli.budget);
                let audit = audited_legal(kernel, opts);
                per_kernel.entry(kernel.clone()).or_default().merge(&audit.exact);
                audit.exact
            });
            let heuristic = audited_legal(kernel, cfg.options());
            let cost = arm_cost(&heuristic);
            if cost < exact.exact_cost {
                eprintln!(
                    "{kernel}/{combo}: heuristic cost {cost} beats the exact bound {} — \
                     region mismatch or search bug",
                    exact.exact_cost
                );
                std::process::exit(1);
            }
            rows.push(Row {
                kernel: kernel.clone(),
                config: combo,
                arm: arm_label(cfg),
                arm_cost: cost,
                exact,
            });
        }
    }

    let mut out = String::new();
    if cli.csv {
        let _ = writeln!(
            out,
            "kernel,config,scheduler,budget,arm_cost,exact_cost,pct_of_optimal,\
             regions,proven,fallbacks,nodes"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.1},{},{},{},{}",
                r.kernel,
                r.config.replace(' ', ""),
                r.arm,
                cli.budget,
                r.arm_cost,
                r.exact.exact_cost,
                r.pct(),
                r.exact.regions,
                r.exact.proven,
                r.exact.fallbacks,
                r.exact.nodes,
            );
        }
        print!("{out}");
        let path = std::path::Path::new("results/optimality.csv");
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, out.as_bytes())
        };
        match write() {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    } else {
        let _ = writeln!(
            out,
            "{:10} {:12} {:>5} {:>9} {:>9} {:>6} {:>9} {:>10}",
            "kernel", "config", "sch", "armcost", "optimal", "pct", "proven", "nodes"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{:10} {:12} {:>5} {:>9} {:>9} {:>6.1} {:>6}/{:<2} {:>10}",
                r.kernel,
                r.config,
                r.arm,
                r.arm_cost,
                r.exact.exact_cost,
                r.pct(),
                r.exact.proven,
                r.exact.regions,
                r.exact.nodes,
            );
        }
        print!("{out}");
    }

    if let Some(path) = &cli.json {
        let mut json = String::from("{\n  \"bench\": \"optimality\",\n  \"cases\": [\n");
        let n = per_kernel.len();
        for (i, (kernel, s)) in per_kernel.iter().enumerate() {
            let comma = if i + 1 == n { "" } else { "," };
            let frac = if s.regions == 0 { 1.0 } else { s.proven as f64 / s.regions as f64 };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{kernel}\", \"budget\": {}, \"regions\": {}, \
                 \"proven\": {}, \"proven_frac\": {frac:.4}, \"fallbacks\": {}, \
                 \"nodes\": {}, \"heuristic_cost\": {}, \"exact_cost\": {}, \
                 \"pct_of_optimal\": {:.2}}}{comma}",
                cli.budget,
                s.regions,
                s.proven,
                s.fallbacks,
                s.nodes,
                s.heuristic_cost,
                s.exact_cost,
                s.pct_of_optimal(),
            );
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &cli.check {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        for (name, base_frac, base_nodes) in parse_baseline(&baseline) {
            let Some(s) = per_kernel.get(&name) else { continue };
            let frac = if s.regions == 0 { 1.0 } else { s.proven as f64 / s.regions as f64 };
            if frac < base_frac * cli.check_ratio {
                eprintln!(
                    "REGRESSION: optimality/{name} proven fraction {frac:.2} is more than \
                     {:.0}% below the recorded {base_frac:.2}",
                    (1.0 - cli.check_ratio) * 100.0
                );
                failed = true;
            }
            if s.nodes as f64 > base_nodes as f64 / cli.check_ratio {
                eprintln!(
                    "REGRESSION: optimality/{name} explored {} nodes, more than \
                     1/{:.1} above the recorded {base_nodes}",
                    s.nodes, cli.check_ratio
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check vs {path}: ok");
    }
}
