//! Regenerates the paper's Figure 3: the doubly nested loop
//! `C[i][j] = A[i][j] + B[i][0]` whose inner loop exhibits *spatial*
//! reuse on A and C and *temporal* reuse on B, as found by locality
//! analysis.

use bsched_opt::analyze_locality;
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};

fn main() {
    const N: i64 = 8;
    let mut k = Kernel::new("fig3");
    let a = k.array("A", (N * N) as u64, ArrayInit::Random(1));
    let b = k.array("B", (N * N) as u64, ArrayInit::Random(2));
    let c = k.array("C", (N * N) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");
    let inner = vec![k.store(
        c,
        Index::two(i, N, j, 1, 0),
        Expr::load(a, Index::two(i, N, j, 1, 0)) + Expr::load(b, Index::two(i, N, i, 0, 0)),
    )];
    let outer = vec![k.for_loop(j, Expr::Int(0), Expr::Int(N), inner)];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), outer));
    let p = k.lower();

    println!("Figure 3 source:\n");
    println!("  for (i = 0; i < {N}; i++)");
    println!("    for (j = 0; j < {N}; j++)");
    println!("      C[i][j] = A[i][j] + B[i][0];\n");
    println!("Locality analysis over the inner loop:\n");
    for r in analyze_locality(p.main()) {
        println!(
            "  loop {} inst {}: {:?}, alignment provable: {}",
            r.loop_idx, r.inst_idx, r.kind, r.aligned
        );
    }
    println!(
        "\nA[i][j] advances 8 bytes per iteration inside a 32-byte line\n\
         (spatial); B[i][0] is invariant in j (temporal) — Figure 3's\n\
         classification."
    );
}
