//! Regenerates the paper's §5.5 comparison: balanced scheduling's
//! advantage under the Kerns–Eggers 1993 *simple* machine model (perfect
//! I-cache, single-cycle non-load operations) versus the full 21164
//! model. The paper estimates a 10% advantage under the simple model
//! shrinking to 4% under the real one, because fixed multi-cycle
//! latencies are work balanced scheduling does not (yet) hide.

use bsched_bench::Grid;
use bsched_harness::ExperimentCell;
use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{CompileOptions, SchedulerKind, Table};
use bsched_sim::SimConfig;

fn main() {
    // The four Perfect Club programs the two studies share are unnamed in
    // the paper; we use our Perfect Club kernels with substantial FP
    // latencies, where the model difference matters most.
    let names = ["ARC2D", "MDG", "QCD2", "TRFD"];
    let sims = [SimConfig::default().simple_model_1993(), SimConfig::default()];
    let grid = Grid::new();
    let kernels: Vec<String> = grid
        .kernel_names()
        .into_iter()
        .filter(|k| names.contains(&k.as_str()))
        .collect();

    // Exactly the 4 × 2 × 2 cells of this study, in one parallel batch.
    let mut cells = Vec::new();
    for kernel in &kernels {
        for sim in sims {
            for scheduler in [SchedulerKind::Balanced, SchedulerKind::Traditional] {
                cells.push(ExperimentCell::new(
                    kernel,
                    CompileOptions::new(scheduler).with_sim(sim),
                ));
            }
        }
    }
    grid.prefetch_cells(&cells);

    let mut t = Table::new(
        "Section 5.5: simple (KE93) vs full (21164) machine model — BS:TS speedup",
        &["Benchmark", "simple model", "full model"],
    );
    let mut simple_all = Vec::new();
    let mut full_all = Vec::new();
    for kernel in &kernels {
        let mut row = vec![kernel.clone()];
        for (vals, sim) in [(&mut simple_all, sims[0]), (&mut full_all, sims[1])] {
            let bs = grid.metrics_for(
                kernel,
                &CompileOptions::new(SchedulerKind::Balanced).with_sim(sim),
            );
            let ts = grid.metrics_for(
                kernel,
                &CompileOptions::new(SchedulerKind::Traditional).with_sim(sim),
            );
            let s = bs.speedup_over(&ts);
            vals.push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    t.row(vec![
        "AVERAGE".into(),
        ratio(mean(&simple_all)),
        ratio(mean(&full_all)),
    ]);
    println!("{t}");
    println!(
        "Paper §5.5: \"balanced scheduling had a 10% advantage over\n\
         traditional scheduling with the simple model, but only 4% when\n\
         modeling the 21164\" — the simple model hides the fixed-latency\n\
         competition that dilutes balanced scheduling on real machines."
    );
    grid.report().emit();
}
