//! Regenerates the paper's §5.5 comparison: balanced scheduling's
//! advantage under the Kerns–Eggers 1993 *simple* machine model (perfect
//! I-cache, single-cycle non-load operations) versus the full 21164
//! model. The paper estimates a 10% advantage under the simple model
//! shrinking to 4% under the real one, because fixed multi-cycle
//! latencies are work balanced scheduling does not (yet) hide.

use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{compile_and_run, CompileOptions, SchedulerKind, Table};
use bsched_sim::SimConfig;
use bsched_workloads::all_kernels;

fn main() {
    // The four Perfect Club programs the two studies share are unnamed in
    // the paper; we use our Perfect Club kernels with substantial FP
    // latencies, where the model difference matters most.
    let names = ["ARC2D", "MDG", "QCD2", "TRFD"];
    let mut t = Table::new(
        "Section 5.5: simple (KE93) vs full (21164) machine model — BS:TS speedup",
        &["Benchmark", "simple model", "full model"],
    );
    let mut simple_all = Vec::new();
    let mut full_all = Vec::new();
    for spec in all_kernels() {
        if !names.contains(&spec.name) {
            continue;
        }
        let program = spec.program();
        let mut row = vec![spec.name.to_string()];
        for (vals, sim) in [
            (&mut simple_all, SimConfig::default().simple_model_1993()),
            (&mut full_all, SimConfig::default()),
        ] {
            let bs = compile_and_run(
                &program,
                &CompileOptions::new(SchedulerKind::Balanced).with_sim(sim),
            )
            .expect("balanced pipeline");
            let ts = compile_and_run(
                &program,
                &CompileOptions::new(SchedulerKind::Traditional).with_sim(sim),
            )
            .expect("traditional pipeline");
            let s = bs.metrics.speedup_over(&ts.metrics);
            vals.push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    t.row(vec![
        "AVERAGE".into(),
        ratio(mean(&simple_all)),
        ratio(mean(&full_all)),
    ]);
    println!("{t}");
    println!(
        "Paper §5.5: \"balanced scheduling had a 10% advantage over\n\
         traditional scheduling with the simple model, but only 4% when\n\
         modeling the 21164\" — the simple model hides the fixed-latency\n\
         competition that dilutes balanced scheduling on real machines."
    );
}
