//! The machine-zoo gap table: how the paper's balanced-vs-traditional
//! speedup moves as the machine changes.
//!
//! For every registered machine description (`bsched_sim::MachineSpec`)
//! the binary runs each kernel under three scheduler arms at the
//! paper's headline optimization level (LU 4): traditional list
//! scheduling, balanced scheduling, and the exact branch-and-bound
//! scheduler as an optimality bound. The headline column is the cycle
//! reduction balanced scheduling buys over traditional on that machine
//! — the paper's central claim, re-measured across predictors,
//! prefetchers, MSHR policies and issue widths the 1995 machine could
//! not express.
//!
//! Every cell runs through the harness engine, so the table is fully
//! cached, parallel, and — because cycles are deterministic —
//! byte-identical across runs, worker counts and simulation engines.
//! The `alpha21164` rows are by construction identical to the default
//! machine's numbers in `results/all_experiments.csv`.
//!
//! Flags:
//!
//! * `--machines SPEC,...` — restrict (or extend, via spec modifiers
//!   like `alpha21164+bp=gshare`) the machine list; exit 2 with the
//!   valid choices on bad specs;
//! * `--kernels NAME,...` — restrict to a kernel subset (exit 2 with
//!   the valid choices on unknown names);
//! * `--engine NAME` — simulation engine (`interpret` or `block`),
//!   byte-identical output either way;
//! * `--verify` — run the `bsched-verify` conformance suite on every
//!   executed cell (`BSCHED_VERIFY=1` does the same);
//! * `--csv` — also write `results/machines.csv`;
//! * `--json PATH` — write per-machine cycle totals as JSON
//!   (`BENCH_pr10.json` is the committed baseline);
//! * `--check BASELINE` — compare against a recorded JSON: cycle totals
//!   are deterministic, so the gate is exact equality; exit 1 on any
//!   mismatch.
//!
//! Unlike the paper-table binaries this one ignores `BSCHED_MACHINE`:
//! the machine axis *is* the sweep.

use bsched_bench::Grid;
use bsched_harness::{Engine, EngineConfig, ExperimentCell};
use bsched_pipeline::{resolve_kernel, CompileOptions, MachineSpec, SchedulerKind};
use std::fmt::Write as _;

/// One (machine, kernel) row: cycles under the three scheduler arms.
struct Row {
    machine: String,
    kernel: String,
    ts: u64,
    bs: u64,
    ex: u64,
}

impl Row {
    /// Percent cycle reduction from traditional to balanced.
    fn bs_gain(&self) -> f64 {
        100.0 * bsched_bench::pct_decrease(self.ts, self.bs)
    }

    /// Percent cycle reduction from traditional to the exact bound.
    fn ex_gain(&self) -> f64 {
        100.0 * bsched_bench::pct_decrease(self.ts, self.ex)
    }
}

/// Per-machine totals (summed over the kernel set).
#[derive(Default)]
struct Totals {
    kernels: u64,
    ts: u64,
    bs: u64,
    ex: u64,
}

struct Cli {
    csv: bool,
    verify: bool,
    engine: Option<bsched_pipeline::SimEngine>,
    machines: Option<Vec<MachineSpec>>,
    filter: Option<Vec<String>>,
    json: Option<String>,
    check: Option<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        csv: false,
        verify: false,
        engine: None,
        machines: None,
        filter: None,
        json: None,
        check: None,
    };
    let value = |i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let machine_list = |raw: &str| -> Vec<MachineSpec> {
        let specs: Vec<&str> = raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if specs.is_empty() {
            eprintln!(
                "--machines requires at least one machine spec; valid machines: {}",
                MachineSpec::valid_names()
            );
            std::process::exit(2);
        }
        specs
            .into_iter()
            .map(|s| {
                s.parse().unwrap_or_else(|e: String| {
                    eprintln!("--machines: {e}");
                    std::process::exit(2);
                })
            })
            .collect()
    };
    let kernel_list = |raw: &str| -> Vec<String> {
        if raw.trim().is_empty() {
            eprintln!(
                "--kernels requires at least one kernel name; valid kernels: {}",
                bsched_workloads::all_kernels()
                    .iter()
                    .map(|k| k.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
        raw.split(',').map(str::to_string).collect()
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--csv" {
            cli.csv = true;
        } else if a == "--verify" {
            cli.verify = true;
        } else if a == "--engine" {
            cli.engine = Some(parse_engine(&value(i, "--engine")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--engine=") {
            cli.engine = Some(parse_engine(v));
        } else if a == "--machines" {
            cli.machines = Some(machine_list(&value(i, "--machines")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--machines=") {
            cli.machines = Some(machine_list(v));
        } else if a == "--kernels" {
            cli.filter = Some(kernel_list(&value(i, "--kernels")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--kernels=") {
            cli.filter = Some(kernel_list(v));
        } else if a == "--json" {
            cli.json = Some(value(i, "--json"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--json=") {
            cli.json = Some(v.to_string());
        } else if a == "--check" {
            cli.check = Some(value(i, "--check"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--check=") {
            cli.check = Some(v.to_string());
        } else {
            eprintln!("unknown flag {a:?}");
            std::process::exit(2);
        }
        i += 1;
    }
    cli
}

fn parse_engine(raw: &str) -> bsched_pipeline::SimEngine {
    raw.trim().parse().unwrap_or_else(|e| {
        eprintln!("--engine: {e}");
        std::process::exit(2);
    })
}

/// The three judged arms, at the paper's headline LU 4 level.
const ARMS: [SchedulerKind; 3] = [
    SchedulerKind::Traditional,
    SchedulerKind::Balanced,
    SchedulerKind::Exact,
];

fn arm_options(arm: SchedulerKind, machine: &MachineSpec) -> CompileOptions {
    CompileOptions::new(arm)
        .with_unroll(4)
        .with_sim(machine.config())
}

/// `(name, ts, bs, ex)` per baseline case.
fn parse_baseline(json: &str) -> Vec<(String, u64, u64, u64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(&format!("\"{key}\": "))? + key.len() + 4;
        let rest = &line[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_string())
    };
    json.lines()
        .filter(|l| l.contains("\"name\""))
        .filter_map(|l| {
            let name = field(l, "name")?;
            let ts = field(l, "ts_cycles")?.parse().ok()?;
            let bs = field(l, "bs_cycles")?.parse().ok()?;
            let ex = field(l, "ex_cycles")?.parse().ok()?;
            Some((name, ts, bs, ex))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);

    let mut engine_cfg = EngineConfig::from_env();
    engine_cfg.verify = engine_cfg.verify || cli.verify;
    if let Some(engine) = cli.engine {
        engine_cfg.sim_engine = engine; // the flag beats BSCHED_SIM_ENGINE
    }
    let grid = Grid::with_engine(Engine::with_standard_kernels(engine_cfg));

    let machines: Vec<MachineSpec> = cli.machines.clone().unwrap_or_else(|| {
        MachineSpec::registry()
            .iter()
            .map(|m| MachineSpec::named(m.name).expect("registry names parse"))
            .collect()
    });
    let kernels: Vec<String> = match &cli.filter {
        None => grid.kernel_names(),
        Some(want) => {
            for w in want {
                if let Err(e) = resolve_kernel(w) {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            grid.kernel_names()
                .into_iter()
                .filter(|k| want.contains(k))
                .collect()
        }
    };

    // The whole machine × kernel × arm product in one parallel batch.
    let mut cells = Vec::with_capacity(machines.len() * kernels.len() * ARMS.len());
    for m in &machines {
        for kernel in &kernels {
            for arm in ARMS {
                cells.push(ExperimentCell::new(kernel, arm_options(arm, m)));
            }
        }
    }
    grid.prefetch_cells(&cells);

    let mut rows: Vec<Row> = Vec::new();
    for m in &machines {
        for kernel in &kernels {
            let cycles = |arm| grid.metrics_for(kernel, &arm_options(arm, m)).cycles;
            rows.push(Row {
                machine: m.spec().to_string(),
                kernel: kernel.clone(),
                ts: cycles(SchedulerKind::Traditional),
                bs: cycles(SchedulerKind::Balanced),
                ex: cycles(SchedulerKind::Exact),
            });
        }
    }
    let mut totals: Vec<(String, Totals)> = Vec::new();
    for r in &rows {
        if totals.last().map(|(m, _)| m.as_str()) != Some(r.machine.as_str()) {
            totals.push((r.machine.clone(), Totals::default()));
        }
        let t = &mut totals.last_mut().expect("just pushed").1;
        t.kernels += 1;
        t.ts += r.ts;
        t.bs += r.bs;
        t.ex += r.ex;
    }

    let mut out = String::new();
    if cli.csv {
        let _ = writeln!(
            out,
            "machine,kernel,ts_cycles,bs_cycles,ex_cycles,bs_gain_pct,ex_gain_pct"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{:.2},{:.2}",
                r.machine,
                r.kernel,
                r.ts,
                r.bs,
                r.ex,
                r.bs_gain(),
                r.ex_gain(),
            );
        }
        print!("{out}");
        let path = std::path::Path::new("results/machines.csv");
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, out.as_bytes())
        };
        match write() {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    } else {
        let _ = writeln!(
            out,
            "{:22} {:10} {:>10} {:>10} {:>10} {:>8} {:>8}",
            "machine", "kernel", "TS", "BS", "EX", "BSgain%", "EXgain%"
        );
        for r in &rows {
            let _ = writeln!(
                out,
                "{:22} {:10} {:>10} {:>10} {:>10} {:>8.2} {:>8.2}",
                r.machine,
                r.kernel,
                r.ts,
                r.bs,
                r.ex,
                r.bs_gain(),
                r.ex_gain(),
            );
        }
        for (name, t) in &totals {
            let _ = writeln!(
                out,
                "{:22} {:10} {:>10} {:>10} {:>10} {:>8.2} {:>8.2}",
                name,
                "TOTAL",
                t.ts,
                t.bs,
                t.ex,
                100.0 * bsched_bench::pct_decrease(t.ts, t.bs),
                100.0 * bsched_bench::pct_decrease(t.ts, t.ex),
            );
        }
        print!("{out}");
    }

    if let Some(path) = &cli.json {
        let mut json = String::from("{\n  \"bench\": \"machines\",\n  \"cases\": [\n");
        let n = totals.len();
        for (i, (name, t)) in totals.iter().enumerate() {
            let comma = if i + 1 == n { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{name}\", \"kernels\": {}, \"ts_cycles\": {}, \
                 \"bs_cycles\": {}, \"ex_cycles\": {}, \"bs_gain_pct\": {:.2}, \
                 \"ex_gain_pct\": {:.2}}}{comma}",
                t.kernels,
                t.ts,
                t.bs,
                t.ex,
                100.0 * bsched_bench::pct_decrease(t.ts, t.bs),
                100.0 * bsched_bench::pct_decrease(t.ts, t.ex),
            );
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &cli.check {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("could not read baseline {path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        let mut checked = 0usize;
        for (name, ts, bs, ex) in parse_baseline(&baseline) {
            let Some((_, t)) = totals.iter().find(|(m, _)| m == &name) else {
                continue;
            };
            checked += 1;
            for (what, got, want) in [("ts", t.ts, ts), ("bs", t.bs, bs), ("ex", t.ex, ex)] {
                if got != want {
                    eprintln!(
                        "REGRESSION: machines/{name} {what}_cycles {got} != recorded {want} \
                         (cycles are deterministic; the gate is exact equality)"
                    );
                    failed = true;
                }
            }
        }
        if checked == 0 {
            eprintln!("check vs {path}: no overlapping machines — nothing was verified");
            std::process::exit(1);
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("check vs {path}: ok ({checked} machines)");
    }

    grid.report().emit();
}
