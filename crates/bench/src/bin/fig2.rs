//! Regenerates the paper's Figure 2: trace formation over a five-block
//! CFG. Blocks 1, 2, 4, 5 form the hot trace (A); block 3 is the cold
//! off-trace path (B). Compaction moves code across the split/join with
//! compensation.

use bsched_ir::{BrCond, FuncBuilder, Interp, Op, Program};
use bsched_opt::{trace_schedule, EdgeProfile, TraceOptions};

fn main() {
    // b1: split; b2 hot arm; b3 cold arm; b4 join; b5 tail.
    let mut p = Program::new("fig2");
    let data = p.add_region("data", 256);
    let out = p.add_region("out", 64);
    let mut b = FuncBuilder::new("main");
    let hot = b.add_block();
    let cold = b.add_block();
    let join = b.add_block();

    let base = b.load_region_addr(data);
    let obase = b.load_region_addr(out);
    let x = b.load_f(base, 0).with_region(data).emit(&mut b);
    let c = b.iconst(1); // always taken: block 2 is the hot arm
    b.br(c, BrCond::NonZero, hot, cold);

    b.switch_to(hot);
    let h = b.binop(Op::FMul, x, x);
    b.store(h, obase, 0).with_region(out).emit(&mut b);
    b.jmp(join);

    b.switch_to(cold);
    let cl = b.binop(Op::FAdd, x, x);
    b.store(cl, obase, 8).with_region(out).emit(&mut b);
    b.jmp(join);

    b.switch_to(join);
    let y = b.load_f(base, 8).with_region(data).emit(&mut b);
    let z = b.binop(Op::FAdd, y, x);
    b.store(z, obase, 16).with_region(out).emit(&mut b);
    b.ret();
    p.set_main(b.finish());

    println!("Figure 2: CFG before trace scheduling\n\n{}", p.main());
    let before = Interp::new(&p).run().unwrap();
    let profile = EdgeProfile::collect(&p).unwrap();
    let stats = trace_schedule(p.main_mut(), &profile, &TraceOptions::default());
    let after = Interp::new(&p).run().unwrap();
    println!("After trace scheduling ({stats:?}):\n\n{}", p.main());
    assert_eq!(before.checksum, after.checksum, "semantics preserved");
    println!(
        "observable memory unchanged: checksum {:#x}",
        after.checksum
    );
}
