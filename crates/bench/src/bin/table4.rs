//! Regenerates the paper's Table 4: balanced scheduling under loop
//! unrolling — speedup in total cycles, percentage decrease in dynamic
//! instruction count, and percentage decrease in load interlock cycles
//! for unrolling factors 4 and 8, relative to no unrolling.

use bsched_bench::{pct_decrease, Grid};
use bsched_pipeline::table::{mean, pct, ratio};
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind, Table};

fn main() {
    let grid = Grid::new();
    grid.prefetch(
        &[ConfigKind::Base, ConfigKind::Lu(4), ConfigKind::Lu(8)].map(|kind| ExperimentConfig {
            scheduler: SchedulerKind::Balanced,
            kind,
        }),
    );
    let mut t = Table::new(
        "Table 4: Balanced scheduling — effect of loop unrolling (relative to no unrolling)",
        &[
            "Benchmark",
            "Total cycles (noLU)",
            "speedup LU4",
            "speedup LU8",
            "dyn insts (noLU)",
            "dInsts LU4",
            "dInsts LU8",
            "load interlocks (noLU)",
            "dLI LU4",
            "dLI LU8",
        ],
    );
    let mut avg = vec![Vec::new(); 6];
    for kernel in grid.kernel_names() {
        let base = grid.bs(&kernel, ConfigKind::Base);
        let lu4 = grid.bs(&kernel, ConfigKind::Lu(4));
        let lu8 = grid.bs(&kernel, ConfigKind::Lu(8));
        let cells = [
            lu4.speedup_over(&base),
            lu8.speedup_over(&base),
            pct_decrease(base.insts.total(), lu4.insts.total()),
            pct_decrease(base.insts.total(), lu8.insts.total()),
            pct_decrease(base.load_interlock, lu4.load_interlock),
            pct_decrease(base.load_interlock, lu8.load_interlock),
        ];
        for (k, v) in cells.iter().enumerate() {
            avg[k].push(*v);
        }
        t.row(vec![
            kernel.clone(),
            base.cycles.to_string(),
            ratio(cells[0]),
            ratio(cells[1]),
            base.insts.total().to_string(),
            pct(cells[2]),
            pct(cells[3]),
            base.load_interlock.to_string(),
            pct(cells[4]),
            pct(cells[5]),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        ratio(mean(&avg[0])),
        ratio(mean(&avg[1])),
        String::new(),
        pct(mean(&avg[2])),
        pct(mean(&avg[3])),
        String::new(),
        pct(mean(&avg[4])),
        pct(mean(&avg[5])),
    ]);
    println!("{t}");
    grid.report().emit();
}
