//! Regenerates the paper's Figure 5: peeling the first iteration so the
//! temporal-reuse load `B[i][0]` misses once (in the peeled copy) and is
//! a compile-time hit inside the loop.

use bsched_ir::{Interp, LocalityHint};
use bsched_opt::{apply_locality, LocalityOptions};
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};

fn main() {
    const N: i64 = 12;
    let mut k = Kernel::new("fig5");
    let b_arr = k.array("B", N as u64, ArrayInit::Random(2));
    let out = k.array("out", 8, ArrayInit::Zero);
    let j = k.int_var("j");
    let s = k.float_var("s");
    k.push(k.assign(s, Expr::Float(0.0)));
    // s += B[0] every iteration: pure temporal reuse.
    let body = vec![k.assign(s, Expr::Var(s) + Expr::load(b_arr, Index::constant(0)))];
    k.push(k.for_loop(j, Expr::Int(0), Expr::Int(N), body));
    k.push(k.store(out, Index::constant(0), Expr::Var(s)));
    let mut p = k.lower();

    let before = Interp::new(&p).run().unwrap();
    let stats = apply_locality(p.main_mut(), &LocalityOptions::default());
    let after = Interp::new(&p).run().unwrap();
    assert_eq!(before.checksum, after.checksum);

    println!("Figure 5: loop peeling for temporal reuse\n");
    println!("{stats:?}\n");
    println!("{}", p.main());
    let mut peeled_miss = 0;
    let mut loop_hits = 0;
    for (_, blk) in p.main().iter_blocks() {
        for inst in &blk.insts {
            match inst.hint {
                LocalityHint::Miss => peeled_miss += 1,
                LocalityHint::Hit => loop_hits += 1,
                LocalityHint::Unknown => {}
            }
        }
    }
    println!("peeled copy carries the miss ({peeled_miss}), in-loop load is a hit ({loop_hits})");
}
