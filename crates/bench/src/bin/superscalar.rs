//! The paper's stated future work (§6): "we intend to examine its
//! effects on wider-issue (superscalar) processors that require
//! considerable instruction-level parallelism to perform well."
//!
//! This binary sweeps the in-order issue width (1 = the paper's machine,
//! 2, 4) and reports the average BS:TS speedup per width.
//!
//! `--ports` appends a second sweep that the old
//! `with_issue_width` API could not express: issue width fixed at 4
//! while the memory-port count varies independently (1–4), isolating
//! how much of the wide-issue gap is pure load/store bandwidth.

use bsched_bench::Grid;
use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{CompileOptions, SchedulerKind, Table};
use bsched_sim::SimConfig;

fn speedup_table(grid: &Grid, title: &str, columns: &[String], sims: &[SimConfig]) -> Table {
    let mut header = vec!["Benchmark".to_string()];
    header.extend(columns.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &header_refs);
    let mut avgs = vec![Vec::new(); sims.len()];
    for kernel in grid.kernel_names() {
        let mut row = vec![kernel.clone()];
        for (k, sim) in sims.iter().enumerate() {
            let bs = grid.metrics_for(
                &kernel,
                &CompileOptions::new(SchedulerKind::Balanced)
                    .with_unroll(4)
                    .with_sim(*sim),
            );
            let ts = grid.metrics_for(
                &kernel,
                &CompileOptions::new(SchedulerKind::Traditional)
                    .with_unroll(4)
                    .with_sim(*sim),
            );
            let s = bs.speedup_over(&ts);
            avgs[k].push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for a in &avgs {
        avg_row.push(ratio(mean(a)));
    }
    t.row(avg_row);
    t
}

fn main() {
    let ports_sweep = std::env::args().skip(1).any(|a| a == "--ports");
    let widths = [1u32, 2, 4];
    let grid = Grid::new();

    let width_sims: Vec<SimConfig> = widths
        .iter()
        .map(|&w| SimConfig::default().with_issue(w, (w / 2).max(1)))
        .collect();
    let ports = [1u32, 2, 3, 4];
    let port_sims: Vec<SimConfig> = ports
        .iter()
        .map(|&p| SimConfig::default().with_issue(4, p))
        .collect();

    // All 17 kernels × sims × 2 schedulers, one parallel batch.
    let mut opts = Vec::new();
    let mut sims: Vec<&SimConfig> = width_sims.iter().collect();
    if ports_sweep {
        sims.extend(port_sims.iter());
    }
    for sim in sims {
        for scheduler in [SchedulerKind::Balanced, SchedulerKind::Traditional] {
            opts.push(
                CompileOptions::new(scheduler)
                    .with_unroll(4)
                    .with_sim(*sim),
            );
        }
    }
    grid.prefetch_options(&opts);

    let t = speedup_table(
        &grid,
        "Future work (paper §6): BS:TS speedup vs in-order issue width (with LU4)",
        &widths.iter().map(|w| format!("width {w}")).collect::<Vec<_>>(),
        &width_sims,
    );
    println!("{t}");
    if ports_sweep {
        let t = speedup_table(
            &grid,
            "BS:TS speedup vs memory ports at issue width 4 (with LU4)",
            &ports.iter().map(|p| format!("{p} ports")).collect::<Vec<_>>(),
            &port_sims,
        );
        println!("{t}");
    }
    grid.report().emit();
}
