//! The paper's stated future work (§6): "we intend to examine its
//! effects on wider-issue (superscalar) processors that require
//! considerable instruction-level parallelism to perform well."
//!
//! This binary sweeps the in-order issue width (1 = the paper's machine,
//! 2, 4) and reports the average BS:TS speedup per width.

use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{compile_and_run, CompileOptions, SchedulerKind, Table};
use bsched_sim::SimConfig;
use bsched_workloads::all_kernels;

fn main() {
    let widths = [1u32, 2, 4];
    let mut t = Table::new(
        "Future work (paper §6): BS:TS speedup vs in-order issue width (with LU4)",
        &["Benchmark", "width 1", "width 2", "width 4"],
    );
    let mut avgs = vec![Vec::new(); widths.len()];
    for spec in all_kernels() {
        let program = spec.program();
        let mut row = vec![spec.name.to_string()];
        for (k, &w) in widths.iter().enumerate() {
            let sim = SimConfig::default().with_issue_width(w);
            let bs = compile_and_run(
                &program,
                &CompileOptions::new(SchedulerKind::Balanced)
                    .with_unroll(4)
                    .with_sim(sim),
            )
            .expect("balanced pipeline");
            let ts = compile_and_run(
                &program,
                &CompileOptions::new(SchedulerKind::Traditional)
                    .with_unroll(4)
                    .with_sim(sim),
            )
            .expect("traditional pipeline");
            let s = bs.metrics.speedup_over(&ts.metrics);
            avgs[k].push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for a in &avgs {
        avg_row.push(ratio(mean(a)));
    }
    t.row(avg_row);
    println!("{t}");
}
