//! The paper's stated future work (§6): "we intend to examine its
//! effects on wider-issue (superscalar) processors that require
//! considerable instruction-level parallelism to perform well."
//!
//! This binary sweeps the in-order issue width (1 = the paper's machine,
//! 2, 4) and reports the average BS:TS speedup per width.

use bsched_bench::Grid;
use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{CompileOptions, SchedulerKind, Table};
use bsched_sim::SimConfig;

fn main() {
    let widths = [1u32, 2, 4];
    let grid = Grid::new();

    // All 17 kernels × 3 widths × 2 schedulers, one parallel batch.
    let mut opts = Vec::new();
    for &w in &widths {
        let sim = SimConfig::default().with_issue_width(w);
        for scheduler in [SchedulerKind::Balanced, SchedulerKind::Traditional] {
            opts.push(CompileOptions::new(scheduler).with_unroll(4).with_sim(sim));
        }
    }
    grid.prefetch_options(&opts);

    let mut t = Table::new(
        "Future work (paper §6): BS:TS speedup vs in-order issue width (with LU4)",
        &["Benchmark", "width 1", "width 2", "width 4"],
    );
    let mut avgs = vec![Vec::new(); widths.len()];
    for kernel in grid.kernel_names() {
        let mut row = vec![kernel.clone()];
        for (k, &w) in widths.iter().enumerate() {
            let sim = SimConfig::default().with_issue_width(w);
            let bs = grid.metrics_for(
                &kernel,
                &CompileOptions::new(SchedulerKind::Balanced)
                    .with_unroll(4)
                    .with_sim(sim),
            );
            let ts = grid.metrics_for(
                &kernel,
                &CompileOptions::new(SchedulerKind::Traditional)
                    .with_unroll(4)
                    .with_sim(sim),
            );
            let s = bs.speedup_over(&ts);
            avgs[k].push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for a in &avgs {
        avg_row.push(ratio(mean(a)));
    }
    t.row(avg_row);
    println!("{t}");
    grid.report().emit();
}
