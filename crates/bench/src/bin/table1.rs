//! Regenerates the paper's Table 1: the workload.

use bsched_pipeline::Table;
use bsched_workloads::all_kernels;

fn main() {
    let mut t = Table::new(
        "Table 1: The workload (synthetic kernels shaped after the paper's benchmarks)",
        &[
            "Program",
            "Lang.",
            "Suite",
            "Description / reproduced structure",
        ],
    );
    for k in all_kernels() {
        t.row(vec![
            k.name.to_string(),
            k.lang.to_string(),
            format!("{:?}", k.suite),
            format!("{} — {}", k.description, k.shape),
        ]);
    }
    println!("{t}");
}
