//! Regenerates the paper's Table 5: balanced (BS) vs traditional (TS)
//! scheduling under loop unrolling — total-cycle speedup, percentage
//! reduction in load interlock cycles, and load interlocks as a
//! percentage of total cycles.

use bsched_bench::{pct_decrease, Grid};
use bsched_pipeline::table::{mean, pct, ratio};
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind, Table};

fn main() {
    let grid = Grid::new();
    let mut warm = Vec::new();
    for scheduler in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
        for kind in [ConfigKind::Base, ConfigKind::Lu(4), ConfigKind::Lu(8)] {
            warm.push(ExperimentConfig { scheduler, kind });
        }
    }
    grid.prefetch(&warm);
    let mut t = Table::new(
        "Table 5: BS vs TS for loop unrolling",
        &[
            "Benchmark",
            "speedup noLU",
            "speedup LU4",
            "speedup LU8",
            "dLI noLU",
            "dLI LU4",
            "dLI LU8",
            "LI% BS noLU",
            "LI% TS noLU",
            "LI% BS LU4",
            "LI% TS LU4",
            "LI% BS LU8",
            "LI% TS LU8",
        ],
    );
    let kinds = [ConfigKind::Base, ConfigKind::Lu(4), ConfigKind::Lu(8)];
    let mut avgs = vec![Vec::new(); 12];
    for kernel in grid.kernel_names() {
        let mut row = vec![kernel.clone()];
        let mut cells: Vec<f64> = Vec::new();
        for kind in kinds {
            let bs = grid.bs(&kernel, kind);
            let ts = grid.ts(&kernel, kind);
            cells.push(bs.speedup_over(&ts));
            let _ = ts;
        }
        for kind in kinds {
            let bs = grid.bs(&kernel, kind);
            let ts = grid.ts(&kernel, kind);
            cells.push(pct_decrease(ts.load_interlock, bs.load_interlock));
        }
        for kind in kinds {
            let bs = grid.bs(&kernel, kind);
            let ts = grid.ts(&kernel, kind);
            cells.push(bs.load_interlock_fraction());
            cells.push(ts.load_interlock_fraction());
        }
        for (k, v) in cells.iter().enumerate() {
            avgs[k].push(*v);
            row.push(if k < 3 { ratio(*v) } else { pct(*v) });
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for (k, v) in avgs.iter().enumerate() {
        let m = mean(v);
        avg_row.push(if k < 3 { ratio(m) } else { pct(m) });
    }
    t.row(avg_row);
    println!("{t}");
    grid.report().emit();
}
