//! Regenerates the paper's Figure 4: the postconditioned unroll-by-4 of
//! the Figure 3 loop, with the first copy of each cache-line group marked
//! as the compile-time miss and the rest as hits.

use bsched_ir::{Interp, LocalityHint};
use bsched_opt::{apply_locality, LocalityOptions};
use bsched_workloads::lang::ast::{Expr, Index};
use bsched_workloads::lang::{ArrayInit, Kernel};

fn main() {
    const N: i64 = 8;
    let mut k = Kernel::new("fig4");
    let a = k.array("A", (N * N) as u64, ArrayInit::Random(1));
    let c = k.array("C", (N * N) as u64, ArrayInit::Zero);
    let i = k.int_var("i");
    let j = k.int_var("j");
    let inner = vec![k.store(
        c,
        Index::two(i, N, j, 1, 0),
        Expr::load(a, Index::two(i, N, j, 1, 0)) * Expr::Float(2.0),
    )];
    let outer = vec![k.for_loop(j, Expr::Int(0), Expr::Int(N), inner)];
    k.push(k.for_loop(i, Expr::Int(0), Expr::Int(N), outer));
    let mut p = k.lower();

    let before = Interp::new(&p).run().unwrap();
    let stats = apply_locality(p.main_mut(), &LocalityOptions::default());
    let after = Interp::new(&p).run().unwrap();
    assert_eq!(before.checksum, after.checksum);

    println!("Figure 4: postconditioned unroll-by-4 with hit/miss marking\n");
    println!("{stats:?}\n");
    println!("{}", p.main());
    let body = p.main().loops[stats.loops_processed[0]].body[0];
    let (hits, misses): (usize, usize) =
        p.main()
            .block(body)
            .insts
            .iter()
            .fold((0, 0), |acc, x| match x.hint {
                LocalityHint::Hit => (acc.0 + 1, acc.1),
                LocalityHint::Miss => (acc.0, acc.1 + 1),
                LocalityHint::Unknown => acc,
            });
    println!("main unrolled body: {misses} miss-marked load(s), {hits} hit-marked load(s)");
    println!("(the remainder runs through the guarded postcondition chain, as in the paper)");
}
