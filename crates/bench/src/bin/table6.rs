//! Regenerates the paper's Table 6: speedups over balanced scheduling
//! alone for combinations of loop unrolling (LU 4/8), trace scheduling
//! (TrS) and locality analysis (LA).

use bsched_bench::Grid;
use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind, Table};

fn main() {
    let grid = Grid::new();
    let kinds = [
        ConfigKind::Lu(4),
        ConfigKind::Lu(8),
        ConfigKind::TrsLu(4),
        ConfigKind::TrsLu(8),
        ConfigKind::La,
        ConfigKind::LaLu(4),
        ConfigKind::LaLu(8),
        ConfigKind::LaTrsLu(4),
        ConfigKind::LaTrsLu(8),
    ];
    let warm: Vec<ExperimentConfig> = kinds
        .iter()
        .chain(std::iter::once(&ConfigKind::Base))
        .map(|&kind| ExperimentConfig {
            scheduler: SchedulerKind::Balanced,
            kind,
        })
        .collect();
    grid.prefetch(&warm);
    let mut headers = vec!["Benchmark".to_string()];
    headers.extend(kinds.iter().map(|k| k.label()));
    let hdr: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Table 6: Speedup over balanced scheduling alone", &hdr);

    let mut avg = vec![Vec::new(); kinds.len()];
    for kernel in grid.kernel_names() {
        let base = grid.bs(&kernel, ConfigKind::Base);
        let mut row = vec![kernel.clone()];
        for (k, kind) in kinds.iter().enumerate() {
            let m = grid.bs(&kernel, *kind);
            let s = m.speedup_over(&base);
            avg[k].push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for a in &avg {
        avg_row.push(ratio(mean(a)));
    }
    t.row(avg_row);
    println!("{t}");
    grid.report().emit();
}
