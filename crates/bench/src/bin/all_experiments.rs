//! Runs the full experiment grid (17 kernels × 15 configurations) and
//! prints one metric line per run — the raw data behind Tables 4–9.
//!
//! The whole deduplicated grid executes up front on the harness's
//! work-stealing pool; results come back in deterministic kernel ×
//! configuration order regardless of worker count or cache state. In
//! `--csv` mode the same bytes also land in `results/all_experiments.csv`.
//! The harness run report goes to stderr so stdout stays byte-identical
//! across runs.
//!
//! `--kernels NAME,NAME,...` (or `--kernels=NAME,...`) restricts the
//! grid to a subset (used by `scripts/ci.sh` for a fast smoke run).
//! Unknown names — and an empty list — are rejected with the list of
//! valid choices and exit code 2.
//!
//! `--engine NAME` (or `--engine=NAME`, or `BSCHED_SIM_ENGINE=NAME`)
//! selects the simulation engine — `interpret` or `block` — with
//! byte-identical output either way; unknown names are rejected with
//! the valid choices and exit code 2.
//!
//! `--sample` (or `--sample=SPEC`, or `BSCHED_SAMPLE=SPEC`) switches
//! execution to sampled simulation: cycle-level metrics become
//! estimates extrapolated from representative intervals (instruction
//! counts and checksums stay exact; see DESIGN.md §13). Like the engine
//! axis the mode is execution-only — it never enters a cache key — but
//! sampled results live in their own store and never touch the exact
//! caches. A bare `--sample` uses the default configuration; a spec
//! like `k=8,interval=1000` overrides it. Invalid specs are rejected
//! with the valid format and exit code 2.
//!
//! `--machine NAME[+mods]` (or `--machine=SPEC`, or
//! `BSCHED_MACHINE=SPEC`) re-targets the whole grid at a registered
//! machine description — e.g. `alpha21264` or
//! `alpha21164+bp=gshare+iw=4+ports=2` (see `bsched_sim::MachineSpec`).
//! Unknown names and malformed modifiers are rejected with the valid
//! choices and exit code 2. The flag beats the environment variable.
//!
//! `--verify` runs the `bsched-verify` conformance suite on every
//! executed cell (schedule legality, weight cross-check, differential
//! replay, engine cross-check, metamorphic invariants);
//! `BSCHED_VERIFY=1` does the same.
//! `--fuzz N` additionally runs an N-iteration pipeline-fuzzing
//! campaign after the grid (`--fuzz-seed HEX` and `--fuzz-seconds S`
//! control the seed and a wall-clock budget). Verification output goes
//! to stderr; any violation or fuzz failure exits nonzero.

use bsched_bench::Grid;
use bsched_harness::{Engine, EngineConfig, ExperimentCell};
use bsched_pipeline::{resolve_kernel, standard_grid};
use std::fmt::Write as _;

fn valid_kernels() -> String {
    bsched_workloads::all_kernels()
        .iter()
        .map(|k| k.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_engine(raw: &str) -> bsched_pipeline::SimEngine {
    raw.trim().parse().unwrap_or_else(|e| {
        eprintln!("--engine: {e}");
        std::process::exit(2);
    })
}

fn parse_sample(raw: &str) -> bsched_pipeline::SampleConfig {
    raw.trim().parse().unwrap_or_else(|e| {
        eprintln!("--sample: {e}");
        std::process::exit(2);
    })
}

fn parse_machine(raw: &str) -> bsched_pipeline::MachineSpec {
    raw.trim().parse().unwrap_or_else(|e: String| {
        eprintln!("--machine: {e}");
        std::process::exit(2);
    })
}

fn parse_kernel_list(raw: &str) -> Vec<String> {
    if raw.trim().is_empty() {
        eprintln!(
            "--kernels requires at least one kernel name; valid kernels: {}",
            valid_kernels()
        );
        std::process::exit(2);
    }
    raw.split(',').map(str::to_string).collect()
}

struct Cli {
    csv: bool,
    verify: bool,
    engine: Option<bsched_pipeline::SimEngine>,
    sample: Option<bsched_pipeline::SampleConfig>,
    machine: Option<bsched_pipeline::MachineSpec>,
    filter: Option<Vec<String>>,
    fuzz: Option<u64>,
    fuzz_seed: u64,
    fuzz_seconds: Option<u64>,
    trace_json: Option<String>,
    trace_chrome: Option<String>,
    trace_summary: bool,
}

impl Cli {
    /// Whether any tracing sink was requested (turns the recorder on).
    fn tracing(&self) -> bool {
        self.trace_json.is_some() || self.trace_chrome.is_some() || self.trace_summary
    }
}

/// Fails fast (exit 2) when a trace export path cannot be opened for
/// writing, before any cell executes.
fn ensure_writable(flag: &str, path: &str) {
    // A writability probe must not clobber an existing file's contents.
    let probe = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path);
    if let Err(e) = probe {
        eprintln!("{flag}: cannot write {path}: {e}");
        std::process::exit(2);
    }
}

fn parse_args(args: &[String]) -> Cli {
    let mut cli = Cli {
        csv: false,
        verify: false,
        engine: None,
        sample: None,
        machine: None,
        filter: None,
        fuzz: None,
        fuzz_seed: 0xB5ED,
        fuzz_seconds: None,
        trace_json: None,
        trace_chrome: None,
        trace_summary: false,
    };
    let value = |i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let number = |v: &str, flag: &str| -> u64 {
        let v = v.trim();
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            v.parse()
        };
        parsed.unwrap_or_else(|_| {
            eprintln!("{flag} requires a number, got {v:?}");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--csv" {
            cli.csv = true;
        } else if a == "--verify" {
            cli.verify = true;
        } else if a == "--engine" {
            cli.engine = Some(parse_engine(&value(i, "--engine")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--engine=") {
            cli.engine = Some(parse_engine(v));
        } else if a == "--sample" {
            cli.sample = Some(bsched_pipeline::SampleConfig::default());
        } else if let Some(v) = a.strip_prefix("--sample=") {
            cli.sample = Some(parse_sample(v));
        } else if a == "--machine" {
            cli.machine = Some(parse_machine(&value(i, "--machine")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--machine=") {
            cli.machine = Some(parse_machine(v));
        } else if a == "--kernels" {
            cli.filter = Some(parse_kernel_list(&value(i, "--kernels")));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--kernels=") {
            cli.filter = Some(parse_kernel_list(v));
        } else if a == "--fuzz" {
            cli.fuzz = Some(number(&value(i, "--fuzz"), "--fuzz"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--fuzz=") {
            cli.fuzz = Some(number(v, "--fuzz"));
        } else if a == "--fuzz-seed" {
            cli.fuzz_seed = number(&value(i, "--fuzz-seed"), "--fuzz-seed");
            i += 1;
        } else if let Some(v) = a.strip_prefix("--fuzz-seed=") {
            cli.fuzz_seed = number(v, "--fuzz-seed");
        } else if a == "--fuzz-seconds" {
            cli.fuzz_seconds = Some(number(&value(i, "--fuzz-seconds"), "--fuzz-seconds"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--fuzz-seconds=") {
            cli.fuzz_seconds = Some(number(v, "--fuzz-seconds"));
        } else if a == "--trace-json" {
            cli.trace_json = Some(value(i, "--trace-json"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--trace-json=") {
            cli.trace_json = Some(v.to_string());
        } else if a == "--trace-chrome" {
            cli.trace_chrome = Some(value(i, "--trace-chrome"));
            i += 1;
        } else if let Some(v) = a.strip_prefix("--trace-chrome=") {
            cli.trace_chrome = Some(v.to_string());
        } else if a == "--trace-summary" {
            cli.trace_summary = true;
        }
        i += 1;
    }
    if let Some(path) = &cli.trace_json {
        ensure_writable("--trace-json", path);
    }
    if let Some(path) = &cli.trace_chrome {
        ensure_writable("--trace-chrome", path);
    }
    cli
}

/// Renders the harness run report — plus trace exports and the trace
/// summary when requested — and emits everything to stderr in one
/// atomic write.
fn finish(grid: &Grid, cli: &Cli) {
    let mut err = grid.report().render();
    if cli.tracing() {
        let trace = bsched_trace::TraceReport::new(bsched_trace::drain());
        if let Some(path) = &cli.trace_json {
            match std::fs::write(path, trace.to_json_string()) {
                Ok(()) => {
                    let _ = writeln!(err, "wrote trace {path} ({} events)", trace.events().len());
                }
                Err(e) => {
                    let _ = writeln!(err, "could not write trace {path}: {e}");
                }
            }
        }
        if let Some(path) = &cli.trace_chrome {
            match std::fs::write(path, trace.to_chrome_json_string()) {
                Ok(()) => {
                    let _ = writeln!(err, "wrote chrome trace {path}");
                }
                Err(e) => {
                    let _ = writeln!(err, "could not write chrome trace {path}: {e}");
                }
            }
        }
        if cli.trace_summary {
            err.push_str(&trace.summary());
        }
    }
    bsched_harness::emit_stderr(&err);
}

fn run_fuzz(grid: &Grid, cli: &Cli) {
    let Some(iterations) = cli.fuzz else { return };
    let mut cfg = bsched_verify::FuzzConfig::new(cli.fuzz_seed).with_iterations(iterations);
    if let Some(secs) = cli.fuzz_seconds {
        cfg = cfg.with_time_budget(std::time::Duration::from_secs(secs));
    }
    let report = bsched_verify::fuzz(&cfg);
    grid.engine().record_fuzz(report.iterations);
    if !report.failures.is_empty() {
        let mut err = String::new();
        for f in &report.failures {
            let _ = writeln!(
                err,
                "fuzz failure at iteration {} ({}): {}",
                f.iteration,
                f.label,
                f.messages.join("; ")
            );
            let _ = writeln!(err, "{}", f.reproducer);
        }
        err.push_str(&grid.report().render());
        bsched_harness::emit_stderr(&err);
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_args(&args);
    if cli.tracing() {
        bsched_trace::set_enabled(true);
    }
    let csv = cli.csv;
    let filter = cli.filter.clone();

    let mut engine_cfg = EngineConfig::from_env();
    engine_cfg.verify = engine_cfg.verify || cli.verify;
    if let Some(engine) = cli.engine {
        engine_cfg.sim_engine = engine; // the flag beats BSCHED_SIM_ENGINE
    }
    if let Some(sample) = cli.sample {
        // The flag beats BSCHED_SAMPLE.
        engine_cfg.sim_mode = bsched_pipeline::SimMode::Sampled(sample);
    }
    // The flag beats BSCHED_MACHINE.
    let machine = cli.machine.clone().or_else(|| {
        bsched_pipeline::MachineSpec::from_env().unwrap_or_else(|e| {
            eprintln!("BSCHED_MACHINE: {e}");
            std::process::exit(2);
        })
    });
    let mut grid = Grid::with_engine(Engine::with_standard_kernels(engine_cfg));
    if let Some(m) = machine {
        eprintln!("machine: {m}");
        grid = grid.with_machine(m);
    }
    let configs = standard_grid();
    let kernels: Vec<String> = match &filter {
        None => grid.kernel_names(),
        Some(want) => {
            for w in want {
                if let Err(e) = resolve_kernel(w) {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            grid.kernel_names()
                .into_iter()
                .filter(|k| want.contains(k))
                .collect()
        }
    };
    let cells: Vec<ExperimentCell> = kernels
        .iter()
        .flat_map(|k| {
            configs
                .iter()
                .map(|c| ExperimentCell::new(k, grid.resolve_options(&c.options())))
        })
        .collect();
    grid.prefetch_cells(&cells);

    if csv {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel,config,scheduler,cycles,load_interlock,fixed_interlock,branch_penalty,\
             fetch_stall,tlb_stall,dyn_insts,loads,stores,branches,spills,l1d_hit_rate"
        );
        for kernel in &kernels {
            for cfg in &configs {
                let m = grid.metrics(kernel, *cfg);
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4}",
                    kernel,
                    cfg.kind.label().replace(' ', ""),
                    cfg.scheduler.label(),
                    m.cycles,
                    m.load_interlock,
                    m.fixed_interlock,
                    m.branch_penalty,
                    m.fetch_stall,
                    m.tlb_stall,
                    m.insts.total(),
                    m.insts.loads,
                    m.insts.stores,
                    m.insts.branches,
                    m.insts.spills,
                    m.mem.l1d_hit_rate(),
                );
            }
        }
        print!("{out}");
        let path = std::path::Path::new("results/all_experiments.csv");
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, out.as_bytes())
        };
        match write() {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        run_fuzz(&grid, &cli);
        finish(&grid, &cli);
        return;
    }
    println!(
        "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
        "kernel", "config", "sch", "cycles", "loadIL", "fixedIL", "branch", "dyninsts", "spills"
    );
    for kernel in &kernels {
        for cfg in &configs {
            let m = grid.metrics(kernel, *cfg);
            println!(
                "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
                kernel,
                cfg.kind.label(),
                cfg.scheduler.label(),
                m.cycles,
                m.load_interlock,
                m.fixed_interlock,
                m.branch_penalty,
                m.insts.total(),
                m.insts.spills
            );
        }
    }
    run_fuzz(&grid, &cli);
    finish(&grid, &cli);
}
