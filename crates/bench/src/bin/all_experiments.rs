//! Runs the full experiment grid (17 kernels × 15 configurations) and
//! prints one metric line per run — the raw data behind Tables 4–9.

use bsched_bench::Grid;
use bsched_pipeline::standard_grid;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let mut grid = Grid::new();
    let configs = standard_grid();
    if csv {
        println!(
            "kernel,config,scheduler,cycles,load_interlock,fixed_interlock,branch_penalty,\
             fetch_stall,tlb_stall,dyn_insts,loads,stores,branches,spills,l1d_hit_rate"
        );
        for kernel in grid.kernel_names() {
            for cfg in &configs {
                let m = grid.metrics(&kernel, *cfg);
                println!(
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4}",
                    kernel,
                    cfg.kind.label().replace(' ', ""),
                    cfg.scheduler.label(),
                    m.cycles,
                    m.load_interlock,
                    m.fixed_interlock,
                    m.branch_penalty,
                    m.fetch_stall,
                    m.tlb_stall,
                    m.insts.total(),
                    m.insts.loads,
                    m.insts.stores,
                    m.insts.branches,
                    m.insts.spills,
                    m.mem.l1d_hit_rate(),
                );
            }
        }
        return;
    }
    println!(
        "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
        "kernel", "config", "sch", "cycles", "loadIL", "fixedIL", "branch", "dyninsts", "spills"
    );
    for kernel in grid.kernel_names() {
        for cfg in &configs {
            let m = grid.metrics(&kernel, *cfg);
            println!(
                "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
                kernel,
                cfg.kind.label(),
                cfg.scheduler.label(),
                m.cycles,
                m.load_interlock,
                m.fixed_interlock,
                m.branch_penalty,
                m.insts.total(),
                m.insts.spills
            );
        }
    }
}
