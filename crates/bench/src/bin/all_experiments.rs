//! Runs the full experiment grid (17 kernels × 15 configurations) and
//! prints one metric line per run — the raw data behind Tables 4–9.
//!
//! The whole deduplicated grid executes up front on the harness's
//! work-stealing pool; results come back in deterministic kernel ×
//! configuration order regardless of worker count or cache state. In
//! `--csv` mode the same bytes also land in `results/all_experiments.csv`.
//! The harness run report goes to stderr so stdout stays byte-identical
//! across runs.
//!
//! `--kernels NAME,NAME,...` restricts the grid to a subset (used by
//! `scripts/ci.sh` for a fast smoke run). Unknown names are rejected
//! with the list of valid choices.

use bsched_bench::Grid;
use bsched_harness::ExperimentCell;
use bsched_pipeline::{resolve_kernel, standard_grid};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let filter: Option<Vec<String>> = args.iter().position(|a| a == "--kernels").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--kernels requires a comma-separated list of kernel names");
                std::process::exit(2);
            })
            .split(',')
            .map(str::to_string)
            .collect()
    });

    let grid = Grid::new();
    let configs = standard_grid();
    let kernels: Vec<String> = match &filter {
        None => grid.kernel_names(),
        Some(want) => {
            for w in want {
                if let Err(e) = resolve_kernel(w) {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            grid.kernel_names()
                .into_iter()
                .filter(|k| want.contains(k))
                .collect()
        }
    };
    let cells: Vec<ExperimentCell> = kernels
        .iter()
        .flat_map(|k| configs.iter().map(|c| ExperimentCell::new(k, c.options())))
        .collect();
    grid.prefetch_cells(&cells);

    if csv {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel,config,scheduler,cycles,load_interlock,fixed_interlock,branch_penalty,\
             fetch_stall,tlb_stall,dyn_insts,loads,stores,branches,spills,l1d_hit_rate"
        );
        for kernel in &kernels {
            for cfg in &configs {
                let m = grid.metrics(kernel, *cfg);
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4}",
                    kernel,
                    cfg.kind.label().replace(' ', ""),
                    cfg.scheduler.label(),
                    m.cycles,
                    m.load_interlock,
                    m.fixed_interlock,
                    m.branch_penalty,
                    m.fetch_stall,
                    m.tlb_stall,
                    m.insts.total(),
                    m.insts.loads,
                    m.insts.stores,
                    m.insts.branches,
                    m.insts.spills,
                    m.mem.l1d_hit_rate(),
                );
            }
        }
        print!("{out}");
        let path = std::path::Path::new("results/all_experiments.csv");
        let write = || -> std::io::Result<()> {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(path, out.as_bytes())
        };
        match write() {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        eprint!("{}", grid.report().render());
        return;
    }
    println!(
        "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
        "kernel", "config", "sch", "cycles", "loadIL", "fixedIL", "branch", "dyninsts", "spills"
    );
    for kernel in &kernels {
        for cfg in &configs {
            let m = grid.metrics(kernel, *cfg);
            println!(
                "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
                kernel,
                cfg.kind.label(),
                cfg.scheduler.label(),
                m.cycles,
                m.load_interlock,
                m.fixed_interlock,
                m.branch_penalty,
                m.insts.total(),
                m.insts.spills
            );
        }
    }
    eprint!("{}", grid.report().render());
}
