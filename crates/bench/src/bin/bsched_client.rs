//! The `bsched-client` binary: a client and load generator for
//! `bsched-serve`.
//!
//! ```text
//! bsched-client --connect unix:/tmp/bsched.sock grid [--kernels A,B] [--verify]
//! bsched-client --connect tcp:127.0.0.1:7421 loadgen --mix crates/bench/mixes/serving_default.json \
//!     --requests 200 --clients 4 [--seed HEX] [--json BENCH_pr6.json]
//! bsched-client --connect ... stats | ping | shutdown
//! ```
//!
//! `grid` submits the experiment grid and prints the **same table, byte
//! for byte**, as a direct `all_experiments` run — the equivalence the
//! serve smoke test in `scripts/ci.sh` checks with `diff`.
//!
//! `loadgen` replays a recorded weighted request mix (JSON; see
//! `crates/bench/mixes/`) from N concurrent client connections with a
//! seeded deterministic request stream, retries `overloaded` rejections
//! with backoff, and reports throughput, latency percentiles, and the
//! server's cache hit rates. `--json` writes the report for the
//! `BENCH_pr6.json` record.

use bsched_harness::ExperimentCell;
use bsched_pipeline::{resolve_kernel, standard_grid};
use bsched_serve::protocol::cell_from_json;
use bsched_serve::{Client, Endpoint, SubmitReply};
use bsched_util::{Json, Prng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: bsched-client --connect (unix:PATH | tcp:ADDR) COMMAND [options]\n\
         \n\
         commands:\n\
         \x20 grid      submit the experiment grid, print the all_experiments table\n\
         \x20           [--kernels A,B,...] [--verify] [--trace]\n\
         \x20 loadgen   replay a weighted request mix and measure serving\n\
         \x20           --mix PATH [--requests N] [--clients N] [--seed HEX] [--json PATH]\n\
         \x20 stats     print the server's counter snapshot\n\
         \x20 ping      round-trip a liveness probe\n\
         \x20 shutdown  ask the server to drain and exit"
    );
    std::process::exit(2);
}

fn bail(msg: &str) -> ! {
    eprintln!("bsched-client: {msg}");
    std::process::exit(2);
}

fn run_fail(msg: &str) -> ! {
    eprintln!("bsched-client: {msg}");
    std::process::exit(1);
}

const CONNECT_TIMEOUT: Duration = Duration::from_secs(300);

fn connect(endpoint: &Endpoint) -> Client {
    match Client::connect(endpoint, CONNECT_TIMEOUT) {
        Ok(c) => c,
        Err(e) => run_fail(&format!("cannot connect to {endpoint}: {e}")),
    }
}

/// Builds a shorthand cell the same way the wire protocol parses one,
/// so a mix entry and a direct submit agree on the exact options.
fn shorthand_cell(kernel: &str, scheduler: &str, config: &str) -> Result<ExperimentCell, String> {
    let doc = Json::obj(vec![
        ("kernel", Json::Str(kernel.to_string())),
        ("scheduler", Json::Str(scheduler.to_string())),
        ("config", Json::Str(config.to_string())),
    ]);
    cell_from_json(&doc).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------- grid

fn cmd_grid(endpoint: &Endpoint, args: &[String]) {
    let mut filter: Option<Vec<String>> = None;
    let mut verify = false;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--verify" => verify = true,
            "--trace" => trace = true,
            "--kernels" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| bail("--kernels needs a value"));
                filter = Some(v.split(',').map(str::to_string).collect());
            }
            other => {
                if let Some(v) = other.strip_prefix("--kernels=") {
                    filter = Some(v.split(',').map(str::to_string).collect());
                } else {
                    bail(&format!("unknown grid flag {other:?}"));
                }
            }
        }
        i += 1;
    }
    let all: Vec<String> = bsched_workloads::all_kernels()
        .iter()
        .map(|k| k.name.to_string())
        .collect();
    let kernels: Vec<String> = match &filter {
        None => all,
        Some(want) => {
            for w in want {
                if let Err(e) = resolve_kernel(w) {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
            all.into_iter().filter(|k| want.contains(k)).collect()
        }
    };
    let configs = standard_grid();
    let cells: Vec<ExperimentCell> = kernels
        .iter()
        .flat_map(|k| configs.iter().map(|c| ExperimentCell::new(k, c.options())))
        .collect();

    let mut client = connect(endpoint);
    let reply = match client.submit(&cells, verify, trace) {
        Ok(r) => r,
        Err(e) => run_fail(&format!("submit failed: {e}")),
    };
    let received = match reply {
        SubmitReply::Completed { cells, .. } => cells,
        SubmitReply::Overloaded { queued, limit } => run_fail(&format!(
            "server overloaded (queue {queued}/{limit}); retry later"
        )),
    };
    debug_assert_eq!(received.len(), cells.len());

    // Identical formatting to all_experiments, so `diff` proves the
    // serve path reproduces the direct path byte for byte.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
        "kernel", "config", "sch", "cycles", "loadIL", "fixedIL", "branch", "dyninsts", "spills"
    );
    let mut idx = 0;
    let mut trace_events = 0usize;
    for kernel in &kernels {
        for cfg in &configs {
            let rc = &received[idx];
            idx += 1;
            let m = match &rc.outcome {
                Ok(result) => &result.metrics,
                Err(msg) => run_fail(&format!("cell {} failed: {msg}", rc.cell)),
            };
            trace_events += rc.trace.len();
            let _ = writeln!(
                out,
                "{:10} {:12} {:>4} {:>10} {:>9} {:>9} {:>8} {:>10} {:>8}",
                kernel,
                cfg.kind.label(),
                cfg.scheduler.label(),
                m.cycles,
                m.load_interlock,
                m.fixed_interlock,
                m.branch_penalty,
                m.insts.total(),
                m.insts.spills
            );
        }
    }
    print!("{out}");
    eprintln!(
        "bsched-client: {} cells served by {}{}",
        received.len(),
        client.server,
        if trace {
            format!(", {trace_events} trace events")
        } else {
            String::new()
        }
    );
}

// ------------------------------------------------------------- loadgen

struct MixEntry {
    weight: u64,
    verify: bool,
    cells: Vec<ExperimentCell>,
}

struct Mix {
    name: String,
    entries: Vec<MixEntry>,
    total_weight: u64,
}

fn load_mix(path: &str) -> Mix {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| bail(&format!("cannot read mix {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| bail(&format!("mix {path}: {e}")));
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("unnamed")
        .to_string();
    let Some(Json::Arr(raw_entries)) = doc.get("entries") else {
        bail(&format!("mix {path}: missing \"entries\" array"));
    };
    let mut entries = Vec::new();
    for (n, e) in raw_entries.iter().enumerate() {
        let weight = e.get("weight").and_then(Json::as_u64).unwrap_or(1).max(1);
        let verify = e.get("verify").and_then(Json::as_bool).unwrap_or(false);
        let strings = |key: &str| -> Vec<String> {
            match e.get(key) {
                Some(Json::Arr(items)) => items
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect(),
                _ => Vec::new(),
            }
        };
        let kernels = strings("kernels");
        let configs = strings("configs");
        let schedulers = strings("schedulers");
        if kernels.is_empty() || configs.is_empty() || schedulers.is_empty() {
            bail(&format!(
                "mix {path}: entry {n} needs kernels, configs, and schedulers"
            ));
        }
        let mut cells = Vec::new();
        for k in &kernels {
            for c in &configs {
                for s in &schedulers {
                    match shorthand_cell(k, s, c) {
                        Ok(cell) => cells.push(cell),
                        Err(msg) => bail(&format!("mix {path}: entry {n}: {msg}")),
                    }
                }
            }
        }
        entries.push(MixEntry {
            weight,
            verify,
            cells,
        });
    }
    if entries.is_empty() {
        bail(&format!("mix {path}: no entries"));
    }
    let total_weight = entries.iter().map(|e| e.weight).sum();
    Mix {
        name,
        entries,
        total_weight,
    }
}

fn pick_entry<'m>(mix: &'m Mix, rng: &mut Prng) -> &'m MixEntry {
    let mut ticket = rng.range_u64(0, mix.total_weight);
    for entry in &mix.entries {
        if ticket < entry.weight {
            return entry;
        }
        ticket -= entry.weight;
    }
    mix.entries.last().expect("nonempty mix")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn cmd_loadgen(endpoint: &Endpoint, args: &[String]) {
    let mut mix_path: Option<String> = None;
    let mut requests: u64 = 100;
    let mut clients: u64 = 2;
    let mut seed: u64 = 0xB5ED_5E1F;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| bail(&format!("{flag} needs a value")))
            .clone()
    };
    let number = |v: &str, flag: &str| -> u64 {
        let parsed = if let Some(hex) = v.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            v.parse()
        };
        parsed.unwrap_or_else(|_| bail(&format!("{flag} requires a number, got {v:?}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--mix" => mix_path = Some(value(args, &mut i, "--mix")),
            "--requests" => requests = number(&value(args, &mut i, "--requests"), "--requests").max(1),
            "--clients" => clients = number(&value(args, &mut i, "--clients"), "--clients").max(1),
            "--seed" => seed = number(&value(args, &mut i, "--seed"), "--seed"),
            "--json" => json_out = Some(value(args, &mut i, "--json")),
            other => bail(&format!("unknown loadgen flag {other:?}")),
        }
        i += 1;
    }
    let mix_path = mix_path.unwrap_or_else(|| bail("loadgen needs --mix PATH"));
    let mix = load_mix(&mix_path);

    // Pre-run server snapshot, so hit rates cover only this run.
    let before = match connect(endpoint).stats() {
        Ok(s) => s,
        Err(e) => run_fail(&format!("stats failed: {e}")),
    };

    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let cells_served = AtomicU64::new(0);
    let overloads = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let mine = requests / clients + u64::from(c < requests % clients);
            let mix = &mix;
            let latencies = &latencies;
            let cells_served = &cells_served;
            let overloads = &overloads;
            let failures = &failures;
            scope.spawn(move || {
                let mut rng = Prng::new(seed ^ (c.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
                let mut client = connect(endpoint);
                for _ in 0..mine {
                    let entry = pick_entry(mix, &mut rng);
                    let t = Instant::now();
                    let mut attempts = 0u32;
                    loop {
                        match client.submit(&entry.cells, entry.verify, false) {
                            Ok(SubmitReply::Completed { cells, .. }) => {
                                let lat = t.elapsed().as_secs_f64() * 1e3;
                                cells_served.fetch_add(cells.len() as u64, Ordering::Relaxed);
                                if cells.iter().any(|c| c.outcome.is_err()) {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                                latencies.lock().expect("latencies").push(lat);
                                break;
                            }
                            Ok(SubmitReply::Overloaded { .. }) => {
                                // Backpressure: back off and retry — the
                                // server queued nothing for us.
                                overloads.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                if attempts > 1000 {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(
                                    5 * u64::from(attempts.min(20)),
                                ));
                            }
                            Err(e) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                                eprintln!("bsched-client: request failed: {e}");
                                break;
                            }
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();

    let after = match connect(endpoint).stats() {
        Ok(s) => s,
        Err(e) => run_fail(&format!("stats failed: {e}")),
    };

    let mut lats = latencies.into_inner().expect("latencies");
    lats.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let served = cells_served.load(Ordering::Relaxed);
    let overloaded = overloads.load(Ordering::Relaxed);
    let failed = failures.load(Ordering::Relaxed);
    let hits = (after.memory_hits + after.disk_hits) - (before.memory_hits + before.disk_hits);
    let requested = after.requested - before.requested;
    let executed = after.executed - before.executed;
    let joined = after.joined_inflight - before.joined_inflight;
    let hit_rate = if requested == 0 {
        0.0
    } else {
        hits as f64 / requested as f64
    };
    let p50 = percentile(&lats, 50.0);
    let p90 = percentile(&lats, 90.0);
    let p99 = percentile(&lats, 99.0);
    let pmax = lats.last().copied().unwrap_or(0.0);
    let throughput_req = lats.len() as f64 / wall;
    let throughput_cells = served as f64 / wall;

    println!("mix            {}", mix.name);
    println!("clients        {clients}");
    println!("requests       {} completed / {requests} issued", lats.len());
    println!("cells served   {served}");
    println!("wall           {wall:.3} s");
    println!("throughput     {throughput_req:.1} req/s, {throughput_cells:.1} cells/s");
    println!("latency ms     p50 {p50:.2}  p90 {p90:.2}  p99 {p99:.2}  max {pmax:.2}");
    println!("overloaded     {overloaded} rejections (retried with backoff)");
    println!("failures       {failed}");
    println!("cache          {hits}/{requested} engine hits ({:.1}%), {executed} executed, {joined} joined in-flight", hit_rate * 100.0);

    if let Some(path) = json_out {
        let doc = Json::obj(vec![
            ("bench", Json::Str("pr6_serving".to_string())),
            ("mix", Json::Str(mix.name.clone())),
            ("clients", Json::u64(clients)),
            ("requests_issued", Json::u64(requests)),
            ("requests_completed", Json::u64(lats.len() as u64)),
            ("cells_served", Json::u64(served)),
            ("wall_seconds", Json::Num(wall)),
            ("throughput_requests_per_sec", Json::Num(throughput_req)),
            ("throughput_cells_per_sec", Json::Num(throughput_cells)),
            (
                "latency_ms",
                Json::obj(vec![
                    ("p50", Json::Num(p50)),
                    ("p90", Json::Num(p90)),
                    ("p99", Json::Num(p99)),
                    ("max", Json::Num(pmax)),
                ]),
            ),
            ("overloaded_rejections", Json::u64(overloaded)),
            ("failures", Json::u64(failed)),
            ("warm_hit_rate", Json::Num(hit_rate)),
            ("engine_hits", Json::u64(hits)),
            ("engine_requested", Json::u64(requested)),
            ("engine_executed", Json::u64(executed)),
            ("joined_inflight", Json::u64(joined)),
        ]);
        match std::fs::write(&path, doc.to_string_compact() + "\n") {
            Ok(()) => eprintln!("bsched-client: wrote {path}"),
            Err(e) => run_fail(&format!("cannot write {path}: {e}")),
        }
    }
    if failed > 0 {
        std::process::exit(1);
    }
}

// ------------------------------------------------------------- helpers

fn cmd_stats(endpoint: &Endpoint) {
    match connect(endpoint).stats() {
        Ok(s) => {
            println!("submits          {}", s.submits);
            println!("submitted_cells  {}", s.submitted_cells);
            println!("joined_inflight  {}", s.joined_inflight);
            println!("rejected_submits {}", s.rejected_submits);
            println!("completed_cells  {}", s.completed_cells);
            println!("failed_cells     {}", s.failed_cells);
            println!("queue            {}/{}", s.queue_depth, s.queue_limit);
            println!("engine executed  {}", s.executed);
            println!("engine requested {}", s.requested);
            println!("memory_hits      {}", s.memory_hits);
            println!("disk_hits        {}", s.disk_hits);
            println!("verified         {}", s.verified);
            println!("store hits/miss  {}/{}", s.store_hits, s.store_misses);
        }
        Err(e) => run_fail(&format!("stats failed: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut endpoint: Option<Endpoint> = None;
    let mut rest_start = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--connect" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| bail("--connect needs a value"));
                endpoint = Some(Endpoint::parse(v).unwrap_or_else(|e| bail(&e)));
            }
            "--help" | "-h" => usage(),
            _ => {
                rest_start = Some(i);
                break;
            }
        }
        i += 1;
    }
    let Some(endpoint) = endpoint else {
        usage();
    };
    let Some(start) = rest_start else { usage() };
    let command = args[start].as_str();
    let rest = &args[start + 1..];
    match command {
        "grid" => cmd_grid(&endpoint, rest),
        "loadgen" => cmd_loadgen(&endpoint, rest),
        "stats" => cmd_stats(&endpoint),
        "ping" => match connect(&endpoint).ping() {
            Ok(()) => println!("pong"),
            Err(e) => run_fail(&format!("ping failed: {e}")),
        },
        "shutdown" => match connect(&endpoint).shutdown() {
            Ok(()) => eprintln!("bsched-client: server acknowledged shutdown"),
            Err(e) => run_fail(&format!("shutdown failed: {e}")),
        },
        other => bail(&format!("unknown command {other:?} (try --help)")),
    }
}
