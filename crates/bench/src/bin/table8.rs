//! Regenerates the paper's Table 8: summary comparison of balanced and
//! traditional scheduling across optimization levels.

use bsched_bench::{pct_decrease, Grid};
use bsched_pipeline::table::{mean, pct, ratio};
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind, Table};

fn main() {
    let grid = Grid::new();
    let mut warm = Vec::new();
    for scheduler in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
        for kind in [
            ConfigKind::Base,
            ConfigKind::Lu(4),
            ConfigKind::Lu(8),
            ConfigKind::TrsLu(4),
            ConfigKind::TrsLu(8),
        ] {
            warm.push(ExperimentConfig { scheduler, kind });
        }
    }
    grid.prefetch(&warm);
    let rows = [
        ("No optimizations", ConfigKind::Base),
        ("Loop unrolling by 4", ConfigKind::Lu(4)),
        ("Loop unrolling by 8", ConfigKind::Lu(8)),
        (
            "Trace scheduling with loop unrolling by 4",
            ConfigKind::TrsLu(4),
        ),
        (
            "Trace scheduling with loop unrolling by 8",
            ConfigKind::TrsLu(8),
        ),
    ];
    let mut t = Table::new(
        "Table 8: Summary comparison of balanced (BS) and traditional (TS) scheduling",
        &[
            "Optimizations (in addition to scheduling)",
            "BS:TS speedup",
            "% decr. load interlocks (BS vs TS)",
            "speedup vs BS alone",
            "% decr. load interlocks vs BS alone",
            "LI % of cycles (BS)",
            "LI % of cycles (TS)",
        ],
    );
    let kernels = grid.kernel_names();
    for (label, kind) in rows {
        let mut speedups = Vec::new();
        let mut dli_vs_ts = Vec::new();
        let mut speedup_vs_base = Vec::new();
        let mut dli_vs_base = Vec::new();
        let mut li_bs = Vec::new();
        let mut li_ts = Vec::new();
        for kernel in &kernels {
            let bs = grid.bs(kernel, kind);
            let ts = grid.ts(kernel, kind);
            let base = grid.bs(kernel, ConfigKind::Base);
            speedups.push(bs.speedup_over(&ts));
            dli_vs_ts.push(pct_decrease(ts.load_interlock, bs.load_interlock));
            speedup_vs_base.push(bs.speedup_over(&base));
            dli_vs_base.push(pct_decrease(base.load_interlock, bs.load_interlock));
            li_bs.push(bs.load_interlock_fraction());
            li_ts.push(ts.load_interlock_fraction());
        }
        let (s4, s5) = if kind == ConfigKind::Base {
            ("n.a.".to_string(), "n.a.".to_string())
        } else {
            (ratio(mean(&speedup_vs_base)), pct(mean(&dli_vs_base)))
        };
        t.row(vec![
            label.to_string(),
            ratio(mean(&speedups)),
            pct(mean(&dli_vs_ts)),
            s4,
            s5,
            pct(mean(&li_bs)),
            pct(mean(&li_ts)),
        ]);
    }
    println!("{t}");
    grid.report().emit();
}
