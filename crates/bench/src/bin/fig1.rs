//! Regenerates the paper's Figure 1: the code DAG whose loads receive
//! balanced weights — independent loads L0, L1; serialised pair L2 → L3;
//! independent instructions X0…X3.

use bsched_core::{compute_weights, schedule_region, SchedulerKind, WeightConfig};
use bsched_ir::{Dag, Inst, Op, Reg, RegClass, RegionId};

fn main() {
    let r = |n| Reg::virt(RegClass::Int, n);
    let f = |n| Reg::virt(RegClass::Float, n);
    let insts = vec![
        Inst::load(f(0), r(0), 0).with_region(RegionId::new(0)), // L0
        Inst::load(f(1), r(1), 0).with_region(RegionId::new(1)), // L1
        Inst::load(r(10), r(2), 0).with_region(RegionId::new(2)), // L2
        Inst::op_imm(Op::Add, r(11), r(10), 8),                  // X0 (addr for L3)
        Inst::load(f(3), r(11), 0).with_region(RegionId::new(3)), // L3
        Inst::op(Op::FAdd, f(4), &[f(6), f(7)]),                 // X1
        Inst::op(Op::FAdd, f(5), &[f(8), f(9)]),                 // X2
        Inst::op(Op::FMul, f(12), &[f(4), f(5)]),                // X3
    ];
    let names = ["L0", "L1", "L2", "X0", "L3", "X1", "X2", "X3"];
    let dag = Dag::new(&insts);

    println!("Figure 1: the paper's example DAG\n");
    for (i, inst) in insts.iter().enumerate() {
        let succs: Vec<&str> = dag
            .succs(i)
            .iter()
            .map(|&(t, _)| names[t as usize])
            .collect();
        println!("  {:3}  {:<28} -> {:?}", names[i], inst.to_string(), succs);
    }

    for kind in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
        let cfg = WeightConfig::new(kind);
        let w = compute_weights(&insts, &dag, &cfg);
        println!("\n{} load weights:", kind.label());
        for (i, name) in names.iter().enumerate() {
            if insts[i].op.is_load() {
                println!("  {name}: {}", w[i]);
            }
        }
        let order = schedule_region(&insts, &dag, &w);
        let seq: Vec<&str> = order.iter().map(|&i| names[i]).collect();
        println!("  schedule: {}", seq.join(" "));
    }
    println!(
        "\nNote: X1/X2 fully cover the independent loads L0 and L1 but split\n\
         their coverage between the serialised pair L2 -> L3, exactly the\n\
         paper's \"L0 L1 X1 X2\" discussion."
    );
}
