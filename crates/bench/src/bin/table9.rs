//! Regenerates the paper's Table 9: summary of the locality-analysis
//! results — speedups relative to locality analysis alone and relative to
//! balanced scheduling with no other optimizations.

use bsched_bench::Grid;
use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind, Table};

fn main() {
    let grid = Grid::new();
    grid.prefetch(
        &[
            ConfigKind::Base,
            ConfigKind::La,
            ConfigKind::LaLu(4),
            ConfigKind::LaLu(8),
            ConfigKind::LaTrsLu(4),
            ConfigKind::LaTrsLu(8),
        ]
        .map(|kind| ExperimentConfig {
            scheduler: SchedulerKind::Balanced,
            kind,
        }),
    );
    let rows = [
        ("Locality analysis", ConfigKind::La),
        (
            "Locality analysis with loop unrolling by 4",
            ConfigKind::LaLu(4),
        ),
        (
            "Locality analysis with loop unrolling by 8",
            ConfigKind::LaLu(8),
        ),
        (
            "Locality analysis with trace scheduling and loop unrolling by 4",
            ConfigKind::LaTrsLu(4),
        ),
        (
            "Locality analysis with trace scheduling and loop unrolling by 8",
            ConfigKind::LaTrsLu(8),
        ),
    ];
    let mut t = Table::new(
        "Table 9: Summary comparison of locality analysis results",
        &[
            "Optimizations",
            "speedup vs LA alone",
            "speedup vs BS alone (no LU, no TrS)",
        ],
    );
    let kernels = grid.kernel_names();
    for (label, kind) in rows {
        let mut vs_la = Vec::new();
        let mut vs_bs = Vec::new();
        for kernel in &kernels {
            let m = grid.bs(kernel, kind);
            let la = grid.bs(kernel, ConfigKind::La);
            let bs = grid.bs(kernel, ConfigKind::Base);
            vs_la.push(m.speedup_over(&la));
            vs_bs.push(m.speedup_over(&bs));
        }
        let col1 = if kind == ConfigKind::La {
            "n.a.".to_string()
        } else {
            ratio(mean(&vs_la))
        };
        t.row(vec![label.to_string(), col1, ratio(mean(&vs_bs))]);
    }
    println!("{t}");
    grid.report().emit();
}
