//! Exports every workload kernel in the textual DSL (one `.bsk` file per
//! kernel), so the exact programs behind the tables can be read, edited
//! and re-run through `examples/dsl_kernel.rs`.
//!
//! ```sh
//! cargo run --release -p bsched-bench --bin export_kernels -- kernels/
//! ```

use bsched_workloads::all_kernels_sources;
use bsched_workloads::lang::print_kernel;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "kernels".to_string());
    std::fs::create_dir_all(&dir).expect("create output directory");
    for (name, kernel) in all_kernels_sources() {
        let path = format!("{dir}/{name}.bsk");
        std::fs::write(&path, print_kernel(&kernel)).expect("write kernel");
        println!("wrote {path}");
    }
}
