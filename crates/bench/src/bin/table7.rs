//! Regenerates the paper's Table 7: speedup of balanced scheduling over
//! traditional scheduling, without trace scheduling (LU 0/4/8) and with
//! it (LU 4/8).

use bsched_bench::Grid;
use bsched_pipeline::table::{mean, ratio};
use bsched_pipeline::{ConfigKind, ExperimentConfig, SchedulerKind, Table};

fn main() {
    let grid = Grid::new();
    let kinds = [
        ConfigKind::Base,
        ConfigKind::Lu(4),
        ConfigKind::Lu(8),
        ConfigKind::TrsLu(4),
        ConfigKind::TrsLu(8),
    ];
    let mut warm = Vec::new();
    for scheduler in [SchedulerKind::Traditional, SchedulerKind::Balanced] {
        for kind in kinds {
            warm.push(ExperimentConfig { scheduler, kind });
        }
    }
    grid.prefetch(&warm);
    let mut t = Table::new(
        "Table 7: Speedup of balanced over traditional scheduling",
        &["Benchmark", "No LU", "LU 4", "LU 8", "TrS+LU 4", "TrS+LU 8"],
    );
    let mut avg = vec![Vec::new(); kinds.len()];
    for kernel in grid.kernel_names() {
        let mut row = vec![kernel.clone()];
        for (k, kind) in kinds.iter().enumerate() {
            let bs = grid.bs(&kernel, *kind);
            let ts = grid.ts(&kernel, *kind);
            let s = bs.speedup_over(&ts);
            avg[k].push(s);
            row.push(ratio(s));
        }
        t.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for a in &avg {
        avg_row.push(ratio(mean(a)));
    }
    t.row(avg_row);
    println!("{t}");
    grid.report().emit();
}
