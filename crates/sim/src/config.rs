//! Simulator configuration.

use bsched_mem::MemConfig;

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// Number of 2-bit counters in the bimodal table (power of two).
    pub entries: usize,
    /// Pipeline refill penalty in cycles on a mispredicted conditional
    /// branch (21164-like).
    pub mispredict_penalty: u32,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            entries: 1024,
            mispredict_penalty: 5,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// The memory hierarchy.
    pub mem: MemConfig,
    /// The branch predictor.
    pub branch: BranchConfig,
    /// Instruction budget before aborting (guards against miscompiles).
    pub fuel: u64,
    /// Model instruction fetch through the I-cache/ITB. Disable to study
    /// data-side effects in isolation (the original Kerns–Eggers model
    /// assumed a perfect I-cache; the 1995 paper models it — both are
    /// reproducible with this switch).
    pub model_ifetch: bool,
    /// Instructions issued per cycle. The paper deliberately studies
    /// single issue (§4.3) and names wider-issue processors as future
    /// work (§6); widths 2/4 implement that extension. In-order: a stall
    /// drains the whole issue group.
    pub issue_width: u32,
    /// Memory operations (loads + stores) that may issue per cycle.
    pub mem_ports: u32,
    /// Kerns–Eggers 1993 simple-machine mode: every non-load instruction
    /// executes in a single cycle ("assumed single-cycle execution for
    /// all other multi-cycle instructions", §5.5). Loads keep their real
    /// hierarchy latencies.
    pub uniform_fixed_latency: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem: MemConfig::alpha21164(),
            branch: BranchConfig::default(),
            fuel: 500_000_000,
            model_ifetch: true,
            issue_width: 1,
            mem_ports: 1,
            uniform_fixed_latency: false,
        }
    }
}

impl SimConfig {
    /// The paper's machine model: a single-issue Alpha 21164-like core
    /// with the Table 2 memory hierarchy, bimodal branch prediction, and
    /// I-fetch modeling. Identical to [`SimConfig::default`], named so
    /// experiment code can say which machine it means.
    #[must_use]
    pub fn alpha21164() -> Self {
        SimConfig::default()
    }

    /// Returns the configuration with a different MSHR count (blocking vs.
    /// non-blocking ablation).
    #[must_use]
    pub fn with_mshrs(mut self, n: usize) -> Self {
        self.mem = self.mem.with_mshrs(n);
        self
    }

    /// Returns the configuration with I-fetch modeling switched.
    #[must_use]
    pub fn with_ifetch(mut self, on: bool) -> Self {
        self.model_ifetch = on;
        self
    }

    /// Returns the configuration with a different issue width (the
    /// paper's future-work extension). Memory ports scale as
    /// `max(1, width/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_issue_width(mut self, width: u32) -> Self {
        assert!(width > 0, "issue width must be positive");
        self.issue_width = width;
        self.mem_ports = (width / 2).max(1);
        self
    }

    /// Returns the Kerns–Eggers 1993 simple-machine configuration:
    /// perfect I-cache and single-cycle non-load execution (§5.5).
    #[must_use]
    pub fn simple_model_1993(mut self) -> Self {
        self.model_ifetch = false;
        self.uniform_fixed_latency = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha21164_names_the_default_machine() {
        assert_eq!(SimConfig::alpha21164(), SimConfig::default());
    }

    #[test]
    fn defaults_match_paper_machine() {
        let c = SimConfig::default();
        assert_eq!(c.mem.mshrs, 6);
        assert_eq!(c.branch.mispredict_penalty, 5);
        assert!(c.model_ifetch);
        assert_eq!(c.issue_width, 1);
        assert_eq!(c.with_mshrs(1).mem.mshrs, 1);
        assert!(!c.with_ifetch(false).model_ifetch);
    }

    #[test]
    fn issue_width_scaling() {
        let c = SimConfig::default().with_issue_width(4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.mem_ports, 2);
        let c2 = SimConfig::default().with_issue_width(1);
        assert_eq!(c2.mem_ports, 1);
    }

    #[test]
    fn simple_model_matches_ke93() {
        let c = SimConfig::default().simple_model_1993();
        assert!(!c.model_ifetch);
        assert!(c.uniform_fixed_latency);
    }
}
