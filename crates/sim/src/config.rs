//! Simulator configuration.

use bsched_mem::MemConfig;
use bsched_util::spec;
use std::fmt;
use std::str::FromStr;

/// Which branch-prediction algorithm the machine uses.
///
/// All kinds share the same table budget ([`BranchConfig::entries`]) and
/// the same misprediction penalty; only the indexing/learning scheme
/// differs. Every kind is deterministic, so both simulation engines
/// produce bit-identical outcomes for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// Per-PC 2-bit saturating counters (the paper's machine).
    #[default]
    Bimodal,
    /// Global-history XOR PC indexed 2-bit counters (McFarling 1993).
    Gshare,
    /// A small deterministic TAGE: bimodal base plus two
    /// partially-tagged tables with geometric history lengths.
    TageLite,
}

impl PredictorKind {
    /// Canonical lowercase label (spec-grammar token).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Gshare => "gshare",
            PredictorKind::TageLite => "tage",
        }
    }

    /// The accepted spec tokens, for error messages.
    #[must_use]
    pub fn valid_choices() -> &'static str {
        "bimodal, gshare, tage"
    }
}

impl fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for PredictorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bimodal" => Ok(PredictorKind::Bimodal),
            "gshare" => Ok(PredictorKind::Gshare),
            "tage" | "tage-lite" | "tagelite" => Ok(PredictorKind::TageLite),
            other => Err(spec::unknown(
                "branch predictor",
                other,
                &format!("valid predictors: {}", PredictorKind::valid_choices()),
            )),
        }
    }
}

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// The prediction algorithm.
    pub kind: PredictorKind,
    /// Number of 2-bit counters in the main table (power of two). For
    /// TAGE-lite this sizes the bimodal base; the tagged tables each
    /// hold a quarter as many entries.
    pub entries: usize,
    /// Pipeline refill penalty in cycles on a mispredicted conditional
    /// branch (21164-like).
    pub mispredict_penalty: u32,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            kind: PredictorKind::Bimodal,
            entries: 1024,
            mispredict_penalty: 5,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// The memory hierarchy.
    pub mem: MemConfig,
    /// The branch predictor.
    pub branch: BranchConfig,
    /// Instruction budget before aborting (guards against miscompiles).
    pub fuel: u64,
    /// Model instruction fetch through the I-cache/ITB. Disable to study
    /// data-side effects in isolation (the original Kerns–Eggers model
    /// assumed a perfect I-cache; the 1995 paper models it — both are
    /// reproducible with this switch).
    pub model_ifetch: bool,
    /// Instructions issued per cycle. The paper deliberately studies
    /// single issue (§4.3) and names wider-issue processors as future
    /// work (§6); widths 2/4 implement that extension. In-order: a stall
    /// drains the whole issue group.
    pub issue_width: u32,
    /// Memory operations (loads + stores) that may issue per cycle.
    pub mem_ports: u32,
    /// Kerns–Eggers 1993 simple-machine mode: every non-load instruction
    /// executes in a single cycle ("assumed single-cycle execution for
    /// all other multi-cycle instructions", §5.5). Loads keep their real
    /// hierarchy latencies.
    pub uniform_fixed_latency: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mem: MemConfig::alpha21164(),
            branch: BranchConfig::default(),
            fuel: 500_000_000,
            model_ifetch: true,
            issue_width: 1,
            mem_ports: 1,
            uniform_fixed_latency: false,
        }
    }
}

impl SimConfig {
    /// The paper's machine model: a single-issue Alpha 21164-like core
    /// with the Table 2 memory hierarchy, bimodal branch prediction, and
    /// I-fetch modeling. Identical to [`SimConfig::default`], named so
    /// experiment code can say which machine it means.
    #[must_use]
    pub fn alpha21164() -> Self {
        SimConfig::default()
    }

    /// Returns the configuration with a different MSHR count (blocking vs.
    /// non-blocking ablation).
    #[must_use]
    pub fn with_mshrs(mut self, n: usize) -> Self {
        self.mem = self.mem.with_mshrs(n);
        self
    }

    /// Returns the configuration with I-fetch modeling switched.
    #[must_use]
    pub fn with_ifetch(mut self, on: bool) -> Self {
        self.model_ifetch = on;
        self
    }

    /// Returns the configuration with a different branch-prediction
    /// algorithm (same table budget and penalty).
    #[must_use]
    pub fn with_predictor(mut self, kind: PredictorKind) -> Self {
        self.branch.kind = kind;
        self
    }

    /// Returns the configuration with an explicit issue width and
    /// memory-port count (the paper's future-work extension). Unlike the
    /// deprecated [`SimConfig::with_issue_width`], ports are an
    /// independent axis: `with_issue(4, 1)` and `with_issue(4, 4)` are
    /// both expressible.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `ports` is not in `1..=width`.
    #[must_use]
    pub fn with_issue(mut self, width: u32, ports: u32) -> Self {
        assert!(width > 0, "issue width must be positive");
        assert!(
            ports >= 1 && ports <= width,
            "memory ports ({ports}) must be between 1 and the issue width ({width})"
        );
        self.issue_width = width;
        self.mem_ports = ports;
        self
    }

    /// Returns the configuration with a different issue width, silently
    /// scaling memory ports as `max(1, width/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[deprecated(
        since = "0.5.0",
        note = "use with_issue(width, ports): this shim couples ports to \
                max(1, width/2), which wide machines cannot override"
    )]
    #[must_use]
    pub fn with_issue_width(self, width: u32) -> Self {
        assert!(width > 0, "issue width must be positive");
        self.with_issue(width, (width / 2).max(1))
    }

    /// Returns the configuration with a different L1D prefetcher.
    #[must_use]
    pub fn with_prefetch(mut self, kind: bsched_mem::PrefetchKind) -> Self {
        self.mem = self.mem.with_prefetch(kind);
        self
    }

    /// Returns the configuration with a different MSHR policy.
    #[must_use]
    pub fn with_mshr_policy(mut self, policy: bsched_mem::MshrPolicy) -> Self {
        self.mem = self.mem.with_mshr_policy(policy);
        self
    }

    /// Returns the Kerns–Eggers 1993 simple-machine configuration:
    /// perfect I-cache and single-cycle non-load execution (§5.5).
    #[must_use]
    pub fn simple_model_1993(mut self) -> Self {
        self.model_ifetch = false;
        self.uniform_fixed_latency = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha21164_names_the_default_machine() {
        assert_eq!(SimConfig::alpha21164(), SimConfig::default());
    }

    #[test]
    fn defaults_match_paper_machine() {
        let c = SimConfig::default();
        assert_eq!(c.mem.mshrs, 6);
        assert_eq!(c.branch.mispredict_penalty, 5);
        assert!(c.model_ifetch);
        assert_eq!(c.issue_width, 1);
        assert_eq!(c.with_mshrs(1).mem.mshrs, 1);
        assert!(!c.with_ifetch(false).model_ifetch);
    }

    #[test]
    #[allow(deprecated)]
    fn issue_width_scaling() {
        let c = SimConfig::default().with_issue_width(4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.mem_ports, 2);
        let c2 = SimConfig::default().with_issue_width(1);
        assert_eq!(c2.mem_ports, 1);
        // The deprecated shim is exactly with_issue + the old coupling.
        assert_eq!(c, SimConfig::default().with_issue(4, 2));
    }

    #[test]
    fn with_issue_decouples_ports_from_width() {
        let narrow = SimConfig::default().with_issue(4, 1);
        assert_eq!((narrow.issue_width, narrow.mem_ports), (4, 1));
        let full = SimConfig::default().with_issue(4, 4);
        assert_eq!((full.issue_width, full.mem_ports), (4, 4));
    }

    #[test]
    #[should_panic(expected = "memory ports")]
    fn with_issue_rejects_ports_beyond_width() {
        let _ = SimConfig::default().with_issue(2, 3);
    }

    #[test]
    fn predictor_kind_spec_tokens_round_trip() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::TageLite,
        ] {
            assert_eq!(kind.label().parse::<PredictorKind>().unwrap(), kind);
        }
        assert_eq!("TAGE-Lite".parse::<PredictorKind>().unwrap(), PredictorKind::TageLite);
        let err = "perceptron".parse::<PredictorKind>().unwrap_err();
        assert!(err.contains("bimodal") && err.contains("gshare") && err.contains("tage"));
    }

    #[test]
    fn with_predictor_changes_only_the_kind() {
        let c = SimConfig::default().with_predictor(PredictorKind::Gshare);
        assert_eq!(c.branch.kind, PredictorKind::Gshare);
        assert_eq!(c.branch.entries, SimConfig::default().branch.entries);
        assert_eq!(
            c.branch.mispredict_penalty,
            SimConfig::default().branch.mispredict_penalty
        );
    }

    #[test]
    fn simple_model_matches_ke93() {
        let c = SimConfig::default().simple_model_1993();
        assert!(!c.model_ifetch);
        assert!(c.uniform_fixed_latency);
    }
}
