//! `bsched-sim` — an execution-driven timing simulator of a single-issue,
//! in-order, **non-blocking-load** Alpha 21164-like processor.
//!
//! The machine model follows the paper's §4.3: pipelined functional units
//! with the fixed latencies of Table 3, the three-level memory hierarchy
//! with a lockup-free first-level cache (from `bsched-mem`), instruction
//! and data TLBs, I-cache fetch, and branch prediction. Like the paper, we
//! simulate single instruction issue "to understand fully balanced
//! scheduling's ability to exploit load-level parallelism".
//!
//! The simulator is *execution driven*: it executes the program (real
//! values, real addresses, real branch outcomes) while tracking per-
//! register result-ready times on a scoreboard. It produces the metrics
//! the paper reports: total cycles, **load interlock cycles**, fixed-
//! latency interlock cycles, and dynamic instruction counts by class.
//!
//! Two execution engines implement the model behind one API (the
//! [`SimEngine`] axis of [`Simulator`]): the original interpreting
//! engine and a block-compiled engine that pre-decodes each basic block
//! into a cached static cost skeleton and replays only dynamic state
//! per visit. They produce bit-identical results; the block-compiled
//! engine is simply much faster and is the default.
//!
//! ```
//! use bsched_ir::{FuncBuilder, Op, Program};
//! use bsched_sim::{MachineSpec, Simulator};
//!
//! let mut p = Program::new("demo");
//! let r = p.add_region("a", 64);
//! let mut b = FuncBuilder::new("main");
//! let base = b.load_region_addr(r);
//! let x = b.load_f(base, 0).with_region(r).emit(&mut b);
//! let y = b.binop(Op::FAdd, x, x);
//! b.store(y, base, 8).with_region(r).emit(&mut b);
//! b.ret();
//! p.set_main(b.finish());
//!
//! let machine = MachineSpec::alpha21164();
//! let m = Simulator::for_machine(&p, &machine).run().unwrap();
//! assert!(m.metrics.load_interlock > 0); // fadd waited on the cold load
//!
//! // Engines are interchangeable bit for bit:
//! use bsched_sim::SimEngine;
//! let interp = Simulator::for_machine(&p, &machine)
//!     .with_engine(SimEngine::Interpret)
//!     .run()
//!     .unwrap();
//! assert_eq!(m.metrics, interp.metrics);
//! assert_eq!(m.checksum, interp.checksum);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
pub mod branch;
pub mod config;
pub mod engine;
pub mod machine;
pub mod machines;
pub mod metrics;
pub mod sample;

pub use branch::BranchPredictor;
pub use config::{BranchConfig, PredictorKind, SimConfig};
pub use engine::SimEngine;
pub use machine::{SimResult, Simulator};
pub use machines::{MachineInfo, MachineSpec};
pub use metrics::{InstCounts, SimMetrics};
pub use sample::{SampleConfig, SampleStats, SimMode};
